//! # miniapps — synthetic workloads driving the evaluation
//!
//! The paper evaluates with two applications that are not publicly
//! reproducible at laptop scale: the CleverLeaf AMR shock-hydro
//! mini-app on a Quartz cluster node, and a 4096-rank ParaDiS dataset.
//! This crate provides deterministic substitutes (see DESIGN.md §3):
//!
//! * [`CleverLeaf`] — a fully instrumented proxy application that
//!   exercises the real annotation, snapshot and on-line aggregation
//!   code paths of `caliper-runtime`, driven by the workload model in
//!   [`model`] (triple-point problem structure: kernels, AMR levels,
//!   MPI mix, rank imbalance).
//! * [`paradis`] — a generator for the per-rank time-series profile
//!   datasets of §V-C (2 174 records per rank, 85 unique regions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cleverleaf;
pub mod model;
pub mod paradis;

pub use cleverleaf::{CleverLeaf, CleverLeafAttrs, WorkMode};
pub use model::CleverLeafParams;
pub use paradis::ParaDisParams;
