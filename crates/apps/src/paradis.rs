//! ParaDiS dataset generator.
//!
//! §V-C of the paper evaluates cross-process aggregation scalability on
//! "a distributed Caliper dataset collected from ParaDiS, a dislocation
//! dynamics application, using 4096 MPI processes … The dataset contains
//! a per-process time-series profile over computational kernels, MPI
//! functions, MPI rank, and main loop iterations, with visit count and
//! aggregate runtime of each unique region. Each of the 4096 input files
//! contains 2174 snapshot records" and the evaluation query produces 85
//! output records.
//!
//! This generator produces statistically equivalent per-rank datasets:
//! 85 unique kernel/MPI-function regions (the query's output keys)
//! crossed with main-loop iterations, visit counts, and aggregated
//! runtimes, ~2174 records per rank.

use caliper_data::{Entry, FlatRecord, Properties, SnapshotRecord, Value, ValueType};
use caliper_format::Dataset;

use crate::model::noise;

/// ParaDiS kernel names (dislocation dynamics phases).
pub const PARADIS_KERNELS: &[&str] = &[
    "SortNativeNodes",
    "CommSendGhosts",
    "CalcSegForces",
    "CalcNodeVelocities",
    "SplitMultiNodes",
    "CrossSlip",
    "HandleCollisions",
    "RemeshRefine",
    "RemeshCoarsen",
    "TimestepIntegrator",
    "FixRemesh",
    "MigrateNodes",
    "GenerateOutput",
    "LoadCurve",
    "OsmoticForce",
    "DeltaPlasticStrain",
    "CellCharge",
    "FMMUpdate",
    "LocalSegForces",
    "RemoteSegForces",
    "NodeForce",
    "PartialForces",
    "SortNodes",
    "InitializeCell",
    "FreeCell",
    "WriteRestart",
    "WriteProps",
    "Plot",
    "ParadisStep",
    "ParadisFinish",
    "RecycleNodes",
    "AssignNodesToDomains",
    "CommSendVelocity",
    "CommSendCoord",
    "FindPreciseGlidePlane",
    "AdjustNodePosition",
    "PickScrewGlidePlane",
    "ResetGlidePlanes",
    "InitRemoteDomains",
    "BuildRecvDomList",
    "ZeroNodeForces",
    "SetOneNodeForce",
    "ExtraNodeForce",
    "SegSegForce",
    "ComputeForces",
    "ComputeSegSigbRem",
    "DistributeForces",
    "ApplyNodeConstraints",
    "EnforceGlidePlanes",
    "CheckMemUsage",
    "SortTelescope",
    "FreeInitArrays",
    "VerifyBurgersVectors",
    "InitCellNatives",
    "InitCellNeighbors",
    "InitCellDomains",
    "UpdateCellsCharge",
    "MonopoleCellCharge",
    "AverageBurgers",
    "SegmentListSort",
    "CollisionDetection",
    "ProximityCollision",
    "RetroactiveCollision",
    "SplinterSegments",
    "CrossSlipBCC",
    "CrossSlipFCC",
    "OsmoticVelocity",
    "MobilityLaw",
    "MobilityBCC0",
    "MobilityFCC0",
];

/// ParaDiS MPI functions.
pub const PARADIS_MPI: &[&str] = &[
    "MPI_Isend",
    "MPI_Irecv",
    "MPI_Wait",
    "MPI_Waitall",
    "MPI_Allreduce",
    "MPI_Reduce",
    "MPI_Barrier",
    "MPI_Bcast",
    "MPI_Allgather",
    "MPI_Gather",
    "MPI_Alltoall",
    "MPI_Pack",
    "MPI_Unpack",
    "MPI_Sendrecv",
    "MPI_Scatter",
];

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct ParaDisParams {
    /// Main-loop iterations in the time-series profile.
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ParaDisParams {
    fn default() -> ParaDisParams {
        // 85 regions x 25 iterations = 2125 records, plus the
        // per-region grand-total records: 2125 + 49 partial = ~2174.
        ParaDisParams {
            iterations: 25,
            seed: 0xD15C,
        }
    }
}

/// Number of unique regions = the paper's 85 query output records.
pub fn region_count() -> usize {
    PARADIS_KERNELS.len() + PARADIS_MPI.len()
}

/// Generate the per-rank time-series profile dataset for `rank`.
///
/// Each record carries: the region (kernel **or** mpi.function), the
/// rank, the iteration number, the visit count (`aggregate.count`) and
/// aggregated runtime (`sum#time.duration`) — exactly the shape the
/// on-line aggregation service would produce with
/// `AGGREGATE count, sum(time.duration)
///  GROUP BY kernel, mpi.function, mpi.rank, iteration`.
pub fn generate_rank(params: &ParaDisParams, rank: usize) -> Dataset {
    let mut ds = Dataset::new();
    let kernel = ds.attribute("kernel", ValueType::Str, Properties::NESTED);
    let mpi_function = ds.attribute("mpi.function", ValueType::Str, Properties::NESTED);
    let mpi_rank = ds.attribute("mpi.rank", ValueType::Int, Properties::AS_VALUE);
    let iteration = ds.attribute("iteration", ValueType::Int, Properties::AS_VALUE);
    let count = ds.attribute(
        "aggregate.count",
        ValueType::UInt,
        Properties::AS_VALUE | Properties::AGGREGATABLE,
    );
    let duration = ds.attribute(
        "sum#time.duration",
        ValueType::Float,
        Properties::AS_VALUE | Properties::AGGREGATABLE,
    );
    ds.set_global("experiment", "paradis");
    ds.set_global("mpi.rank", rank as i64);

    let mut push = |region_attr: u32, region: &str, iter: i64, visits: u64, time_us: f64| {
        let mut rec = FlatRecord::new();
        rec.push(region_attr, Value::str(region));
        rec.push(mpi_rank.id(), Value::Int(rank as i64));
        rec.push(iteration.id(), Value::Int(iter));
        rec.push(count.id(), Value::UInt(visits));
        rec.push(duration.id(), Value::Float(time_us));
        let entries = rec
            .pairs()
            .iter()
            .map(|(a, v)| Entry::Imm(*a, v.clone()))
            .collect();
        ds.records.push(SnapshotRecord::from_entries(entries));
    };

    for iter in 0..params.iterations {
        for (i, name) in PARADIS_KERNELS.iter().enumerate() {
            let visits = 1 + (noise(params.seed, &[rank as u64, i as u64, iter as u64]) * 6.0) as u64;
            let base = 20.0 + 400.0 * noise(params.seed, &[i as u64]);
            let jitter = 0.8 + 0.4 * noise(params.seed, &[rank as u64, i as u64, iter as u64, 1]);
            push(kernel.id(), name, iter as i64, visits, base * jitter);
        }
        for (i, name) in PARADIS_MPI.iter().enumerate() {
            let key = 1000 + i as u64;
            let visits =
                2 + (noise(params.seed, &[rank as u64, key, iter as u64]) * 10.0) as u64;
            let base = 10.0 + 250.0 * noise(params.seed, &[key]);
            let jitter = 0.8 + 0.4 * noise(params.seed, &[rank as u64, key, iter as u64, 1]);
            push(mpi_function.id(), name, iter as i64, visits, base * jitter);
        }
    }
    // Grand-total records for the hottest regions (the per-run summary
    // rows ParaDiS profiles carry), bringing the record count to ~2174.
    for (i, name) in PARADIS_KERNELS.iter().take(49).enumerate() {
        let visits = 40 + (noise(params.seed, &[rank as u64, i as u64, 9999]) * 60.0) as u64;
        let base = 600.0 + 4000.0 * noise(params.seed, &[i as u64, 7]);
        push(kernel.id(), name, -1, visits, base);
    }
    ds
}

/// Generate the whole distributed dataset (one per rank).
pub fn generate(params: &ParaDisParams, ranks: usize) -> Vec<Dataset> {
    (0..ranks).map(|r| generate_rank(params, r)).collect()
}

/// Write per-rank `.cali` files under `dir`, returning the paths.
pub fn write_files(
    params: &ParaDisParams,
    ranks: usize,
    dir: &std::path::Path,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(ranks);
    for rank in 0..ranks {
        let ds = generate_rank(params, rank);
        let path = dir.join(format!("paradis-{rank:05}.cali"));
        caliper_format::cali::write_file(&ds, &path)?;
        paths.push(path);
    }
    Ok(paths)
}

/// The paper's evaluation query for this dataset: "compute the total CPU
/// time spent in computational kernels and MPI functions across MPI
/// ranks, producing 85 output records."
pub const EVALUATION_QUERY: &str = "LET region = first(kernel, mpi.function) \
     AGGREGATE sum(sum#time.duration), sum(aggregate.count) \
     GROUP BY region";

#[cfg(test)]
mod tests {
    use super::*;
    use caliper_query::run_query;

    #[test]
    fn record_count_matches_paper() {
        let ds = generate_rank(&ParaDisParams::default(), 0);
        assert_eq!(ds.len(), 2174);
    }

    #[test]
    fn unique_region_count_is_85() {
        assert_eq!(region_count(), 85);
        let ds = generate_rank(&ParaDisParams::default(), 3);
        let result = run_query(&ds, EVALUATION_QUERY).unwrap();
        assert_eq!(result.records.len(), 85);
    }

    #[test]
    fn generation_is_deterministic_per_rank() {
        let p = ParaDisParams::default();
        let a = caliper_format::cali::to_bytes(&generate_rank(&p, 5));
        let b = caliper_format::cali::to_bytes(&generate_rank(&p, 5));
        assert_eq!(a, b);
        let c = caliper_format::cali::to_bytes(&generate_rank(&p, 6));
        assert_ne!(a, c);
    }

    #[test]
    fn files_roundtrip() {
        let dir = std::env::temp_dir().join("paradis-test");
        let paths = write_files(&ParaDisParams { iterations: 2, ..Default::default() }, 3, &dir)
            .unwrap();
        assert_eq!(paths.len(), 3);
        let ds = caliper_format::cali::read_file(&paths[0]).unwrap();
        assert!(!ds.is_empty());
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn durations_are_positive() {
        let ds = generate_rank(&ParaDisParams::default(), 0);
        let dur = ds.store.find("sum#time.duration").unwrap();
        for rec in ds.flat_records() {
            let v = rec.get(dur.id()).unwrap().to_f64().unwrap();
            assert!(v > 0.0);
        }
    }
}
