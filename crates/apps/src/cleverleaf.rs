//! The instrumented CleverLeaf proxy application.
//!
//! Reproduces the instrumentation described in §V-B/§VI-A of the paper:
//! Caliper source-code annotations for computational kernels, the AMR
//! refinement level, main-loop iterations and user-defined source-code
//! regions, plus MPI function/rank capture à la the MPI wrapper — seven
//! attributes in total:
//!
//! `function`, `annotation`, `kernel`, `amr.level`,
//! `iteration#mainloop`, `mpi.function`, `mpi.rank`.
//!
//! The simulated work is driven by the deterministic model in
//! [`crate::model`]; time is either virtual (deterministic datasets for
//! the case-study figures) or real spinning (for the genuine overhead
//! measurements of Figure 3).

use std::sync::Arc;
use std::time::Instant;

use caliper_data::{Attribute, Properties, ValueType};
use caliper_format::Dataset;
use caliper_runtime::{Caliper, Clock, Config, ThreadScope};

use crate::model::{CleverLeafParams, KERNELS};

/// How simulated work is accounted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkMode {
    /// Advance a virtual clock — deterministic, instant.
    Virtual,
    /// Busy-spin for `scale` × the modelled time on the real clock —
    /// for wall-clock overhead measurements.
    Spin {
        /// Factor applied to modelled nanoseconds before spinning.
        scale: f64,
    },
    /// Advance a virtual clock like [`WorkMode::Virtual`] but *also*
    /// sleep `scale` × the modelled time in real time. All measurement
    /// comes from the virtual clock, so the collected data (and any
    /// journal written from it) is byte-identical to a `Virtual` run —
    /// while the process stays alive long enough to be killed mid-run.
    /// Used by the crash-recovery smoke test.
    Paced {
        /// Factor applied to modelled nanoseconds before sleeping.
        scale: f64,
    },
}

/// The seven instrumentation attributes (§V-B: "In total, we collected
/// 7 attributes").
pub struct CleverLeafAttrs {
    /// Nested function annotation (`main`, `hydro_cycle`, ...).
    pub function: Attribute,
    /// User-defined source-code regions (`init`, `simulation`, `io`).
    pub annotation: Attribute,
    /// Computational kernel names.
    pub kernel: Attribute,
    /// AMR mesh refinement level (0..levels).
    pub amr_level: Attribute,
    /// Main loop iteration number.
    pub iteration: Attribute,
    /// Intercepted MPI function name.
    pub mpi_function: Attribute,
    /// MPI rank id.
    pub mpi_rank: Attribute,
}

impl CleverLeafAttrs {
    /// Intern all instrumentation attributes in a runtime.
    pub fn new(caliper: &Arc<Caliper>) -> CleverLeafAttrs {
        let nested = |name: &str| caliper.attribute(name, ValueType::Str, Properties::NESTED);
        let value_int =
            |name: &str| caliper.attribute(name, ValueType::Int, Properties::AS_VALUE);
        CleverLeafAttrs {
            function: nested("function"),
            annotation: nested("annotation"),
            kernel: nested("kernel"),
            amr_level: value_int("amr.level"),
            iteration: value_int("iteration#mainloop"),
            mpi_function: nested("mpi.function"),
            mpi_rank: value_int("mpi.rank"),
        }
    }

    /// All seven attribute labels, as used in aggregation keys.
    pub fn all_labels() -> [&'static str; 7] {
        [
            "function",
            "annotation",
            "kernel",
            "amr.level",
            "iteration#mainloop",
            "mpi.function",
            "mpi.rank",
        ]
    }
}

/// Busy-spin for `ns` nanoseconds of real time.
fn spin(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    let target = std::time::Duration::from_nanos(ns);
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

/// The CleverLeaf proxy.
#[derive(Debug, Clone, Default)]
pub struct CleverLeaf {
    /// Workload model parameters.
    pub params: CleverLeafParams,
}

impl CleverLeaf {
    /// Create with the given parameters.
    pub fn new(params: CleverLeafParams) -> CleverLeaf {
        CleverLeaf { params }
    }

    fn work(&self, scope: &mut ThreadScope, ns: u64, mode: WorkMode) {
        match mode {
            WorkMode::Virtual => scope.advance_time(ns),
            WorkMode::Spin { scale } => {
                spin((ns as f64 * scale) as u64);
                // Let the sampler catch up on the real clock.
                scope.advance_time(0);
            }
            WorkMode::Paced { scale } => {
                // Accumulate the scaled time as a sleep debt and pay it
                // in >= 1 ms chunks: per-call sleeps would drown the
                // pacing in syscall overhead (work items are ~us-scale).
                thread_local! {
                    static PACE_DEBT_NS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
                }
                PACE_DEBT_NS.with(|debt| {
                    let owed = debt.get() + (ns as f64 * scale) as u64;
                    if owed >= 1_000_000 {
                        std::thread::sleep(std::time::Duration::from_nanos(owed));
                        debt.set(0);
                    } else {
                        debt.set(owed);
                    }
                });
                scope.advance_time(ns);
            }
        }
    }

    fn mpi_call(
        &self,
        scope: &mut ThreadScope,
        attrs: &CleverLeafAttrs,
        name: &str,
        ns: u64,
        mode: WorkMode,
    ) {
        scope.begin(&attrs.mpi_function, name);
        self.work(scope, ns, mode);
        scope
            .end(&attrs.mpi_function)
            .expect("balanced MPI wrapper");
    }

    /// Run the instrumented application for one rank on the given
    /// runtime. The caller chooses the runtime's clock to match `mode`
    /// (virtual clock for [`WorkMode::Virtual`], real for spin).
    pub fn run_rank(&self, rank: usize, caliper: &Arc<Caliper>, mode: WorkMode) {
        let p = &self.params;
        let attrs = CleverLeafAttrs::new(caliper);
        caliper.set_global("mpi.rank", rank as i64);
        caliper.set_global("mpi.world.size", p.ranks as u64);
        caliper.set_global("experiment", "cleverleaf-triple-point");

        let mut scope = caliper.make_thread_scope();
        // The MPI rank stays on the blackboard for the whole run, so
        // every snapshot carries it (the MPI wrapper exports it once).
        scope.begin(&attrs.mpi_rank, rank as i64);
        scope.begin(&attrs.function, "main");

        // --- initialization phase ---
        scope.begin(&attrs.annotation, "init");
        self.mpi_call(&mut scope, &attrs, "MPI_Comm_dup", 1_200, mode);
        self.mpi_call(&mut scope, &attrs, "MPI_Bcast", 4_000, mode);
        self.work(&mut scope, (p.coarse_cells_per_rank() * 40.0) as u64, mode);
        scope.end(&attrs.annotation).expect("init balanced");

        // --- main simulation loop ---
        scope.begin(&attrs.annotation, "simulation");
        scope.begin(&attrs.function, "hydro_cycle");
        for t in 0..p.timesteps {
            scope.begin(&attrs.iteration, t as i64);

            // Computational kernels, per refinement level.
            for level in 0..p.levels {
                scope.begin(&attrs.amr_level, level as i64);
                let patches = p.patches(level, t);
                for (kernel, cost) in KERNELS {
                    // One kernel invocation per mesh patch, as in
                    // SAMRAI-based AMR codes — this is what drives the
                    // large event-mode snapshot counts of Table I.
                    let ns = p.kernel_time_ns(*cost, rank, level, t) / patches as u64;
                    for _ in 0..patches {
                        scope.begin(&attrs.kernel, *kernel);
                        self.work(&mut scope, ns, mode);
                        scope.end(&attrs.kernel).expect("kernel balanced");
                    }
                }
                // Halo exchange for this level (point-to-point, small —
                // Figure 6 shows p2p time is comparatively minor).
                self.mpi_call(&mut scope, &attrs, "MPI_Isend", 900, mode);
                self.mpi_call(&mut scope, &attrs, "MPI_Irecv", 700, mode);
                self.mpi_call(&mut scope, &attrs, "MPI_Waitall", 5_000, mode);
                scope.end(&attrs.amr_level).expect("level balanced");
            }

            // Un-annotated computation (regridding, SAMRAI internals).
            self.work(&mut scope, p.unannotated_time_ns(rank, t), mode);

            // dt reduction and synchronization. Both are synchronizing
            // collectives, so both absorb imbalance wait — the barrier
            // most of it, which makes MPI_Barrier the top MPI function
            // with MPI_Allreduce a substantial second (Figure 6).
            let wait = p.barrier_wait_ns(rank, t);
            self.mpi_call(
                &mut scope,
                &attrs,
                "MPI_Allreduce",
                14_000 + (p.ranks as f64).log2() as u64 * 2_000 + wait * 3 / 10,
                mode,
            );
            self.mpi_call(&mut scope, &attrs, "MPI_Barrier", wait * 7 / 10 + 2_000, mode);

            // Periodic collectives: load-balance checks and output.
            if t % 10 == 0 {
                self.mpi_call(&mut scope, &attrs, "MPI_Allgather", 8_000, mode);
                self.mpi_call(&mut scope, &attrs, "MPI_Reduce", 6_000, mode);
            }
            if t % 25 == 0 {
                scope.begin(&attrs.annotation, "io");
                self.mpi_call(&mut scope, &attrs, "MPI_Gather", 3_500, mode);
                self.work(&mut scope, 50_000, mode);
                scope.end(&attrs.annotation).expect("io balanced");
            }

            scope.end(&attrs.iteration).expect("iteration balanced");
        }
        scope.end(&attrs.function).expect("hydro_cycle balanced");
        scope.end(&attrs.annotation).expect("simulation balanced");

        // --- final output phase ---
        scope.begin(&attrs.annotation, "io");
        self.mpi_call(&mut scope, &attrs, "MPI_Gather", 3_500, mode);
        self.work(&mut scope, 200_000, mode);
        scope.end(&attrs.annotation).expect("final io balanced");

        scope.end(&attrs.function).expect("main balanced");
        scope.flush();
    }

    /// Run all ranks sequentially with virtual clocks, producing one
    /// per-process dataset per rank — the per-process `.cali` outputs
    /// the paper's post-processing step consumes.
    pub fn run_all(&self, config: &Config) -> Vec<Dataset> {
        (0..self.params.ranks)
            .map(|rank| {
                let caliper = Caliper::with_clock(config.clone(), Clock::virtual_clock());
                self.run_rank(rank, &caliper, WorkMode::Virtual);
                caliper.take_dataset()
            })
            .collect()
    }

    /// Run one rank with a real clock and spinning work; returns the
    /// process dataset, the wall-clock seconds elapsed, and the number
    /// of snapshots processed. Used by the Figure 3 overhead harness.
    pub fn run_rank_timed(
        &self,
        rank: usize,
        config: &Config,
        scale: f64,
    ) -> (Dataset, f64, u64) {
        let caliper = Caliper::new(config.clone());
        let start = Instant::now();
        self.run_rank(rank, &caliper, WorkMode::Spin { scale });
        let elapsed = start.elapsed().as_secs_f64();
        (caliper.take_dataset(), elapsed, caliper.total_snapshots())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliper_query::run_query;

    fn small() -> CleverLeaf {
        CleverLeaf::new(CleverLeafParams {
            timesteps: 10,
            ranks: 4,
            ..CleverLeafParams::default()
        })
    }

    #[test]
    fn produces_one_dataset_per_rank() {
        let app = small();
        let config = Config::event_aggregate("kernel,mpi.function", "count,sum(time.duration)");
        let datasets = app.run_all(&config);
        assert_eq!(datasets.len(), 4);
        for (rank, ds) in datasets.iter().enumerate() {
            assert!(!ds.is_empty());
            assert_eq!(
                ds.global("mpi.rank"),
                Some(caliper_data::Value::Int(rank as i64))
            );
        }
    }

    #[test]
    fn datasets_are_deterministic() {
        let app = small();
        let config = Config::event_aggregate("kernel", "count,sum(time.duration)");
        let a = app.run_all(&config);
        let b = app.run_all(&config);
        for (da, db) in a.iter().zip(&b) {
            assert_eq!(
                caliper_format::cali::to_bytes(da),
                caliper_format::cali::to_bytes(db)
            );
        }
    }

    #[test]
    fn paced_mode_matches_virtual_byte_for_byte() {
        // The crash-recovery smoke test relies on this: pacing only
        // stretches wall-clock time, never the measured data.
        let app = CleverLeaf::new(CleverLeafParams {
            timesteps: 3,
            ranks: 1,
            ..CleverLeafParams::default()
        });
        let config = Config::event_trace();
        let run = |mode: WorkMode| {
            let caliper = Caliper::with_clock(config.clone(), Clock::virtual_clock());
            app.run_rank(0, &caliper, mode);
            caliper_format::cali::to_bytes(&caliper.take_dataset())
        };
        assert_eq!(
            run(WorkMode::Virtual),
            run(WorkMode::Paced { scale: 1e-6 })
        );
    }

    #[test]
    fn kernel_profile_shows_calc_dt_dominant() {
        let app = small();
        let config = Config::event_aggregate("kernel", "sum(time.duration)");
        let datasets = app.run_all(&config);
        let result = run_query(
            &datasets[0],
            "AGGREGATE sum(sum#time.duration) WHERE kernel GROUP BY kernel ORDER BY sum#sum#time.duration desc",
        )
        .unwrap();
        let kernel = result.store.find("kernel").unwrap();
        let top = result.records[0].get(kernel.id()).unwrap().to_string();
        assert_eq!(top, "calc-dt");
    }

    #[test]
    fn barrier_dominates_mpi_time() {
        let app = small();
        let config = Config::event_aggregate("mpi.function", "sum(time.duration)");
        let datasets = app.run_all(&config);
        // Merge all ranks' profiles.
        let mut total: std::collections::HashMap<String, f64> = Default::default();
        for ds in &datasets {
            let result = run_query(
                ds,
                "AGGREGATE sum(sum#time.duration) WHERE mpi.function GROUP BY mpi.function",
            )
            .unwrap();
            let f = result.store.find("mpi.function").unwrap();
            let s = result.store.find("sum#sum#time.duration").unwrap();
            for rec in &result.records {
                let name = rec.get(f.id()).unwrap().to_string();
                let val = rec.get(s.id()).unwrap().to_f64().unwrap();
                *total.entry(name).or_default() += val;
            }
        }
        let barrier = total["MPI_Barrier"];
        for (name, val) in &total {
            if name != "MPI_Barrier" {
                assert!(barrier >= *val, "{name} = {val} > barrier {barrier}");
            }
        }
        // Point-to-point stays comparatively small.
        assert!(total["MPI_Isend"] < 0.2 * barrier);
    }

    #[test]
    fn sampling_mode_counts_scale_with_runtime() {
        let app = small();
        // 1 ms sampling period.
        let config = Config::sampled_aggregate(1_000_000, "kernel", "count");
        let datasets = app.run_all(&config);
        assert!(!datasets[0].is_empty());
    }

    #[test]
    fn seven_attributes_are_collected() {
        let app = small();
        let config = Config::event_trace();
        let datasets = app.run_all(&config);
        for label in CleverLeafAttrs::all_labels() {
            assert!(
                datasets[0].store.find(label).is_some(),
                "missing attribute {label}"
            );
        }
    }
}
