//! The CleverLeaf workload model: where the numbers come from.
//!
//! The paper's case study (§VI) runs the triple-point shock interaction
//! problem on a 640×240 coarse mesh with three AMR levels on 18 MPI
//! ranks. We model the *observable structure* of that run — which is
//! what the paper's figures show — rather than the hydrodynamics:
//!
//! * a fixed set of computational kernels with per-cell costs where
//!   `calc-dt` dominates (Figure 5);
//! * per-level cell counts where level 0 is constant, level 1 grows
//!   slightly and level 2 grows significantly over the simulation as
//!   the shock develops vorticity (Figure 8);
//! * MPI time dominated by `MPI_Barrier`, then `MPI_Allreduce`, with
//!   comparatively small point-to-point time (Figure 6);
//! * mild per-rank imbalance with a few distinctive ranks — rank 8
//!   spends more time in level 1 than 0, rank 7 less in level 0 than
//!   others (Figure 9).
//!
//! All values are deterministic functions of (rank, level, timestep,
//! seed) so experiments are exactly reproducible.

/// Names of the computational kernels, with per-cell cost in
/// picoseconds (virtual). `calc-dt` dominates, as in Figure 5.
pub const KERNELS: &[(&str, u64)] = &[
    ("calc-dt", 1_740_000),
    ("advec-cell", 225_000),
    ("advec-mom", 204_000),
    ("pdv", 180_000),
    ("accelerate", 126_000),
    ("flux-calc", 120_000),
    ("viscosity", 144_000),
    ("ideal-gas", 93_000),
    ("reset", 66_000),
    ("update-halo", 60_000),
];

/// MPI functions used by the model with their base cost (ns) per call.
/// Barrier cost is dominated by imbalance waiting, computed separately.
pub const MPI_FUNCTIONS: &[(&str, u64)] = &[
    ("MPI_Barrier", 2_000),
    ("MPI_Allreduce", 14_000),
    ("MPI_Isend", 900),
    ("MPI_Irecv", 700),
    ("MPI_Waitall", 5_000),
    ("MPI_Reduce", 6_000),
    ("MPI_Bcast", 4_000),
    ("MPI_Allgather", 8_000),
    ("MPI_Gather", 3_500),
    ("MPI_Comm_dup", 1_200),
];

/// A small deterministic hash for model noise (splitmix64 step).
pub fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Uniform value in [0, 1) from a hash of the inputs.
pub fn noise(seed: u64, parts: &[u64]) -> f64 {
    let mut h = seed;
    for &p in parts {
        h = mix(h ^ p);
    }
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The model parameters.
#[derive(Debug, Clone)]
pub struct CleverLeafParams {
    /// Number of main-loop timesteps.
    pub timesteps: usize,
    /// Number of MPI ranks.
    pub ranks: usize,
    /// Number of AMR levels (the paper uses 3: 0..=2).
    pub levels: usize,
    /// Coarse mesh size (the paper uses 640 × 240).
    pub coarse: (usize, usize),
    /// RNG seed for the deterministic noise.
    pub seed: u64,
}

impl Default for CleverLeafParams {
    fn default() -> CleverLeafParams {
        CleverLeafParams {
            timesteps: 100,
            ranks: 18,
            levels: 3,
            coarse: (640, 240),
            seed: 0xCAFE,
        }
    }
}

impl CleverLeafParams {
    /// The paper's case-study configuration (§VI-A): 18 ranks,
    /// 640×240, 3 levels.
    pub fn case_study() -> CleverLeafParams {
        CleverLeafParams::default()
    }

    /// The paper's overhead-study configuration (§V-B): 100 timesteps
    /// on 36 ranks.
    pub fn overhead_study() -> CleverLeafParams {
        CleverLeafParams {
            ranks: 36,
            ..CleverLeafParams::default()
        }
    }

    /// Total coarse cells per rank (block row decomposition).
    pub fn coarse_cells_per_rank(&self) -> f64 {
        (self.coarse.0 * self.coarse.1) as f64 / self.ranks as f64
    }

    /// Cells on `level` at `timestep`, per rank.
    ///
    /// Level 0 covers the whole domain and is constant. Refined levels
    /// cover the growing vorticity region: level 1 grows slightly,
    /// level 2 significantly (drives Figure 8's shape).
    pub fn cells(&self, level: usize, timestep: usize) -> f64 {
        let base = self.coarse_cells_per_rank();
        let progress = timestep as f64 / self.timesteps.max(1) as f64;
        match level {
            0 => base,
            1 => base * (0.35 + 0.25 * progress),
            _ => {
                // Each further level refines by 2x in each dimension
                // (4x cells) over a smaller, growing region.
                let growth = 0.15 + 1.30 * progress;
                base * growth * (0.8f64).powi(level as i32 - 2)
            }
        }
    }

    /// Number of mesh patches a rank owns on `level` at `timestep`.
    /// SAMRAI-style AMR codes invoke each kernel once per patch, which
    /// is what makes event-triggered snapshot counts large (the paper
    /// reports 219 382 snapshots per process for 100 timesteps).
    pub fn patches(&self, level: usize, timestep: usize) -> usize {
        const CELLS_PER_PATCH: f64 = 320.0;
        (self.cells(level, timestep) / CELLS_PER_PATCH).ceil().max(1.0) as usize
    }

    /// Per-rank, per-level compute-speed factor (>= ~0.85), modelling
    /// load imbalance. Encodes the distinctive ranks from Figure 9.
    pub fn imbalance(&self, rank: usize, level: usize) -> f64 {
        let jitter = 0.06 * (noise(self.seed, &[rank as u64, level as u64]) - 0.5);
        let mut factor = 1.0 + jitter;
        if rank == 8 && level == 1 {
            // Rank 8 spends more time in level 1 than in level 0
            // (Figure 9): level 1 has ~0.5x the cells of level 0, so
            // the factor must push the product above 1.
            factor += 1.35;
        }
        if rank == 7 && level == 0 {
            factor -= 0.18; // rank 7: less level-0 time than most ranks
        }
        factor.max(0.5)
    }

    /// Virtual nanoseconds of compute for one kernel invocation.
    pub fn kernel_time_ns(&self, kernel_cost_ps: u64, rank: usize, level: usize, timestep: usize) -> u64 {
        let cells = self.cells(level, timestep);
        let base = cells * kernel_cost_ps as f64 / 1000.0;
        let wiggle = 1.0 + 0.02 * (noise(self.seed, &[rank as u64, level as u64, timestep as u64]) - 0.5);
        (base * self.imbalance(rank, level) * wiggle) as u64
    }

    /// Un-annotated compute time per timestep (regridding, SAMRAI
    /// overhead, I/O buffering, ...). Figure 5 shows most samples fall
    /// outside the annotated kernels, so this is sized to exceed the
    /// kernel total.
    pub fn unannotated_time_ns(&self, rank: usize, timestep: usize) -> u64 {
        let kernel_total: u64 = (0..self.levels)
            .map(|level| {
                KERNELS
                    .iter()
                    .map(|(_, cost)| self.kernel_time_ns(*cost, rank, level, timestep))
                    .sum::<u64>()
            })
            .sum();
        // ~1.4x the annotated kernel time.
        (kernel_total as f64 * 1.4) as u64
    }

    /// Total compute time (kernels + unannotated) for a rank/timestep —
    /// used to size barrier waits.
    pub fn compute_time_ns(&self, rank: usize, timestep: usize) -> u64 {
        let kernels: u64 = (0..self.levels)
            .map(|level| {
                KERNELS
                    .iter()
                    .map(|(_, cost)| self.kernel_time_ns(*cost, rank, level, timestep))
                    .sum::<u64>()
            })
            .sum();
        kernels + self.unannotated_time_ns(rank, timestep)
    }

    /// Barrier wait: the slowest rank's compute minus this rank's, plus
    /// a base synchronization cost. This makes MPI_Barrier the top MPI
    /// consumer (Figure 6) and ties MPI imbalance to compute imbalance
    /// (Figure 7).
    pub fn barrier_wait_ns(&self, rank: usize, timestep: usize) -> u64 {
        let mine = self.compute_time_ns(rank, timestep);
        let max = (0..self.ranks)
            .map(|r| self.compute_time_ns(r, timestep))
            .max()
            .unwrap_or(mine);
        (max - mine) + 2_000 + (self.ranks as f64).log2() as u64 * 500
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic_and_uniform() {
        let a = noise(1, &[2, 3]);
        let b = noise(1, &[2, 3]);
        assert_eq!(a, b);
        assert!((0.0..1.0).contains(&a));
        let mean: f64 = (0..1000).map(|i| noise(42, &[i])).sum::<f64>() / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn level0_is_constant_level2_grows() {
        let p = CleverLeafParams::default();
        assert_eq!(p.cells(0, 0), p.cells(0, 99));
        assert!(p.cells(2, 99) > 3.0 * p.cells(2, 0));
        // Level 1 grows, but only slightly.
        let growth1 = p.cells(1, 99) / p.cells(1, 0);
        let growth2 = p.cells(2, 99) / p.cells(2, 0);
        assert!(growth1 > 1.0 && growth1 < 2.5);
        assert!(growth2 > growth1);
    }

    #[test]
    fn calc_dt_dominates_kernels() {
        let p = CleverLeafParams::default();
        let times: Vec<(&str, u64)> = KERNELS
            .iter()
            .map(|(name, cost)| (*name, p.kernel_time_ns(*cost, 0, 0, 50)))
            .collect();
        let calc_dt = times.iter().find(|(n, _)| *n == "calc-dt").unwrap().1;
        for (name, t) in &times {
            if *name != "calc-dt" {
                assert!(calc_dt > 4 * t, "{name} too close to calc-dt");
            }
        }
    }

    #[test]
    fn unannotated_exceeds_kernels() {
        let p = CleverLeafParams::default();
        let kernels: u64 = (0..3)
            .map(|l| {
                KERNELS
                    .iter()
                    .map(|(_, c)| p.kernel_time_ns(*c, 3, l, 10))
                    .sum::<u64>()
            })
            .sum();
        assert!(p.unannotated_time_ns(3, 10) > kernels);
    }

    #[test]
    fn distinctive_ranks_stand_out() {
        let p = CleverLeafParams::case_study();
        // Rank 8 has markedly more level-1 weight than its neighbours.
        assert!(p.imbalance(8, 1) > 1.2);
        // Rank 7 has less level-0 weight.
        assert!(p.imbalance(7, 0) < 0.9);
        // Ordinary ranks sit near 1.
        for rank in [0, 1, 5, 12] {
            for level in 0..3 {
                let f = p.imbalance(rank, level);
                assert!((0.9..1.1).contains(&f), "rank {rank} level {level}: {f}");
            }
        }
    }

    #[test]
    fn barrier_wait_is_zero_for_slowest_rank() {
        let p = CleverLeafParams::case_study();
        let waits: Vec<u64> = (0..p.ranks).map(|r| p.barrier_wait_ns(r, 30)).collect();
        let min = *waits.iter().min().unwrap();
        // The slowest rank only pays the base cost.
        assert!(min < 10_000, "min wait {min}");
        // Faster ranks wait noticeably longer.
        assert!(*waits.iter().max().unwrap() > 10 * min.max(1));
    }
}
