//! Per-stream resident state: warm aggregate + write-ahead journal +
//! circuit breaker.
//!
//! Each ingest stream owns a [`Dataset`] (attribute dictionary +
//! context tree, grown incrementally as batches arrive), a warm
//! [`Aggregator`] holding the resident aggregation, and a
//! [`JournalWriter`] through which every accepted batch is made durable
//! *before* it is acknowledged. The ack-after-flush ordering is the
//! whole durability story: a `kill -9` at any instant can lose only
//! batches that were never acknowledged, so clients that retry
//! un-acked batches observe zero accepted-batch loss.
//!
//! On restart, [`StreamState::open`] replays the stream's journal with
//! [`recover_file_cancellable`] (lenient, torn tails expected,
//! sequence-deduplicated) and re-feeds the salvaged records through a
//! fresh aggregator — the identical `add` path live batches take — so
//! post-recovery query results are byte-identical to an uninterrupted
//! run over the same accepted batches.
//!
//! A stream whose batches keep failing (parse errors, journal I/O
//! errors) trips a circuit breaker after
//! [`max_stream_failures`](crate::ServedConfig::max_stream_failures)
//! *consecutive* failures: further batches are refused with `DEGRADED`
//! while queries keep serving the warm state — graceful degradation,
//! not collapse.

use std::io::BufReader;
use std::path::{Path, PathBuf};

use caliper_data::{AttrId, Deadline, FlatRecord, Properties, Value, ValueType};
use caliper_format::journal::{recover_file_cancellable, RecoveryReport};
use caliper_format::{
    CaliReader, Dataset, FlushPolicy, JournalWriter, ReadPolicy, ReadReport, SEQ_ATTR,
};
use caliper_query::{AggregationSpec, Aggregator};

use crate::config::ServedConfig;

/// Acknowledgement data for one accepted batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchAck {
    /// Sequence number of the batch's last record (`journal.seq`).
    pub last_seq: u64,
    /// Records the batch contributed.
    pub records: u64,
}

/// One ingest stream's resident state. See the module docs.
pub struct StreamState {
    name: String,
    ds: Dataset,
    aggregator: Aggregator,
    journal: JournalWriter,
    seq_attr: AttrId,
    next_seq: u64,
    consecutive_failures: u32,
    max_stream_failures: u32,
    degraded: bool,
    accepted_batches: u64,
    accepted_records: u64,
    /// Replay outcome when the stream was resumed from a journal.
    pub recovery: Option<RecoveryReport>,
}

/// Stream names become journal file names, so they are restricted to a
/// path-safe alphabet: ASCII alphanumerics plus `_`, `-`, `.` (no
/// leading `.`), at most 128 bytes.
pub fn valid_stream_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && !name.starts_with('.')
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.')
}

/// The journal path for a stream under `data_dir`.
pub fn journal_path(data_dir: &Path, stream: &str) -> PathBuf {
    data_dir.join(format!("{stream}.journal.cali"))
}

/// The stream name a journal file under `data_dir` belongs to, if its
/// name has the `<stream>.journal.cali` shape.
pub fn stream_of_journal(path: &Path) -> Option<String> {
    let name = path.file_name()?.to_str()?;
    let stream = name.strip_suffix(".journal.cali")?;
    valid_stream_name(stream).then(|| stream.to_string())
}

impl StreamState {
    /// Open a stream: replay its journal if one exists (resuming the
    /// sequence counter past the salvaged maximum), then append to it.
    /// `replay_deadline` bounds the replay — an over-budget replay
    /// keeps the salvaged prefix and the report says so.
    pub fn open(
        name: &str,
        cfg: &ServedConfig,
        spec: &AggregationSpec,
    ) -> Result<StreamState, String> {
        let path = journal_path(&cfg.data_dir, name);
        let policy = FlushPolicy {
            flush_interval: u64::MAX, // the batch path flushes explicitly
            max_buffer: 8 << 20,
            fsync: cfg.fsync,
        };
        let (ds, recovery) = if path.exists() {
            let deadline = Deadline::after(cfg.replay_deadline);
            let (ds, report) =
                recover_file_cancellable(&path, ReadPolicy::lenient(), Some(&deadline))
                    .map_err(|e| format!("replaying journal {}: {e}", path.display()))?;
            (ds, Some(report))
        } else {
            (Dataset::new(), None)
        };
        let journal = if recovery.is_some() {
            JournalWriter::open_append(&path, policy)
        } else {
            std::fs::create_dir_all(&cfg.data_dir)
                .map_err(|e| format!("creating data dir: {e}"))?;
            JournalWriter::create(&path, policy)
        }
        .map_err(|e| format!("opening journal {}: {e}", path.display()))?;

        let seq_attr = ds.attribute(SEQ_ATTR, ValueType::UInt, Properties::AS_VALUE).id();
        let mut aggregator = Aggregator::new(spec.clone(), std::sync::Arc::clone(&ds.store));
        aggregator.set_max_groups(cfg.max_groups);

        let mut state = StreamState {
            name: name.to_string(),
            next_seq: 0,
            seq_attr,
            aggregator,
            journal,
            ds,
            consecutive_failures: 0,
            max_stream_failures: cfg.max_stream_failures,
            degraded: false,
            accepted_batches: 0,
            accepted_records: 0,
            recovery: None,
        };
        if let Some(report) = recovery {
            state.next_seq = report.max_seq.map_or(0, |m| m + 1);
            // Re-feed the salvage through the live aggregation path.
            for rec in state.ds.flat_records() {
                state.aggregator.add(&rec);
            }
            state.accepted_records = state.ds.records.len() as u64;
            state.ds.records.clear();
            state.recovery = Some(report);
        }
        Ok(state)
    }

    /// The stream name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True once the circuit breaker tripped: ingest refused, queries
    /// still served from the warm state.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Batches accepted (journaled + acknowledged) since this process
    /// opened the stream.
    pub fn accepted_batches(&self) -> u64 {
        self.accepted_batches
    }

    /// Records accepted, including journal-replayed ones.
    pub fn accepted_records(&self) -> u64 {
        self.accepted_records
    }

    /// Distinct groups in the warm aggregate.
    pub fn groups(&self) -> usize {
        self.aggregator.len()
    }

    /// Process one ingest batch: parse (strict — a batch is accepted
    /// whole or not at all), stamp `journal.seq`, journal + flush
    /// (+fsync per policy), then fold into the warm aggregate. Only
    /// after the flush returns is the ack constructed: see the module
    /// docs for why that ordering is the durability contract.
    ///
    /// On failure the dataset is left without the batch's records, the
    /// consecutive-failure counter advances, and crossing
    /// `max_stream_failures` trips the breaker.
    pub fn process_batch(&mut self, payload: &[u8]) -> Result<BatchAck, String> {
        if self.degraded {
            return Err(format!(
                "stream '{}' degraded (circuit breaker open)",
                self.name
            ));
        }
        match self.try_process(payload) {
            Ok(ack) => {
                self.consecutive_failures = 0;
                self.accepted_batches += 1;
                self.accepted_records += ack.records;
                Ok(ack)
            }
            Err(e) => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.max_stream_failures {
                    self.degraded = true;
                }
                Err(e)
            }
        }
    }

    fn try_process(&mut self, payload: &[u8]) -> Result<BatchAck, String> {
        // Parse into the stream's dataset. Strict: a bad line rejects
        // the batch (read_line_with validates before mutating, so the
        // record list holds exactly the valid prefix, which we drop).
        let before = self.ds.records.len();
        let ds = std::mem::take(&mut self.ds);
        let mut reader = CaliReader::into_dataset(ds);
        let mut report = ReadReport::default();
        let parse =
            reader.read_stream_with(BufReader::new(payload), ReadPolicy::Strict, &mut report);
        self.ds = reader.finish();
        if let Err(e) = parse {
            self.ds.records.truncate(before);
            return Err(format!("batch rejected: {e}"));
        }
        let records: Vec<_> = self.ds.records.drain(before..).collect();
        if records.is_empty() {
            return Err("batch rejected: no records".to_string());
        }

        // Stamp, journal, aggregate. A journal error mid-batch leaves
        // the aggregate ahead of the journal for already-folded
        // records, so it immediately degrades the stream below (the
        // conservative reading of an inconsistent pair).
        let mut folded = 0u64;
        let mut journal_err = None;
        for rec in records {
            let mut stamped = rec;
            stamped.push_imm(self.seq_attr, Value::UInt(self.next_seq));
            if let Err(e) = self.journal.append_snapshot(&self.ds, &stamped) {
                journal_err = Some(format!("journal append: {e}"));
                break;
            }
            let flat = stamped.unpack(&self.ds.tree);
            self.aggregator.add(&flat);
            self.next_seq += 1;
            folded += 1;
        }
        if journal_err.is_none() {
            if let Err(e) = self.journal.flush() {
                journal_err = Some(format!("journal flush: {e}"));
            }
        }
        if let Some(e) = journal_err {
            // Aggregate state may now be ahead of the durable journal:
            // refuse further ingest on this stream outright.
            self.degraded = true;
            return Err(format!(
                "{e} (stream '{}' degraded: warm state may exceed journal)",
                self.name
            ));
        }
        Ok(BatchAck {
            last_seq: self.next_seq - 1,
            records: folded,
        })
    }

    /// Snapshot the warm aggregate as result rows interned into `out`,
    /// each tagged `stream=<name>` via `stream_attr`. Non-destructive
    /// ([`Aggregator::flush`] borrows), deterministic (rows sorted by
    /// group key), so identical warm state renders identical rows.
    pub fn warm_rows(&self, out: &caliper_data::AttributeStore, stream_attr: AttrId) -> Vec<FlatRecord> {
        let mut rows = self.aggregator.flush(out);
        for row in &mut rows {
            row.push(stream_attr, Value::str(self.name.as_str()));
        }
        rows
    }

    /// Final drain: flush (+fsync) the journal. Called on graceful
    /// shutdown after the queue is empty.
    pub fn finalize(&mut self) -> Result<(), String> {
        self.journal
            .flush()
            .map_err(|e| format!("final flush of stream '{}': {e}", self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliper_data::RecordBuilder;
    use caliper_query::parse_query;

    fn test_cfg(dir: &Path) -> ServedConfig {
        ServedConfig {
            data_dir: dir.to_path_buf(),
            ..ServedConfig::default()
        }
    }

    fn spec() -> AggregationSpec {
        AggregationSpec::from_query(
            &parse_query("AGGREGATE count,sum(t) GROUP BY kernel").unwrap(),
        )
    }

    fn batch(kernels: &[(&str, i64)]) -> Vec<u8> {
        let mut ds = Dataset::new();
        for (kernel, t) in kernels {
            let rec = RecordBuilder::new(&ds.store)
                .with("kernel", *kernel)
                .with("t", *t)
                .build();
            let entries = rec
                .pairs()
                .iter()
                .map(|(a, v)| caliper_data::Entry::Imm(*a, v.clone()))
                .collect();
            ds.push(caliper_data::SnapshotRecord::from_entries(entries));
        }
        caliper_format::cali::to_bytes(&ds)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cali-served-state-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn render(state: &StreamState) -> String {
        let out = std::sync::Arc::new(caliper_data::AttributeStore::new());
        let stream_attr = out
            .create("stream", ValueType::Str, Properties::DEFAULT)
            .unwrap()
            .id();
        let rows = state.warm_rows(&out, stream_attr);
        let run = caliper_query::run_records_with_deadline(
            out,
            &rows,
            "SELECT kernel, count, sum#t, stream ORDER BY kernel FORMAT csv",
            &Deadline::unbounded(),
        )
        .unwrap();
        assert!(run.complete);
        run.result.render()
    }

    #[test]
    fn ingest_then_reopen_recovers_identical_state() {
        let dir = tmpdir("roundtrip");
        let cfg = test_cfg(&dir);
        let mut state = StreamState::open("s1", &cfg, &spec()).unwrap();
        state
            .process_batch(&batch(&[("a", 10), ("b", 5)]))
            .unwrap();
        let ack = state.process_batch(&batch(&[("a", 7)])).unwrap();
        assert_eq!(ack.last_seq, 2);
        assert_eq!(state.accepted_batches(), 2);
        let live = render(&state);
        drop(state); // final flush via JournalWriter::drop

        let reopened = StreamState::open("s1", &cfg, &spec()).unwrap();
        let report = reopened.recovery.as_ref().unwrap();
        assert_eq!(report.salvaged, 3);
        assert!(!report.data_lost());
        assert_eq!(render(&reopened), live, "byte-identical post-recovery");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_batch_is_rejected_whole_and_trips_breaker() {
        let dir = tmpdir("breaker");
        let cfg = ServedConfig {
            max_stream_failures: 2,
            ..test_cfg(&dir)
        };
        let mut state = StreamState::open("s1", &cfg, &spec()).unwrap();
        state.process_batch(&batch(&[("a", 1)])).unwrap();
        let before = render(&state);

        let garbage = b"__rec=ctx,this is not\xffvalid\n".to_vec();
        assert!(state.process_batch(&garbage).is_err());
        assert!(!state.degraded(), "one failure below the threshold");
        assert_eq!(render(&state), before, "reject leaves warm state intact");
        assert!(state.process_batch(&garbage).is_err());
        assert!(state.degraded(), "second consecutive failure trips");
        // Breaker open: even a good batch is refused...
        let err = state.process_batch(&batch(&[("b", 1)])).unwrap_err();
        assert!(err.contains("degraded"), "{err}");
        // ...but queries still serve the warm state.
        assert_eq!(render(&state), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let dir = tmpdir("reset");
        let cfg = ServedConfig {
            max_stream_failures: 2,
            ..test_cfg(&dir)
        };
        let mut state = StreamState::open("s1", &cfg, &spec()).unwrap();
        let garbage = b"not a cali line at all \xff\n".to_vec();
        assert!(state.process_batch(&garbage).is_err());
        state.process_batch(&batch(&[("a", 1)])).unwrap();
        assert!(state.process_batch(&garbage).is_err());
        assert!(!state.degraded(), "counter is consecutive, reset by success");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_names_are_path_safe() {
        assert!(valid_stream_name("node-01.rank_3"));
        assert!(!valid_stream_name(""));
        assert!(!valid_stream_name(".hidden"));
        assert!(!valid_stream_name("../escape"));
        assert!(!valid_stream_name("a/b"));
        assert!(!valid_stream_name("spaced name"));
        assert!(!valid_stream_name(&"x".repeat(129)));
        assert_eq!(
            stream_of_journal(Path::new("/data/s1.journal.cali")).as_deref(),
            Some("s1")
        );
        assert_eq!(stream_of_journal(Path::new("/data/other.cali")), None);
    }
}
