//! `caliper-served` — a resident aggregation daemon for Caliper-style
//! performance data (the "service" deployment of the paper's
//! aggregation model: spatial aggregation moves from a post-mortem
//! batch step into an always-on, incrementally-maintained service).
//!
//! The daemon ([`Server`]) ingests `.cali` record batches over a
//! hand-rolled TCP line protocol ([`protocol`]), folds each batch into
//! a bounded per-stream incremental aggregate ([`state`]), journals
//! every accepted batch *before* acknowledging it (ack-after-flush
//! durability), and answers CalQL queries over the warm aggregate via
//! a minimal HTTP/1.1 plane ([`http`]): `/query`, `/healthz`,
//! `/readyz`, `/stats`, `POST /shutdown`.
//!
//! Robustness is the point, not a feature flag:
//!
//! * **Backpressure** — ingest flows through a [`queue::BoundedQueue`];
//!   a full queue answers `BUSY retry-after-ms=…` instead of blocking
//!   the accept loop or buffering without bound.
//! * **Supervision** — ingest workers run under [`supervisor::supervise`]:
//!   panics are caught, workers restart on a seeded backoff schedule,
//!   and a crash loop trips into a visible degraded state (exit code 2).
//!   Per-stream circuit breakers stop repeated batch failures from
//!   grinding a stream forever.
//! * **Deadlines** — every query runs under a `Deadline`; slow queries
//!   return a partial result with an explicit warning (HTTP 408)
//!   instead of hanging the connection.
//! * **Graceful degradation and recovery** — `POST /shutdown` drains
//!   the queue, flushes and fsyncs journals, and exits 0; any restart
//!   (graceful or `kill -9`) replays the journals and resumes with
//!   identical query results for every acknowledged batch.
//!
//! Fault injection: the daemon honors `CALI_FAULTS` rules at
//! `served.accept`, `served.ingest`, and `served.query` (see
//! `caliper_faults::sites`), which is how the chaos suite kills
//! workers, drops connections, and slows queries deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod http;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod state;
pub mod supervisor;

pub use config::ServedConfig;
pub use protocol::{IngestClient, Reply};
pub use queue::BoundedQueue;
pub use server::{ExitSummary, Server, ServerState};
pub use state::StreamState;
pub use supervisor::WorkerHealth;
