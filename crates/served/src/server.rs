//! The daemon: accept loops, supervised ingest workers, the query
//! plane, graceful drain, and the exit-code contract.
//!
//! Thread layout:
//!
//! * one ingest accept loop + one HTTP accept loop (non-blocking
//!   accept, polling the stop flag — an overloaded daemon never stops
//!   answering `BUSY`/`503`, and injected `served.accept` faults drop
//!   connections here without touching the loop);
//! * one connection-handler thread per ingest/HTTP connection (HTTP
//!   concurrency is capped; over-cap connections get `503`);
//! * `workers` supervised ingest workers draining the bounded queue
//!   ([`supervise`]: restart on panic with seeded backoff, trip after
//!   the restart budget);
//! * the caller's thread parks in [`Server::run`] until drain finishes.
//!
//! Shutdown is cooperative (`POST /shutdown` or the client `--shutdown`
//! flag): stop admitting batches, let workers drain the queue, flush
//! and fsync every journal, then return. A non-graceful death
//! (`kill -9`) is also safe — acknowledged batches are journaled
//! before the ack, so restart replays them losslessly; only un-acked
//! work is lost, which well-behaved clients retry.

use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use caliper_data::metrics::{self, MetricsRegistry};
use caliper_data::{AttributeStore, Deadline, Properties, ValueType};
use caliper_faults::{sites, stable_hash};
use caliper_format::retry::RetryPolicy;
use caliper_query::{parse_query, run_records_with_deadline, AggregationSpec};

use crate::config::ServedConfig;
use crate::http::{read_request, text_response, Request};
use crate::protocol::{read_line, read_payload, Command, Reply};
use crate::queue::BoundedQueue;
use crate::state::{journal_path, stream_of_journal, valid_stream_name, StreamState};
use crate::supervisor::{supervise, WorkerHealth};

/// The `retry-after-ms` hint sent with `BUSY` replies.
const BUSY_RETRY_AFTER_MS: u64 = 100;
/// How long a connection handler waits for its batch's worker verdict.
const BATCH_REPLY_TIMEOUT: Duration = Duration::from_secs(30);
/// Concurrent HTTP handler cap; over-cap connections get `503`.
const HTTP_MAX_CONCURRENT: usize = 32;
/// Ingest connection read timeout (idle clients are dropped).
const CONN_READ_TIMEOUT: Duration = Duration::from_secs(60);

/// One queued ingest batch, carrying its reply channel back to the
/// connection handler.
struct Batch {
    stream: String,
    payload: Vec<u8>,
    /// Global admission ordinal: the deterministic fault key for
    /// `served.ingest` rules (`<stream>#<ordinal>`).
    ordinal: u64,
    reply: SyncSender<Reply>,
}

/// Everything the daemon's threads share.
pub struct ServerState {
    cfg: ServedConfig,
    spec: AggregationSpec,
    streams: Mutex<BTreeMap<String, Arc<Mutex<StreamState>>>>,
    queue: BoundedQueue<Batch>,
    /// Drain requested: stop admitting batches; workers exit once the
    /// queue is empty.
    draining: AtomicBool,
    /// Hard stop: accept loops and workers exit now.
    stopped: AtomicBool,
    /// Journal replay finished (readiness gate).
    replay_complete: AtomicBool,
    batch_ordinal: AtomicU64,
    conn_ordinal: AtomicU64,
    active_http: AtomicUsize,
}

impl ServerState {
    fn new(cfg: ServedConfig) -> Result<ServerState, String> {
        let spec_query = cfg.aggregate_query();
        let spec = parse_query(&spec_query)
            .map_err(|e| format!("served.aggregate.*: invalid scheme '{spec_query}': {e}"))?;
        Ok(ServerState {
            queue: BoundedQueue::new(cfg.queue_depth),
            cfg,
            spec: AggregationSpec::from_query(&spec),
            streams: Mutex::new(BTreeMap::new()),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            replay_complete: AtomicBool::new(false),
            batch_ordinal: AtomicU64::new(0),
            conn_ordinal: AtomicU64::new(0),
            active_http: AtomicUsize::new(0),
        })
    }

    fn metrics(&self) -> &'static MetricsRegistry {
        metrics::global()
    }

    /// Begin the graceful drain (idempotent).
    pub fn begin_shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn stopped(&self) -> bool {
        self.stopped.load(Ordering::SeqCst)
    }

    /// Readiness: replay done and the queue below its high-watermark
    /// (full = not ready: new batches would only bounce) and not
    /// draining.
    fn ready(&self) -> (bool, String) {
        let replayed = self.replay_complete.load(Ordering::SeqCst);
        let depth = self.queue.len();
        let below_watermark = depth < self.queue.capacity();
        let draining = self.draining();
        let ready = replayed && below_watermark && !draining;
        let detail = format!(
            "replay_complete={replayed} queue_depth={depth}/{} draining={draining}",
            self.queue.capacity()
        );
        (ready, detail)
    }

    /// Get or open a stream's state. Opening journals + replays under
    /// the map lock so two HELLOs for a new stream cannot race a
    /// double-create.
    fn stream(&self, name: &str) -> Result<Arc<Mutex<StreamState>>, String> {
        if !valid_stream_name(name) {
            return Err(format!("invalid stream name '{name}'"));
        }
        let mut map = self.streams.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(s) = map.get(name) {
            return Ok(Arc::clone(s));
        }
        let state = StreamState::open(name, &self.cfg, &self.spec)?;
        let state = Arc::new(Mutex::new(state));
        map.insert(name.to_string(), Arc::clone(&state));
        self.metrics().gauge("served.streams").set(map.len() as u64);
        Ok(state)
    }

    fn sorted_streams(&self) -> Vec<(String, Arc<Mutex<StreamState>>)> {
        let map = self.streams.lock().unwrap_or_else(|e| e.into_inner());
        map.iter().map(|(k, v)| (k.clone(), Arc::clone(v))).collect()
    }

    fn degraded_streams(&self) -> Vec<String> {
        self.sorted_streams()
            .into_iter()
            .filter(|(_, s)| s.lock().unwrap_or_else(|e| e.into_inner()).degraded())
            .map(|(name, _)| name)
            .collect()
    }

    fn refresh_degraded_gauge(&self) -> usize {
        let n = self.degraded_streams().len();
        self.metrics()
            .gauge("served.streams.degraded")
            .set(n as u64);
        n
    }

    /// Process one batch on a worker thread. May panic deliberately:
    /// an armed `served.ingest` fault requeues the batch at the queue
    /// head and then panics, simulating a worker killed mid-ingest
    /// with zero accepted-batch loss (the supervisor restarts the
    /// worker; the restarted worker redelivers the batch).
    fn process(&self, batch: Batch) {
        let label = format!("{}#{}", batch.stream, batch.ordinal);
        let key = stable_hash(&label);
        if caliper_faults::trigger(sites::SERVED_INGEST, key, &label).is_some() {
            self.queue.requeue_front(batch);
            self.metrics()
                .gauge_volatile("served.queue.depth")
                .set(self.queue.len() as u64);
            panic!("injected worker kill at {} ({label})", sites::SERVED_INGEST);
        }
        let mut payload = batch.payload;
        caliper_faults::mutate(sites::SERVED_INGEST, key, &label, &mut payload);

        let reply = match self.stream(&batch.stream) {
            Err(e) => Reply::Error(e),
            Ok(stream) => {
                let mut s = stream.lock().unwrap_or_else(|e| e.into_inner());
                let was_degraded = s.degraded();
                match s.process_batch(&payload) {
                    Ok(ack) => {
                        self.metrics().counter("served.ingest.accepted").inc();
                        self.metrics()
                            .counter("served.ingest.records")
                            .add(ack.records);
                        Reply::Ok(format!("seq={} records={}", ack.last_seq, ack.records))
                    }
                    Err(msg) => {
                        self.metrics().counter("served.ingest.failed").inc();
                        if s.degraded() {
                            if !was_degraded {
                                drop(s);
                                self.refresh_degraded_gauge();
                            }
                            Reply::Degraded(msg)
                        } else {
                            Reply::Error(msg)
                        }
                    }
                }
            }
        };
        // The handler may have timed out and gone; that's its problem.
        let _ = batch.reply.try_send(reply);
    }

    fn worker_loop(&self) {
        loop {
            if self.stopped() {
                return;
            }
            match self.queue.pop_timeout(Duration::from_millis(50)) {
                Some(batch) => {
                    self.metrics()
                        .gauge_volatile("served.queue.depth")
                        .set(self.queue.len() as u64);
                    self.process(batch);
                }
                None => {
                    if self.draining() && self.queue.is_empty() {
                        return;
                    }
                }
            }
        }
    }

    /// The query plane: snapshot warm rows (all streams or one) into a
    /// fresh store, tag each row with its stream, and evaluate `q`
    /// under the per-query deadline. Returns `(status, body)`.
    fn run_http_query(&self, q: &str, stream_filter: Option<&str>) -> (u16, String) {
        self.metrics().counter("served.query.count").inc();
        let deadline = Deadline::after(self.cfg.query_deadline);
        // Fault site: `delay(ms)` rules sleep here (consuming budget —
        // the deterministic "slow query"); `err`/`fail` rules refuse
        // the query outright.
        let key = stable_hash(q);
        if caliper_faults::trigger(sites::SERVED_QUERY, key, q).is_some() {
            self.metrics().counter("served.query.failed").inc();
            return (503, format!("injected fault at {}\n", sites::SERVED_QUERY));
        }

        let out_store = Arc::new(AttributeStore::new());
        let stream_attr = match out_store.create("stream", ValueType::Str, Properties::DEFAULT) {
            Ok(a) => a.id(),
            Err(e) => return (500, format!("interning stream column: {e:?}\n")),
        };
        let mut rows = Vec::new();
        let mut streams_seen = 0usize;
        let mut streams_skipped = 0usize;
        let selected: Vec<_> = self
            .sorted_streams()
            .into_iter()
            .filter(|(name, _)| stream_filter.is_none_or(|f| f == name))
            .collect();
        if let Some(f) = stream_filter {
            if selected.is_empty() {
                return (404, format!("unknown stream '{f}'\n"));
            }
        }
        for (_, stream) in &selected {
            if deadline.expired() {
                streams_skipped += 1;
                continue;
            }
            let s = stream.lock().unwrap_or_else(|e| e.into_inner());
            rows.extend(s.warm_rows(&out_store, stream_attr));
            streams_seen += 1;
        }

        match run_records_with_deadline(out_store, &rows, q, &deadline) {
            Err(e) => (400, format!("query error: {e}\n")),
            Ok(run) if !run.complete || streams_skipped > 0 => {
                self.metrics()
                    .counter("served.query.deadline_exceeded")
                    .inc();
                let body = format!(
                    "warning: deadline exceeded ({} ms): partial result over {} of {} rows, {} of {} streams\n{}",
                    self.cfg.query_deadline.as_millis(),
                    run.processed,
                    rows.len(),
                    streams_seen,
                    streams_seen + streams_skipped,
                    run.result.render()
                );
                (408, body)
            }
            Ok(run) => (200, run.result.render()),
        }
    }

    /// Serve one HTTP connection (one request, `Connection: close`).
    fn handle_http(&self, conn: TcpStream) {
        let _ = conn.set_read_timeout(Some(Duration::from_secs(10)));
        let _ = conn.set_write_timeout(Some(Duration::from_secs(10)));
        let mut writer = match conn.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let mut reader = BufReader::new(conn);
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return,
            Err(e) => {
                let _ = writer.write_all(&text_response(400, &format!("{e}\n")));
                return;
            }
        };
        let (status, body) = self.route(&req);
        let _ = writer.write_all(&text_response(status, &body));
    }

    fn route(&self, req: &Request) -> (u16, String) {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => (200, "ok\n".to_string()),
            ("GET", "/readyz") => {
                let (ready, detail) = self.ready();
                if ready {
                    (200, format!("ready\n{detail}\n"))
                } else {
                    (503, format!("not ready\n{detail}\n"))
                }
            }
            ("GET", "/stats") => {
                self.refresh_health_gauges();
                (200, self.metrics().render_text(true))
            }
            ("POST", "/shutdown") => {
                self.begin_shutdown();
                (200, "draining\n".to_string())
            }
            ("GET", "/query") => match req.params.get("q") {
                Some(q) => self.run_http_query(q, req.params.get("stream").map(String::as_str)),
                None => (400, "missing q parameter\n".to_string()),
            },
            ("GET", _) => (404, format!("no such endpoint: {}\n", req.path)),
            _ => (405, format!("method {} not allowed\n", req.method)),
        }
    }

    /// Keep the stable `served.*` health gauges current (they are
    /// reported in `--stats` sorted with the rest of the registry).
    fn refresh_health_gauges(&self) {
        let m = self.metrics();
        m.gauge("served.healthy").set(1);
        let (ready, _) = self.ready();
        m.gauge("served.ready").set(u64::from(ready));
        self.refresh_degraded_gauge();
    }

    /// Serve one ingest connection.
    fn handle_ingest(&self, conn: TcpStream) {
        let _ = conn.set_read_timeout(Some(CONN_READ_TIMEOUT));
        let _ = conn.set_write_timeout(Some(Duration::from_secs(10)));
        let mut writer = match conn.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let mut reader = BufReader::new(conn);
        let mut bound: Option<String> = None;
        let send = |writer: &mut TcpStream, reply: Reply| -> std::io::Result<()> {
            writer.write_all(reply.to_line().as_bytes())?;
            writer.write_all(b"\n")
        };
        loop {
            let line = match read_line(&mut reader) {
                Ok(Some(line)) => line,
                Ok(None) | Err(_) => return,
            };
            let command = match Command::parse(&line) {
                Ok(c) => c,
                Err(e) => {
                    // A malformed command may precede an unframed
                    // payload: reply, then drop the desynced stream.
                    let _ = send(&mut writer, Reply::Error(e));
                    return;
                }
            };
            let reply = match command {
                Command::Ping => Reply::Ok("pong".to_string()),
                Command::Quit => {
                    let _ = send(&mut writer, Reply::Ok("bye".to_string()));
                    return;
                }
                Command::Hello(name) => match self.stream(&name) {
                    Ok(_) => {
                        bound = Some(name.clone());
                        Reply::Ok(format!("stream={name}"))
                    }
                    Err(e) => {
                        let _ = send(&mut writer, Reply::Error(e));
                        return;
                    }
                },
                Command::Batch(len) => {
                    if len > self.cfg.batch_max_bytes {
                        let _ = send(
                            &mut writer,
                            Reply::Error(format!(
                                "batch of {len} bytes exceeds served.batch.max.bytes={}",
                                self.cfg.batch_max_bytes
                            )),
                        );
                        return; // payload unread: stream is desynced
                    }
                    let payload = match read_payload(&mut reader, len) {
                        Ok(p) => p,
                        Err(_) => return,
                    };
                    match &bound {
                        None => Reply::Error("HELLO <stream> must precede BATCH".to_string()),
                        Some(stream) => self.admit_batch(stream.clone(), payload),
                    }
                }
            };
            if send(&mut writer, reply).is_err() {
                return;
            }
        }
    }

    /// Admit one batch to the bounded queue and wait for its verdict.
    /// A full queue answers `BUSY` immediately — admission never
    /// blocks, so the accept path stays responsive under overload.
    fn admit_batch(&self, stream: String, payload: Vec<u8>) -> Reply {
        if self.draining() {
            return Reply::Error("draining: not accepting batches".to_string());
        }
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        let batch = Batch {
            stream,
            payload,
            ordinal: self.batch_ordinal.fetch_add(1, Ordering::SeqCst),
            reply: tx,
        };
        match self.queue.try_push(batch) {
            Err(_) => {
                self.metrics().counter("served.ingest.rejected").inc();
                Reply::Busy {
                    retry_after_ms: BUSY_RETRY_AFTER_MS,
                }
            }
            Ok(()) => {
                self.metrics()
                    .gauge_volatile("served.queue.depth")
                    .set(self.queue.len() as u64);
                match rx.recv_timeout(BATCH_REPLY_TIMEOUT) {
                    Ok(reply) => reply,
                    Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                        Reply::Error(
                            "ingest verdict timed out; batch state unknown, safe to retry"
                                .to_string(),
                        )
                    }
                }
            }
        }
    }
}

/// What [`Server::run`] reports back when the daemon exits.
#[derive(Debug, Clone)]
pub struct ExitSummary {
    /// 0 = clean; 2 = degraded (tripped workers, degraded streams, or
    /// an incomplete drain).
    pub exit_code: i32,
    /// Streams whose circuit breaker was open at exit.
    pub degraded_streams: Vec<String>,
    /// Worker slots whose supervisor gave up restarting.
    pub tripped_workers: usize,
    /// Whether the queue fully drained within the shutdown deadline.
    pub drained: bool,
}

/// A running daemon: bound listeners plus the shared state. Create
/// with [`Server::bind`], then [`Server::run`] to serve until drained.
pub struct Server {
    state: Arc<ServerState>,
    ingest_listener: TcpListener,
    http_listener: TcpListener,
}

impl Server {
    /// Bind both listeners (loopback only) and replay every journal
    /// found in the data directory. Readiness flips once replay is
    /// done.
    pub fn bind(cfg: ServedConfig) -> Result<Server, String> {
        let state = Arc::new(ServerState::new(cfg)?);
        let bind = |port: u16| -> Result<TcpListener, String> {
            let addr = SocketAddr::from(([127, 0, 0, 1], port));
            let listener =
                TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
            listener
                .set_nonblocking(true)
                .map_err(|e| format!("non-blocking listener: {e}"))?;
            Ok(listener)
        };
        let ingest_listener = bind(state.cfg.port)?;
        let http_listener = bind(state.cfg.http_port)?;

        // Replay existing journals before serving: queries answered
        // after readiness reflect every previously acknowledged batch.
        std::fs::create_dir_all(&state.cfg.data_dir)
            .map_err(|e| format!("creating data dir: {e}"))?;
        let mut names = Vec::new();
        let entries = std::fs::read_dir(&state.cfg.data_dir)
            .map_err(|e| format!("scanning data dir: {e}"))?;
        for entry in entries.flatten() {
            if let Some(stream) = stream_of_journal(&entry.path()) {
                names.push(stream);
            }
        }
        names.sort();
        for name in names {
            state.stream(&name).map_err(|e| {
                format!(
                    "recovering stream '{name}' from {}: {e}",
                    journal_path(&state.cfg.data_dir, &name).display()
                )
            })?;
        }
        state.replay_complete.store(true, Ordering::SeqCst);
        state.refresh_health_gauges();
        Ok(Server {
            state,
            ingest_listener,
            http_listener,
        })
    }

    /// The bound ingest address.
    pub fn ingest_addr(&self) -> SocketAddr {
        self.ingest_listener.local_addr().expect("bound listener")
    }

    /// The bound HTTP address.
    pub fn http_addr(&self) -> SocketAddr {
        self.http_listener.local_addr().expect("bound listener")
    }

    /// Shared state handle (tests and the binary use it to trigger
    /// shutdown in-process).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Serve until a graceful shutdown request finishes draining.
    /// Returns the exit summary; the process exit code is
    /// [`ExitSummary::exit_code`].
    pub fn run(self) -> ExitSummary {
        let state = &self.state;
        let mut worker_health = Vec::new();
        let mut worker_handles = Vec::new();
        for i in 0..state.cfg.workers.max(1) {
            let health = Arc::new(WorkerHealth::default());
            worker_health.push(Arc::clone(&health));
            let st = Arc::clone(state);
            let restart_metric = state.metrics().counter("served.supervisor.restarts");
            // Backoff seeded per worker slot: crash-looping workers
            // restart on decorrelated, reproducible schedules.
            let backoff = RetryPolicy {
                max_attempts: state.cfg.max_restarts.saturating_add(1).max(2),
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(100),
                jitter_seed: None,
            }
            .with_jitter(stable_hash(&format!("served.worker.{i}")));
            let handle = supervise(
                &format!("served-worker-{i}"),
                state.cfg.max_restarts,
                backoff,
                health,
                move |_| restart_metric.inc(),
                move || st.worker_loop(),
            );
            worker_handles.push(handle);
        }

        let spawn_accept = |listener: TcpListener, ingest: bool| {
            let st = Arc::clone(state);
            std::thread::spawn(move || loop {
                if st.stopped() {
                    return;
                }
                match listener.accept() {
                    Ok((conn, _peer)) => {
                        let ordinal = st.conn_ordinal.fetch_add(1, Ordering::SeqCst);
                        let label = format!("conn#{ordinal}");
                        if caliper_faults::trigger(sites::SERVED_ACCEPT, ordinal, &label)
                            .is_some()
                        {
                            // Injected accept failure: drop the
                            // connection; the loop itself never dies.
                            st.metrics().counter("served.accept.rejected").inc();
                            continue;
                        }
                        let _ = conn.set_nodelay(true);
                        let handler = Arc::clone(&st);
                        if ingest {
                            std::thread::spawn(move || handler.handle_ingest(conn));
                        } else {
                            if handler.active_http.fetch_add(1, Ordering::SeqCst)
                                >= HTTP_MAX_CONCURRENT
                            {
                                handler.active_http.fetch_sub(1, Ordering::SeqCst);
                                let mut conn = conn;
                                let _ = conn.write_all(&text_response(
                                    503,
                                    "too many concurrent requests\n",
                                ));
                                continue;
                            }
                            std::thread::spawn(move || {
                                handler.handle_http(conn);
                                handler.active_http.fetch_sub(1, Ordering::SeqCst);
                            });
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            })
        };
        let accept_ingest = spawn_accept(
            self.ingest_listener.try_clone().expect("listener clone"),
            true,
        );
        let accept_http = spawn_accept(
            self.http_listener.try_clone().expect("listener clone"),
            false,
        );

        // Park until a drain is requested, keeping health gauges warm.
        while !state.draining() {
            state.refresh_health_gauges();
            std::thread::sleep(Duration::from_millis(50));
        }

        // Drain: workers exit once the queue is empty (or trip).
        let drain_deadline = Instant::now() + state.cfg.shutdown_deadline;
        let mut drained = true;
        for handle in worker_handles {
            let mut finished = handle.is_finished();
            while !finished && Instant::now() < drain_deadline {
                std::thread::sleep(Duration::from_millis(10));
                finished = handle.is_finished();
            }
            if finished {
                let _ = handle.join();
            } else {
                drained = false; // worker wedged past the deadline
            }
        }
        drained = drained && state.queue.is_empty();
        state.stopped.store(true, Ordering::SeqCst);
        let _ = accept_ingest.join();
        let _ = accept_http.join();

        // Final flush + fsync of every journal.
        for (name, stream) in state.sorted_streams() {
            let mut s = stream.lock().unwrap_or_else(|e| e.into_inner());
            if let Err(e) = s.finalize() {
                eprintln!("cali-served: finalizing stream '{name}': {e}");
                drained = false;
            }
        }

        let tripped_workers = worker_health.iter().filter(|h| h.tripped()).count();
        let degraded_streams = state.degraded_streams();
        state.refresh_health_gauges();
        let exit_code = if tripped_workers > 0 || !degraded_streams.is_empty() || !drained {
            2
        } else {
            0
        };
        ExitSummary {
            exit_code,
            degraded_streams,
            tripped_workers,
            drained,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::IngestClient;
    use caliper_data::RecordBuilder;
    use caliper_format::Dataset;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cali-served-server-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cfg(dir: &std::path::Path) -> ServedConfig {
        ServedConfig {
            data_dir: dir.to_path_buf(),
            aggregate_ops: "count,sum(t)".to_string(),
            aggregate_key: "kernel".to_string(),
            ..ServedConfig::default()
        }
    }

    fn batch(kernels: &[(&str, i64)]) -> Vec<u8> {
        let mut ds = Dataset::new();
        for (kernel, t) in kernels {
            let rec = RecordBuilder::new(&ds.store)
                .with("kernel", *kernel)
                .with("t", *t)
                .build();
            let entries = rec
                .pairs()
                .iter()
                .map(|(a, v)| caliper_data::Entry::Imm(*a, v.clone()))
                .collect();
            ds.push(caliper_data::SnapshotRecord::from_entries(entries));
        }
        caliper_format::cali::to_bytes(&ds)
    }

    fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut conn =
            TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
            .unwrap();
        let mut body = String::new();
        use std::io::Read;
        conn.read_to_string(&mut body).unwrap();
        let status: u16 = body
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let payload = body
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, payload)
    }

    fn http_post(addr: SocketAddr, path: &str) -> u16 {
        let mut conn =
            TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        conn.write_all(format!("POST {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
            .unwrap();
        let mut body = String::new();
        use std::io::Read;
        conn.read_to_string(&mut body).unwrap();
        body.split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line")
    }

    #[test]
    fn ingest_query_drain_roundtrip() {
        let dir = tmpdir("roundtrip");
        let server = Server::bind(cfg(&dir)).unwrap();
        let ingest = server.ingest_addr();
        let http = server.http_addr();
        let runner = std::thread::spawn(move || server.run());

        let mut client = IngestClient::connect(ingest, Duration::from_secs(5)).unwrap();
        assert!(client.hello("s1").unwrap().is_ok());
        assert!(client.ping().unwrap().is_ok());
        let reply = client.send_batch(&batch(&[("a", 10), ("b", 2)])).unwrap();
        assert_eq!(reply, Reply::Ok("seq=1 records=2".to_string()));
        let reply = client.send_batch(&batch(&[("a", 5)])).unwrap();
        assert_eq!(reply, Reply::Ok("seq=2 records=1".to_string()));

        let (status, _) = http_get(http, "/healthz");
        assert_eq!(status, 200);
        let (status, ready) = http_get(http, "/readyz");
        assert_eq!(status, 200, "{ready}");

        let (status, body) = http_get(
            http,
            "/query?q=SELECT+kernel,count,sum%23t+ORDER+BY+kernel+FORMAT+csv",
        );
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, "kernel,count,sum#t\na,2,15\nb,1,2\n");

        let (status, stats) = http_get(http, "/stats");
        assert_eq!(status, 200);
        assert!(stats.contains("served.ingest.accepted=2"), "{stats}");
        assert!(stats.contains("served.ready=1"), "{stats}");

        assert_eq!(http_post(http, "/shutdown"), 200);
        let summary = runner.join().unwrap();
        assert_eq!(summary.exit_code, 0, "{summary:?}");
        assert!(summary.drained);

        // Restart over the same data dir: recovery must reproduce the
        // pre-shutdown answer byte-for-byte.
        let server = Server::bind(cfg(&dir)).unwrap();
        let http = server.http_addr();
        let runner = std::thread::spawn(move || server.run());
        let (status, body2) = http_get(
            http,
            "/query?q=SELECT+kernel,count,sum%23t+ORDER+BY+kernel+FORMAT+csv",
        );
        assert_eq!(status, 200, "{body2}");
        assert_eq!(body2, body, "post-recovery result differs");
        assert_eq!(http_post(http, "/shutdown"), 200);
        assert_eq!(runner.join().unwrap().exit_code, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_paths_and_bad_queries_are_clean_errors() {
        let dir = tmpdir("errors");
        let server = Server::bind(cfg(&dir)).unwrap();
        let http = server.http_addr();
        let state = server.state();
        let runner = std::thread::spawn(move || server.run());

        assert_eq!(http_get(http, "/nope").0, 404);
        assert_eq!(http_get(http, "/query").0, 400);
        assert_eq!(http_get(http, "/query?q=AGGREGATE+sum(").0, 400);
        assert_eq!(http_get(http, "/query?q=SELECT+*&stream=ghost").0, 404);

        state.begin_shutdown();
        assert_eq!(runner.join().unwrap().exit_code, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
