//! Worker supervision: restart panicked workers with capped, jittered
//! exponential backoff; give up after a bounded number of restarts.
//!
//! Each worker body runs under `std::panic::catch_unwind`. A clean
//! return means the worker observed shutdown and exited — the
//! supervisor stops. A panic (organic, or injected via the
//! `served.ingest` fault site) is counted, published as
//! `served.supervisor.restarts`, and the body is re-run after the next
//! backoff sleep from a seeded [`RetryPolicy`] schedule — the same
//! bounded decorrelated-jitter discipline the format reader uses, so a
//! crash-looping worker backs off deterministically for a fixed seed
//! instead of spinning hot. After `max_restarts` restarts the
//! supervisor *trips*: it stops restarting, records the trip, and the
//! daemon reports degraded (exit code 2) — crash loops become a visible
//! degraded state, not an invisible busy loop.
//!
//! Shared state accessed by workers is guarded by poison-tolerant locks
//! (`lock().unwrap_or_else(|e| e.into_inner())`, the repo-wide idiom),
//! so `AssertUnwindSafe` is sound here: a panicking worker leaves no
//! lock permanently unusable, and per-stream consistency is restored by
//! the journal redelivery path, not by lock poisoning.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use caliper_format::retry::RetryPolicy;

/// Shared view of one supervised worker slot's health.
#[derive(Debug, Default)]
pub struct WorkerHealth {
    restarts: AtomicU64,
    tripped: AtomicBool,
}

impl WorkerHealth {
    /// Times the worker body panicked and was restarted.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// True once the supervisor exhausted its restart budget and gave
    /// up on this slot.
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }
}

/// Spawn `body` on a supervised thread. The supervisor restarts the
/// body on panic (up to `max_restarts` times, sleeping the seeded
/// `backoff` schedule between restarts, re-capped at its final delay
/// for restarts beyond the schedule length) and stops on clean return.
/// `on_restart` runs after each panic is caught — the hook that bumps
/// the restart metric.
pub fn supervise(
    name: &str,
    max_restarts: u32,
    backoff: RetryPolicy,
    health: Arc<WorkerHealth>,
    on_restart: impl Fn(u64) + Send + 'static,
    body: impl Fn() + Send + 'static,
) -> JoinHandle<()> {
    let name = name.to_string();
    std::thread::Builder::new()
        .name(name.clone())
        .spawn(move || {
            let delays = backoff.delays();
            loop {
                if catch_unwind(AssertUnwindSafe(&body)).is_ok() {
                    return; // clean exit (shutdown observed)
                }
                let restarts = health.restarts.fetch_add(1, Ordering::Relaxed) + 1;
                on_restart(restarts);
                if restarts > u64::from(max_restarts) {
                    health.tripped.store(true, Ordering::Relaxed);
                    return;
                }
                // Beyond the schedule, keep sleeping the final (capped)
                // delay rather than restarting immediately.
                let idx = (restarts as usize - 1).min(delays.len().saturating_sub(1));
                if let Some(delay) = delays.get(idx) {
                    if !delay.is_zero() {
                        std::thread::sleep(*delay);
                    }
                }
            }
        })
        .unwrap_or_else(|e| panic!("spawning supervised thread '{name}': {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::time::Duration;

    fn no_backoff() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter_seed: None,
        }
    }

    #[test]
    fn restarts_until_body_succeeds() {
        let attempts = Arc::new(AtomicU32::new(0));
        let health = Arc::new(WorkerHealth::default());
        let a = Arc::clone(&attempts);
        let handle = supervise("test-worker", 5, no_backoff(), Arc::clone(&health), |_| {}, move || {
            if a.fetch_add(1, Ordering::Relaxed) < 2 {
                panic!("injected");
            }
        });
        handle.join().unwrap();
        assert_eq!(attempts.load(Ordering::Relaxed), 3);
        assert_eq!(health.restarts(), 2);
        assert!(!health.tripped());
    }

    #[test]
    fn trips_after_restart_budget() {
        let health = Arc::new(WorkerHealth::default());
        let hook_calls = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hook_calls);
        let handle = supervise(
            "crash-loop",
            2,
            no_backoff(),
            Arc::clone(&health),
            move |_| {
                h.fetch_add(1, Ordering::Relaxed);
            },
            || panic!("always"),
        );
        handle.join().unwrap();
        // Initial run + 2 restarts all panicked; the third panic trips.
        assert_eq!(health.restarts(), 3);
        assert!(health.tripped());
        assert_eq!(hook_calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn clean_body_runs_once() {
        let attempts = Arc::new(AtomicU32::new(0));
        let health = Arc::new(WorkerHealth::default());
        let a = Arc::clone(&attempts);
        supervise("calm", 5, no_backoff(), Arc::clone(&health), |_| {}, move || {
            a.fetch_add(1, Ordering::Relaxed);
        })
        .join()
        .unwrap();
        assert_eq!(attempts.load(Ordering::Relaxed), 1);
        assert_eq!(health.restarts(), 0);
    }
}
