//! The bounded ingest queue: explicit backpressure, never blocking the
//! accept path.
//!
//! Producers (connection handlers) use [`BoundedQueue::try_push`],
//! which fails *immediately* when the queue is at capacity — the
//! handler turns that into a `BUSY retry-after` reply, pushing the wait
//! out to the client instead of absorbing it into unbounded memory or a
//! blocked accept loop (the ESS streaming lesson: overload must be
//! explicit). Consumers (ingest workers) block on
//! [`BoundedQueue::pop_timeout`] with a short timeout so they can poll
//! the shutdown flag between batches.
//!
//! [`BoundedQueue::requeue_front`] deliberately bypasses the capacity
//! check: it is the crash-redelivery path — a worker that is about to
//! die mid-batch puts the batch *back at the head* so the restarted
//! worker picks it up first and no accepted work is lost. Allowing the
//! queue to briefly hold `capacity + 1` items is the price of never
//! dropping a batch on the floor during a panic.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A fixed-capacity MPMC queue with non-blocking producers.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<VecDeque<T>>,
    capacity: usize,
    ready: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (≥ 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            capacity: capacity.max(1),
            ready: Condvar::new(),
        }
    }

    /// Non-blocking push: `Err(item)` when the queue is full, handing
    /// the item back so the caller can reply `BUSY` without cloning.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() >= self.capacity {
            return Err(item);
        }
        q.push_back(item);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Put an item back at the *head*, ignoring capacity — the
    /// crash-redelivery path (see module docs). Never fails.
    pub fn requeue_front(&self, item: T) {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        q.push_front(item);
        drop(q);
        self.ready.notify_one();
    }

    /// Blocking pop with a timeout; `None` when the queue stayed empty
    /// for the whole wait (the worker's cue to poll shutdown).
    pub fn pop_timeout(&self, wait: Duration) -> Option<T> {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(item) = q.pop_front() {
            return Some(item);
        }
        let (mut q, _timed_out) = self
            .ready
            .wait_timeout(q, wait)
            .unwrap_or_else(|e| e.into_inner());
        q.pop_front()
    }

    /// Current depth (racy by nature; used for the depth gauge and the
    /// readiness high-watermark check).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_push_fails_fast_at_capacity() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        // Full: the rejected item comes back, and nothing blocks.
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_timeout(Duration::ZERO), Some(1));
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn requeue_front_bypasses_capacity_and_orders_first() {
        let q = BoundedQueue::new(1);
        assert!(q.try_push("queued").is_ok());
        q.requeue_front("redelivered");
        assert_eq!(q.len(), 2, "redelivery may exceed capacity by one");
        assert_eq!(q.pop_timeout(Duration::ZERO), Some("redelivered"));
        assert_eq!(q.pop_timeout(Duration::ZERO), Some("queued"));
    }

    #[test]
    fn pop_timeout_returns_none_when_empty() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        let start = std::time::Instant::now();
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), None);
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn pop_wakes_on_push_from_another_thread() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(42u32).unwrap();
        assert_eq!(t.join().unwrap(), Some(42));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.try_push(1).is_ok());
        assert_eq!(q.try_push(2), Err(2));
    }
}
