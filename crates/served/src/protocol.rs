//! The ingest wire protocol: a hand-rolled line + length-prefixed
//! framing over plain TCP (`std::net` only — no external deps).
//!
//! Commands are single `\n`-terminated ASCII lines; the only binary
//! payload is the batch body, length-prefixed by its command line:
//!
//! ```text
//! client → HELLO <stream>            server → OK stream=<stream>
//! client → BATCH <len>\n<len bytes>  server → OK seq=<n> records=<m>
//!                                           | BUSY retry-after-ms=<m>
//!                                           | DEGRADED <reason>
//!                                           | ERR <reason>
//! client → PING                      server → OK pong
//! client → QUIT                      server → OK bye   (then close)
//! ```
//!
//! A batch body is a complete, self-describing `.cali` text stream
//! (attribute declarations included) — exactly what
//! [`caliper_format::cali::to_bytes`] produces. `BUSY` is the
//! backpressure reply: the queue was full, nothing was accepted, and
//! the client should retry after the hinted delay. `OK seq=...` is the
//! durability ack: the batch is journaled (and fsynced, per policy)
//! *before* this line is sent.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One server reply line, parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `OK <detail>` — the command succeeded.
    Ok(String),
    /// `BUSY retry-after-ms=<m>` — backpressure; retry after the hint.
    Busy {
        /// Suggested client-side wait before retrying.
        retry_after_ms: u64,
    },
    /// `DEGRADED <reason>` — the stream's circuit breaker is open; the
    /// batch was refused and retrying will not help until an operator
    /// intervenes.
    Degraded(String),
    /// `ERR <reason>` — the command failed (bad frame, rejected batch).
    Error(String),
}

impl Reply {
    /// Render as the wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Reply::Ok(detail) if detail.is_empty() => "OK".to_string(),
            Reply::Ok(detail) => format!("OK {detail}"),
            Reply::Busy { retry_after_ms } => format!("BUSY retry-after-ms={retry_after_ms}"),
            Reply::Degraded(reason) => format!("DEGRADED {reason}"),
            Reply::Error(reason) => format!("ERR {reason}"),
        }
    }

    /// Parse a wire line (trailing newline optional).
    pub fn parse(line: &str) -> Result<Reply, String> {
        let line = line.trim_end_matches(['\r', '\n']);
        let (word, rest) = match line.split_once(' ') {
            Some((w, r)) => (w, r),
            None => (line, ""),
        };
        match word {
            "OK" => Ok(Reply::Ok(rest.to_string())),
            "BUSY" => {
                let ms = rest
                    .strip_prefix("retry-after-ms=")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("malformed BUSY reply: '{line}'"))?;
                Ok(Reply::Busy { retry_after_ms: ms })
            }
            "DEGRADED" => Ok(Reply::Degraded(rest.to_string())),
            "ERR" => Ok(Reply::Error(rest.to_string())),
            _ => Err(format!("unrecognized reply: '{line}'")),
        }
    }

    /// True for `OK`.
    pub fn is_ok(&self) -> bool {
        matches!(self, Reply::Ok(_))
    }
}

/// One client command, parsed from its line (the `BATCH` body is read
/// separately by the caller, using the returned length).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `HELLO <stream>` — bind this connection to a stream.
    Hello(String),
    /// `BATCH <len>` — a payload of `len` bytes follows.
    Batch(usize),
    /// `PING` — liveness probe.
    Ping,
    /// `QUIT` — close the connection cleanly.
    Quit,
}

impl Command {
    /// Parse a command line (trailing newline optional).
    pub fn parse(line: &str) -> Result<Command, String> {
        let line = line.trim_end_matches(['\r', '\n']);
        let (word, rest) = match line.split_once(' ') {
            Some((w, r)) => (w, r.trim()),
            None => (line, ""),
        };
        match (word, rest) {
            ("HELLO", stream) if !stream.is_empty() => Ok(Command::Hello(stream.to_string())),
            ("HELLO", _) => Err("HELLO needs a stream name".to_string()),
            ("BATCH", len) => len
                .parse::<usize>()
                .map(Command::Batch)
                .map_err(|_| format!("malformed BATCH length: '{len}'")),
            ("PING", "") => Ok(Command::Ping),
            ("QUIT", "") => Ok(Command::Quit),
            _ => Err(format!("unrecognized command: '{line}'")),
        }
    }
}

/// Read one `\n`-terminated line (returned without the terminator).
/// `Ok(None)` = clean EOF before any byte.
pub fn read_line(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    let n = reader.read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    while buf.last().is_some_and(|b| *b == b'\n' || *b == b'\r') {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 command line"))
}

/// The ingest-side client: connects, speaks the protocol, enforces
/// socket timeouts so a wedged daemon surfaces as an I/O error instead
/// of a hang (the chaos tests and the check.sh smoke rely on this).
pub struct IngestClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl IngestClient {
    /// Connect with `timeout` applied to connect, reads, and writes.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<IngestClient> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(IngestClient {
            reader,
            writer: stream,
        })
    }

    fn round_trip(&mut self, line: &str) -> io::Result<Reply> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> io::Result<Reply> {
        let line = read_line(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection")
        })?;
        Reply::parse(&line).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Bind this connection to `stream` (must be first).
    pub fn hello(&mut self, stream: &str) -> io::Result<Reply> {
        self.round_trip(&format!("HELLO {stream}"))
    }

    /// Send one batch payload; the reply is the ack / backpressure /
    /// degradation verdict.
    pub fn send_batch(&mut self, payload: &[u8]) -> io::Result<Reply> {
        self.writer
            .write_all(format!("BATCH {}\n", payload.len()).as_bytes())?;
        self.writer.write_all(payload)?;
        self.writer.flush()?;
        self.read_reply()
    }

    /// [`send_batch`](Self::send_batch), retrying `BUSY` replies up to
    /// `max_retries` times, honoring (but capping at 1 s) the server's
    /// retry-after hint — the well-behaved client's backpressure loop.
    pub fn send_batch_retrying(
        &mut self,
        payload: &[u8],
        max_retries: u32,
    ) -> io::Result<Reply> {
        let mut attempts = 0;
        loop {
            let reply = self.send_batch(payload)?;
            match reply {
                Reply::Busy { retry_after_ms } if attempts < max_retries => {
                    attempts += 1;
                    std::thread::sleep(Duration::from_millis(retry_after_ms.min(1000)));
                }
                other => return Ok(other),
            }
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<Reply> {
        self.round_trip("PING")
    }

    /// Close cleanly.
    pub fn quit(&mut self) -> io::Result<Reply> {
        self.round_trip("QUIT")
    }
}

/// Read exactly `len` payload bytes (the `BATCH` body).
pub fn read_payload(reader: &mut impl Read, len: usize) -> io::Result<Vec<u8>> {
    let mut buf = vec![0u8; len];
    reader.read_exact(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replies_round_trip() {
        for reply in [
            Reply::Ok("seq=41 records=7".to_string()),
            Reply::Ok(String::new()),
            Reply::Busy { retry_after_ms: 250 },
            Reply::Degraded("stream 's1' circuit open".to_string()),
            Reply::Error("batch rejected: no records".to_string()),
        ] {
            let line = reply.to_line();
            assert_eq!(Reply::parse(&line).unwrap(), reply, "{line}");
            assert_eq!(Reply::parse(&format!("{line}\r\n")).unwrap(), reply);
        }
        assert!(Reply::parse("NOPE what").is_err());
        assert!(Reply::parse("BUSY sometime").is_err());
    }

    #[test]
    fn commands_parse() {
        assert_eq!(
            Command::parse("HELLO node-1\n").unwrap(),
            Command::Hello("node-1".to_string())
        );
        assert_eq!(Command::parse("BATCH 512").unwrap(), Command::Batch(512));
        assert_eq!(Command::parse("PING").unwrap(), Command::Ping);
        assert_eq!(Command::parse("QUIT").unwrap(), Command::Quit);
        for bad in ["HELLO", "HELLO  ", "BATCH", "BATCH twelve", "FETCH 1", "PING now"] {
            assert!(Command::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn read_line_handles_eof_and_crlf() {
        let mut buf = io::Cursor::new(b"HELLO s\r\nPING\n".to_vec());
        assert_eq!(read_line(&mut buf).unwrap().as_deref(), Some("HELLO s"));
        assert_eq!(read_line(&mut buf).unwrap().as_deref(), Some("PING"));
        assert_eq!(read_line(&mut buf).unwrap(), None);
    }
}
