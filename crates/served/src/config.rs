//! Daemon configuration: the `served.*` profile keys.
//!
//! `cali-served` reads its profile through the same [`Config`] machinery
//! as the in-process runtime (config file, `CALI_*` environment,
//! command-line overrides layered on top), and every key is validated by
//! [`Config::validate`] — a typo'd value is a [`ConfigError`] at
//! startup, never a silently applied default.

use std::path::PathBuf;
use std::time::Duration;

use caliper_runtime::config::{Config, ConfigError};

/// Resolved daemon configuration. See the `served.*` table in
/// [`caliper_runtime::config`] and `docs/SERVED.md` for key semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedConfig {
    /// Ingest TCP port; 0 binds an ephemeral port (written to the
    /// ports file).
    pub port: u16,
    /// Query/health HTTP port; 0 binds an ephemeral port.
    pub http_port: u16,
    /// Directory holding one journal file per stream.
    pub data_dir: PathBuf,
    /// Bounded ingest queue capacity; a full queue answers `BUSY`.
    pub queue_depth: usize,
    /// Ingest worker thread count.
    pub workers: usize,
    /// Per-query wall-clock budget.
    pub query_deadline: Duration,
    /// Journal-replay budget per stream at startup; an over-budget
    /// replay degrades the stream instead of wedging readiness.
    pub replay_deadline: Duration,
    /// Graceful-drain budget: how long shutdown waits for queued
    /// batches to reach the journals before giving up (exit code 2).
    pub shutdown_deadline: Duration,
    /// Worker restarts the supervisor performs before giving up on the
    /// worker slot.
    pub max_restarts: u32,
    /// Consecutive failed batches that trip a stream's circuit breaker
    /// into the degraded state.
    pub max_stream_failures: u32,
    /// Aggregate-state group cap per stream (`--max-groups` semantics,
    /// overflow goes to the `__overflow__` bucket). `None` = unbounded.
    pub max_groups: Option<usize>,
    /// Largest accepted ingest batch in bytes.
    pub batch_max_bytes: usize,
    /// `fsync` journals as part of accepting each batch (durability
    /// against OS crashes, not just process crashes).
    pub fsync: bool,
    /// Resident aggregation op list (CalQL `AGGREGATE` syntax).
    pub aggregate_ops: String,
    /// Resident aggregation key (comma list, CalQL `GROUP BY` syntax).
    pub aggregate_key: String,
}

impl Default for ServedConfig {
    fn default() -> ServedConfig {
        ServedConfig {
            port: 0,
            http_port: 0,
            data_dir: PathBuf::from("."),
            queue_depth: 64,
            workers: 2,
            query_deadline: Duration::from_millis(2000),
            replay_deadline: Duration::from_millis(30_000),
            shutdown_deadline: Duration::from_millis(10_000),
            max_restarts: 5,
            max_stream_failures: 3,
            max_groups: None,
            batch_max_bytes: 4 << 20,
            fsync: false,
            aggregate_ops: "count".to_string(),
            aggregate_key: String::new(),
        }
    }
}

impl ServedConfig {
    /// Resolve a daemon configuration from a (validated) profile.
    /// Runs [`Config::validate`] first, so a malformed `served.*` value
    /// is reported as its [`ConfigError`] instead of defaulting.
    pub fn from_config(config: &Config) -> Result<ServedConfig, ConfigError> {
        config.validate()?;
        let d = ServedConfig::default();
        let ms = |key: &str, dflt: Duration| {
            Duration::from_millis(config.get_u64(key, dflt.as_millis() as u64))
        };
        Ok(ServedConfig {
            port: config.get_u64("served.port", u64::from(d.port)) as u16,
            http_port: config.get_u64("served.http.port", u64::from(d.http_port)) as u16,
            data_dir: config
                .get("served.data.dir")
                .map(PathBuf::from)
                .unwrap_or(d.data_dir),
            queue_depth: config.get_u64("served.queue.depth", d.queue_depth as u64) as usize,
            workers: config.get_u64("served.workers", d.workers as u64) as usize,
            query_deadline: ms("served.query.deadline.ms", d.query_deadline),
            replay_deadline: ms("served.replay.deadline.ms", d.replay_deadline),
            shutdown_deadline: ms("served.shutdown.deadline.ms", d.shutdown_deadline),
            max_restarts: config.get_u64("served.supervisor.max.restarts", u64::from(d.max_restarts))
                as u32,
            max_stream_failures: config
                .get_u64("served.stream.max.failures", u64::from(d.max_stream_failures))
                as u32,
            max_groups: match config.get_u64("served.max.groups", 0) {
                0 => None,
                n => Some(n as usize),
            },
            batch_max_bytes: config.get_u64("served.batch.max.bytes", d.batch_max_bytes as u64)
                as usize,
            fsync: config.get_bool("served.fsync", d.fsync),
            aggregate_ops: config
                .get("served.aggregate.ops")
                .unwrap_or(&d.aggregate_ops)
                .to_string(),
            aggregate_key: config
                .get("served.aggregate.key")
                .unwrap_or(&d.aggregate_key)
                .to_string(),
        })
    }

    /// The resident aggregation scheme as a CalQL query text — parsed
    /// once at startup, its [`AggregationSpec`] drives every stream's
    /// warm [`Aggregator`].
    ///
    /// [`AggregationSpec`]: caliper_query::AggregationSpec
    /// [`Aggregator`]: caliper_query::Aggregator
    pub fn aggregate_query(&self) -> String {
        if self.aggregate_key.trim().is_empty() {
            format!("AGGREGATE {}", self.aggregate_ops)
        } else {
            format!("AGGREGATE {} GROUP BY {}", self.aggregate_ops, self.aggregate_key)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_resolve_from_empty_profile() {
        let cfg = ServedConfig::from_config(&Config::new()).unwrap();
        assert_eq!(cfg, ServedConfig::default());
        assert_eq!(cfg.aggregate_query(), "AGGREGATE count");
    }

    #[test]
    fn profile_overrides_apply() {
        let cfg = ServedConfig::from_config(
            &Config::new()
                .set("served.port", "7777")
                .set("served.queue.depth", "8")
                .set("served.query.deadline.ms", "250")
                .set("served.max.groups", "100")
                .set("served.aggregate.ops", "count,sum(time.duration)")
                .set("served.aggregate.key", "kernel"),
        )
        .unwrap();
        assert_eq!(cfg.port, 7777);
        assert_eq!(cfg.queue_depth, 8);
        assert_eq!(cfg.query_deadline, Duration::from_millis(250));
        assert_eq!(cfg.max_groups, Some(100));
        assert_eq!(
            cfg.aggregate_query(),
            "AGGREGATE count,sum(time.duration) GROUP BY kernel"
        );
    }

    #[test]
    fn malformed_keys_are_config_errors() {
        let err = ServedConfig::from_config(&Config::new().set("served.queue.depth", "0"))
            .unwrap_err();
        assert!(err.message.contains("served.queue.depth"), "{err}");
    }
}
