//! Minimal HTTP/1.1 for the query/health plane — just enough of the
//! protocol, hand-rolled over `std::net`, to serve:
//!
//! * `GET /query?q=<calql>[&stream=<name>]` — run a CalQL query over
//!   the warm aggregate state (all streams, or one);
//! * `GET /healthz` — liveness (the process answers);
//! * `GET /readyz` — readiness (journal replay finished AND the ingest
//!   queue is below its high-watermark);
//! * `GET /stats` — the metrics registry, stable block first;
//! * `POST /shutdown` — begin the graceful drain (see `docs/SERVED.md`
//!   for why drain is an endpoint rather than a signal handler).
//!
//! One request per connection (`Connection: close`), bodies ignored on
//! GET, percent-encoding decoded for query parameters. Anything the
//! parser does not understand is a 400 — never a panic, never a hang
//! (sockets carry read timeouts).

use std::collections::BTreeMap;
use std::io::{self, BufRead};

/// A parsed request line + query parameters. Headers are read and
/// discarded (none affect these endpoints).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET` / `POST` / anything else (rejected by the router).
    pub method: String,
    /// Path without the query string, e.g. `/query`.
    pub path: String,
    /// Decoded query parameters (last occurrence wins).
    pub params: BTreeMap<String, String>,
}

/// Decode `%xx` escapes and `+`-as-space in a query component. Invalid
/// escapes are kept literally (lenient, like browsers).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                match (
                    bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16)),
                    bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16)),
                ) {
                    (Some(hi), Some(lo)) => {
                        out.push((hi * 16 + lo) as u8);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parse the request line and headers from `reader`. `Ok(None)` on a
/// clean EOF before any byte (client connected and left).
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Option<Request>> {
    let request_line = match crate::protocol::read_line(reader)? {
        Some(line) => line,
        None => return Ok(None),
    };
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m.to_string(), t.to_string()),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed request line: '{request_line}'"),
            ))
        }
    };
    // Drain headers up to the blank line; none are interpreted.
    loop {
        match crate::protocol::read_line(reader)? {
            Some(line) if line.is_empty() => break,
            Some(_) => continue,
            None => break,
        }
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.clone(), ""),
    };
    let mut params = BTreeMap::new();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        params.insert(percent_decode(k), percent_decode(v));
    }
    Ok(Some(Request {
        method,
        path,
        params,
    }))
}

/// Render a complete HTTP/1.1 response (status + minimal headers +
/// body), `Connection: close`.
pub fn response(status: u16, reason: &str, content_type: &str, body: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Plain-text response with the conventional reason phrase for the
/// status codes this server emits.
pub fn text_response(status: u16, body: &str) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        503 => "Service Unavailable",
        _ => "Response",
    };
    response(status, reason, "text/plain; charset=utf-8", body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn decodes_percent_and_plus() {
        assert_eq!(percent_decode("a+b%20c"), "a b c");
        assert_eq!(
            percent_decode("AGGREGATE%20count%2Csum(t)%20GROUP%20BY%20kernel"),
            "AGGREGATE count,sum(t) GROUP BY kernel"
        );
        // Lenient on malformed escapes.
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn parses_request_with_params() {
        let raw = "GET /query?q=AGGREGATE+count&stream=s1 HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n";
        let req = read_request(&mut Cursor::new(raw.as_bytes()))
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/query");
        assert_eq!(req.params.get("q").map(String::as_str), Some("AGGREGATE count"));
        assert_eq!(req.params.get("stream").map(String::as_str), Some("s1"));
    }

    #[test]
    fn empty_connection_is_none_and_garbage_is_error() {
        assert_eq!(read_request(&mut Cursor::new(b"".to_vec())).unwrap(), None);
        assert!(read_request(&mut Cursor::new(b"NONSENSE\r\n\r\n".to_vec())).is_err());
    }

    #[test]
    fn responses_carry_length_and_close() {
        let resp = String::from_utf8(text_response(408, "deadline exceeded")).unwrap();
        assert!(resp.starts_with("HTTP/1.1 408 Request Timeout\r\n"), "{resp}");
        assert!(resp.contains("Content-Length: 17\r\n"));
        assert!(resp.contains("Connection: close\r\n"));
        assert!(resp.ends_with("deadline exceeded"));
    }
}
