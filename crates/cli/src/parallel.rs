//! The parallel cross-process query engine (§IV-C).
//!
//! "In the MPI version, each process is assigned a subset of the data
//! files, and first applies the query on its assigned dataset. Then, we
//! organize the processes in a tree based on their rank, and perform a
//! logarithmic reduction: 'leaf' processes send the local aggregation
//! results to their parent, where the partial results are aggregated
//! again."
//!
//! The engine additionally reports the timing breakdown that Figure 4
//! plots: per-rank local read+process time, and the per-tree-level
//! merge times from which the critical-path reduction time is computed.
//! On a laptop all "ranks" share a few cores, so wall-clock weak
//! scaling is not observable directly; the critical path over the tree
//! levels is the machine-independent quantity (see DESIGN.md §3).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use caliper_query::{parse_query, ParseError, Pipeline, QueryResult};
use mpisim::{
    gather, reduce_tree_resilient, Comm, Executor, FaultPlan, HbTrace, ReduceCoverage, ReduceTask,
    ResilienceOptions, SchedError, Topology,
};

use crate::read_files;

/// Timing breakdown of one parallel query run.
#[derive(Debug, Clone, Default)]
pub struct ParallelTimings {
    /// Per-rank wall time for reading and processing the local input.
    pub local_s: Vec<f64>,
    /// Per-tree-level maximum merge time (critical path per level).
    pub level_merge_max_s: Vec<f64>,
    /// Critical-path reduction time: the sum of the level maxima.
    pub reduction_s: f64,
    /// Time rank 0 spent finishing (flush + sort + column resolution).
    pub finish_s: f64,
}

impl ParallelTimings {
    /// Maximum local read+process time over ranks.
    pub fn local_max_s(&self) -> f64 {
        self.local_s.iter().copied().fold(0.0, f64::max)
    }

    /// Estimated total critical-path runtime including I/O:
    /// max local + reduction + root finish.
    pub fn total_s(&self) -> f64 {
        self.local_max_s() + self.reduction_s + self.finish_s
    }
}

/// Errors from the parallel query engine.
#[derive(Debug)]
pub enum ParallelError {
    /// Query text failed to parse.
    Parse(ParseError),
    /// The query has no aggregation — partial results of a pass-through
    /// query cannot be merged across processes.
    NotAnAggregation,
    /// A rank failed to read its input files.
    Io(String),
    /// The scheduler detected that the run can never finish — a
    /// virtual deadlock, with the blocked ranks and wait cycles named.
    Deadlock(SchedError),
}

impl std::fmt::Display for ParallelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParallelError::Parse(e) => write!(f, "query parse error: {e}"),
            ParallelError::NotAnAggregation => {
                f.write_str("parallel queries must aggregate (use AGGREGATE and/or GROUP BY)")
            }
            ParallelError::Io(m) => write!(f, "input error: {m}"),
            ParallelError::Deadlock(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ParallelError {}

/// Tag used for the per-rank timing report.
struct RankReport {
    local_s: f64,
    /// (tree level, merge seconds) for each merge this rank performed.
    merges: Vec<(usize, f64)>,
}

/// Run `query` over `files_per_rank.len()` simulated query processes,
/// one thread each; rank `i` reads `files_per_rank[i]`. Returns the
/// result (from rank 0) and the timing breakdown.
pub fn parallel_query(
    query: &str,
    files_per_rank: Vec<Vec<PathBuf>>,
) -> Result<(QueryResult, ParallelTimings), ParallelError> {
    let spec = parse_query(query).map_err(ParallelError::Parse)?;
    if !spec.is_aggregation() {
        return Err(ParallelError::NotAnAggregation);
    }
    let size = files_per_rank.len().max(1);
    let spec = Arc::new(spec);
    let files = Arc::new(files_per_rank);

    let results = mpisim::run(size, move |mut comm: Comm| {
        let rank = comm.rank();
        let size = comm.size();

        // --- local phase: read + process assigned files ---
        let start = Instant::now();
        let ds = read_files(&files[rank]).map_err(|e| e.to_string())?;
        let mut pipeline = Pipeline::new((*spec).clone(), Arc::clone(&ds.store));
        pipeline.process_dataset(&ds);
        let local_s = start.elapsed().as_secs_f64();

        // --- binomial-tree reduction, timing each merge ---
        let mut merges = Vec::new();
        let mut step = 1usize;
        let mut level = 0usize;
        let mut mine = Some(pipeline);
        while step < size {
            if rank.is_multiple_of(2 * step) {
                let partner = rank + step;
                if partner < size {
                    let theirs: Pipeline =
                        comm.recv(partner, 1).map_err(|e| e.to_string())?;
                    let t = Instant::now();
                    mine.as_mut().expect("receiver holds a pipeline").merge(theirs);
                    merges.push((level, t.elapsed().as_secs_f64()));
                }
            } else {
                let parent = rank - step;
                comm.send(parent, 1, mine.take().expect("sender holds a pipeline"))
                    .map_err(|e| e.to_string())?;
                break;
            }
            step *= 2;
            level += 1;
        }

        // --- gather timing reports at rank 0 ---
        let report = RankReport { local_s, merges };
        let reports = gather(&mut comm, report).map_err(|e| e.to_string())?;
        Ok::<_, String>((mine, reports))
    });

    let mut root_pipeline = None;
    let mut reports = None;
    for (rank, r) in results.into_iter().enumerate() {
        let (pipeline, rank_reports) = r.map_err(ParallelError::Io)?;
        if rank == 0 {
            root_pipeline = pipeline;
            reports = rank_reports;
        }
    }
    let root_pipeline = root_pipeline.expect("rank 0 holds the merged pipeline");
    let reports = reports.expect("rank 0 gathered the reports");

    let t = Instant::now();
    let result = root_pipeline.finish();
    let finish_s = t.elapsed().as_secs_f64();

    let levels = (usize::BITS - (size - 1).leading_zeros()) as usize;
    let mut level_merge_max_s = vec![0.0f64; levels];
    let mut local_s = Vec::with_capacity(size);
    for report in &reports {
        local_s.push(report.local_s);
        for &(level, seconds) in &report.merges {
            level_merge_max_s[level] = level_merge_max_s[level].max(seconds);
        }
    }
    let reduction_s = level_merge_max_s.iter().sum();
    Ok((
        result,
        ParallelTimings {
            local_s,
            level_merge_max_s,
            reduction_s,
            finish_s,
        },
    ))
}

/// Outcome of a fault-injected parallel query: the merged result from
/// rank 0 plus the coverage report of the resilient reduction.
#[derive(Debug)]
pub struct ResilientReport {
    /// Ranks whose local aggregations are folded into the result.
    pub included: Vec<usize>,
    /// Ranks whose contributions were lost to the injected faults
    /// (dead, or stranded behind a dead ancestor in the tree).
    pub lost: Vec<usize>,
}

impl ResilientReport {
    fn from_coverage(c: ReduceCoverage) -> ResilientReport {
        ResilientReport {
            included: c.included,
            lost: c.lost,
        }
    }
}

/// Like [`parallel_query`], but executed under a scripted
/// [`FaultPlan`] with the fault-tolerant tree reduction: dead ranks are
/// routed around instead of deadlocking the run, and the report states
/// exactly which ranks' data the result covers.
///
/// Differences from the fault-free engine, both deliberate:
///
/// * no timing gather — a collective over all ranks would hang on the
///   dead ones; resilience and timing harvesting don't mix;
/// * the result covers `report.included` only. It equals a serial
///   aggregation over exactly those ranks' files (pipeline merge is
///   associative, and the tree merges survivors in rank order).
pub fn parallel_query_resilient(
    query: &str,
    files_per_rank: Vec<Vec<PathBuf>>,
    plan: FaultPlan,
    opts: ResilienceOptions,
) -> Result<(QueryResult, ResilientReport), ParallelError> {
    let spec = parse_query(query).map_err(ParallelError::Parse)?;
    if !spec.is_aggregation() {
        return Err(ParallelError::NotAnAggregation);
    }
    let size = files_per_rank.len().max(1);
    let spec = Arc::new(spec);
    let files = Arc::new(files_per_rank);

    let results = mpisim::run_with_faults(size, plan, move |mut comm: Comm| {
        let rank = comm.rank();
        let ds = read_files(&files[rank]).map_err(|e| e.to_string())?;
        let mut pipeline = Pipeline::new((*spec).clone(), Arc::clone(&ds.store));
        pipeline.process_dataset(&ds);
        reduce_tree_resilient(
            &mut comm,
            pipeline,
            |mut acc, incoming| {
                acc.merge(incoming);
                acc
            },
            &opts,
        )
        .map_err(|e| e.to_string())
    });

    // Rank 0 is never scripted to die in a meaningful run; if it was,
    // there is no result to salvage.
    let root = results
        .into_iter()
        .next()
        .expect("world has at least one rank")
        .ok_or_else(|| ParallelError::Io("rank 0 was killed by the fault plan".to_string()))?;
    let (pipeline, coverage) = root
        .map_err(ParallelError::Io)?
        .expect("rank 0 is the reduction root");
    Ok((
        pipeline.finish(),
        ResilientReport::from_coverage(coverage),
    ))
}

/// Like [`parallel_query_resilient`], but generic over the execution
/// [`Executor`] and reduction [`Topology`]: the same fault-tolerant
/// reduction state machine runs either on the thread engine
/// ([`mpisim::ThreadEngine`], one OS thread per rank) or on the
/// event engine ([`mpisim::EventEngine`], a deterministic virtual-clock
/// scheduler that handles thousands of ranks in one process).
///
/// Each rank's local phase (read + aggregate its files) runs lazily
/// inside its task's first step, so on the event engine the worker pool
/// parallelizes the file reads. A rank whose input fails to read
/// poisons its partial result; the error surfaces at the root as
/// [`ParallelError::Io`] rather than silently shrinking coverage.
pub fn parallel_query_on<E: Executor>(
    engine: &E,
    topology: Topology,
    query: &str,
    files_per_rank: Vec<Vec<PathBuf>>,
    plan: FaultPlan,
    opts: ResilienceOptions,
) -> Result<(QueryResult, ResilientReport), ParallelError> {
    let (spec, size, files) = prepare_query(query, files_per_rank)?;
    let outputs = engine
        .try_run_tasks(size, plan, query_task_factory(spec, files, topology, opts))
        .map_err(ParallelError::Deadlock)?;
    finish_query_outputs(outputs)
}

/// The outcome of a traced engine-generic query run (see
/// [`parallel_query_on_traced`]): the query outcome — which may itself
/// be a [`ParallelError::Deadlock`] — and the recorded happens-before
/// trace, present either way so the analyzer can explain failures.
#[derive(Debug)]
pub struct TracedQueryRun {
    /// The query result and coverage report, or what went wrong.
    pub outcome: Result<(QueryResult, ResilientReport), ParallelError>,
    /// The communication trace of the run.
    pub trace: HbTrace,
}

/// Like [`parallel_query_on`], but with the engine's happens-before
/// trace hook armed: returns the recorded [`HbTrace`] alongside the
/// query outcome, for `mpi-caliquery --analyze` / `--trace` and
/// `cali-race`. The outer `Err` covers pre-run failures only (parse
/// errors, non-aggregations); once the world runs, failures land in
/// [`TracedQueryRun::outcome`] with the trace preserved.
pub fn parallel_query_on_traced<E: Executor>(
    engine: &E,
    topology: Topology,
    query: &str,
    files_per_rank: Vec<Vec<PathBuf>>,
    plan: FaultPlan,
    opts: ResilienceOptions,
) -> Result<TracedQueryRun, ParallelError> {
    let (spec, size, files) = prepare_query(query, files_per_rank)?;
    let run = engine.run_tasks_traced(size, plan, query_task_factory(spec, files, topology, opts));
    let outcome = match run.outputs {
        Ok(outputs) => finish_query_outputs(outputs),
        Err(e) => Err(ParallelError::Deadlock(e)),
    };
    Ok(TracedQueryRun {
        outcome,
        trace: run.trace,
    })
}

/// Per-rank local aggregation state: the pipeline, or the read error
/// that poisoned it.
type RankPipeline = Result<Pipeline, String>;

/// A validated query run setup: the parsed spec, the world size, and
/// the shared per-rank file assignment.
type PreparedQuery = (Arc<caliper_query::QuerySpec>, usize, Arc<Vec<Vec<PathBuf>>>);

/// Parse + validate the query and fix the world size.
fn prepare_query(
    query: &str,
    files_per_rank: Vec<Vec<PathBuf>>,
) -> Result<PreparedQuery, ParallelError> {
    let spec = parse_query(query).map_err(ParallelError::Parse)?;
    if !spec.is_aggregation() {
        return Err(ParallelError::NotAnAggregation);
    }
    let size = files_per_rank.len().max(1);
    Ok((Arc::new(spec), size, Arc::new(files_per_rank)))
}

/// The boxed closure forms of the query reduction, so the task type is
/// nameable from both the plain and the traced entry points.
type MergeFn = Box<dyn FnMut(RankPipeline, RankPipeline) -> RankPipeline + Send>;
type InitFn = Box<dyn FnOnce() -> RankPipeline + Send>;
type QueryTask = ReduceTask<RankPipeline, MergeFn, InitFn>;

/// The shared task factory of the engine-generic query paths: each
/// rank lazily reads + aggregates its files, then reduces up the tree.
fn query_task_factory(
    spec: Arc<caliper_query::QuerySpec>,
    files: Arc<Vec<Vec<PathBuf>>>,
    topology: Topology,
    opts: ResilienceOptions,
) -> impl Fn(usize, usize) -> QueryTask + Send + Sync + 'static {
    move |rank, size| {
        let spec = Arc::clone(&spec);
        let files = Arc::clone(&files);
        let init: InitFn = Box::new(move || -> RankPipeline {
            let ds = read_files(&files[rank]).map_err(|e| e.to_string())?;
            let mut pipeline = Pipeline::new((*spec).clone(), Arc::clone(&ds.store));
            pipeline.process_dataset(&ds);
            Ok(pipeline)
        });
        let merge: MergeFn = Box::new(|a: RankPipeline, b| match (a, b) {
            (Ok(mut acc), Ok(incoming)) => {
                acc.merge(incoming);
                Ok(acc)
            }
            (Err(e), _) | (_, Err(e)) => Err(e),
        });
        ReduceTask::new(rank, size, topology, init, merge, opts)
    }
}

/// Extract rank 0's merged pipeline + coverage from the task outputs.
fn finish_query_outputs(
    mut outputs: Vec<Option<Option<(RankPipeline, ReduceCoverage)>>>,
) -> Result<(QueryResult, ResilientReport), ParallelError> {
    let root = outputs
        .first_mut()
        .and_then(Option::take)
        .ok_or_else(|| ParallelError::Io("rank 0 was killed by the fault plan".to_string()))?;
    let (pipeline, coverage) = root.expect("rank 0 is the reduction root");
    let pipeline = pipeline.map_err(ParallelError::Io)?;
    Ok((
        pipeline.finish(),
        ResilientReport::from_coverage(coverage),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliper_query::run_query;
    use miniapps::paradis::{self, ParaDisParams};

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("caliquery-test-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn parallel_matches_serial() {
        let dir = temp_dir("match");
        let params = ParaDisParams {
            iterations: 3,
            ..Default::default()
        };
        let paths = paradis::write_files(&params, 8, &dir).unwrap();

        let query = "AGGREGATE sum(sum#time.duration), sum(aggregate.count) GROUP BY kernel";

        // Serial: read everything into one dataset.
        let ds = read_files(&paths).unwrap();
        let serial = run_query(&ds, query).unwrap();

        // Parallel: one file per rank.
        let per_rank: Vec<Vec<PathBuf>> = paths.iter().map(|p| vec![p.clone()]).collect();
        let (parallel, timings) = parallel_query(query, per_rank).unwrap();

        assert_eq!(serial.to_table().render(), parallel.to_table().render());
        assert_eq!(timings.local_s.len(), 8);
        assert_eq!(timings.level_merge_max_s.len(), 3);
        assert!(timings.total_s() > 0.0);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uneven_file_distribution() {
        let dir = temp_dir("uneven");
        let params = ParaDisParams {
            iterations: 2,
            ..Default::default()
        };
        let paths = paradis::write_files(&params, 5, &dir).unwrap();
        // 3 ranks, round-robin distribution: [0,3], [1,4], [2]
        let mut per_rank: Vec<Vec<PathBuf>> = vec![Vec::new(); 3];
        for (i, p) in paths.iter().enumerate() {
            per_rank[i % 3].push(p.clone());
        }
        let query = "AGGREGATE sum(aggregate.count) GROUP BY mpi.rank";
        let (result, _) = parallel_query(query, per_rank).unwrap();
        // One output record per input rank.
        assert_eq!(result.records.len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resilient_query_covers_exactly_the_surviving_ranks() {
        let dir = temp_dir("resilient");
        let params = ParaDisParams {
            iterations: 2,
            ..Default::default()
        };
        let paths = paradis::write_files(&params, 4, &dir).unwrap();
        let per_rank: Vec<Vec<PathBuf>> = paths.iter().map(|p| vec![p.clone()]).collect();
        let query = "AGGREGATE sum(sum#time.duration), sum(aggregate.count) GROUP BY kernel";

        // Kill rank 2 at its first comm op (receiving rank 3's partial):
        // the {2, 3} subtree is lost, ranks 0 and 1 survive.
        let opts = ResilienceOptions {
            timeout: std::time::Duration::from_millis(150),
            retries: 1,
            backoff: std::time::Duration::from_millis(50),
        };
        let (result, report) =
            parallel_query_resilient(query, per_rank, FaultPlan::new().kill(2, 0), opts).unwrap();
        assert_eq!(report.lost, vec![2, 3]);
        assert_eq!(report.included, vec![0, 1]);

        // The merged result equals a serial aggregation over exactly
        // the surviving ranks' files.
        let survivor_paths: Vec<PathBuf> =
            report.included.iter().map(|&r| paths[r].clone()).collect();
        let ds = read_files(&survivor_paths).unwrap();
        let serial = run_query(&ds, query).unwrap();
        assert_eq!(serial.to_table().render(), result.to_table().render());

        // A fault-free resilient run covers everyone and matches the
        // plain engine.
        let per_rank: Vec<Vec<PathBuf>> = paths.iter().map(|p| vec![p.clone()]).collect();
        let (clean, clean_report) =
            parallel_query_resilient(query, per_rank.clone(), FaultPlan::new(), opts).unwrap();
        assert_eq!(clean_report.included, vec![0, 1, 2, 3]);
        assert!(clean_report.lost.is_empty());
        let (plain, _) = parallel_query(query, per_rank).unwrap();
        assert_eq!(plain.to_table().render(), clean.to_table().render());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn engine_generic_query_agrees_across_engines_and_topologies() {
        let dir = temp_dir("engines");
        let params = ParaDisParams {
            iterations: 2,
            ..Default::default()
        };
        let paths = paradis::write_files(&params, 8, &dir).unwrap();
        let per_rank: Vec<Vec<PathBuf>> = paths.iter().map(|p| vec![p.clone()]).collect();
        let query = "AGGREGATE sum(sum#time.duration), sum(aggregate.count) GROUP BY kernel";

        let (plain, _) = parallel_query(query, per_rank.clone()).unwrap();
        let expect = plain.to_table().render();

        let opts = ResilienceOptions::default();
        for topology in [Topology::Flat, Topology::TwoLevel { ranks_per_node: 3 }] {
            let (result, report) = parallel_query_on(
                &mpisim::EventEngine::new(),
                topology,
                query,
                per_rank.clone(),
                FaultPlan::new(),
                opts,
            )
            .unwrap();
            assert!(report.lost.is_empty(), "{topology:?}");
            assert_eq!(result.to_table().render(), expect, "{topology:?}");
        }

        let (result, report) = parallel_query_on(
            &mpisim::ThreadEngine,
            Topology::Flat,
            query,
            per_rank,
            FaultPlan::new(),
            opts,
        )
        .unwrap();
        assert!(report.lost.is_empty());
        assert_eq!(result.to_table().render(), expect);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn engine_generic_query_reports_read_failures() {
        let err = parallel_query_on(
            &mpisim::EventEngine::new(),
            Topology::Flat,
            "AGGREGATE count GROUP BY x",
            vec![vec![PathBuf::from("/nonexistent/file.cali")], vec![]],
            FaultPlan::new(),
            ResilienceOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ParallelError::Io(_)));
    }

    #[test]
    fn passthrough_queries_are_rejected() {
        let err = parallel_query("SELECT *", vec![vec![]]).unwrap_err();
        assert!(matches!(err, ParallelError::NotAnAggregation));
    }

    #[test]
    fn missing_files_are_reported() {
        let err = parallel_query(
            "AGGREGATE count GROUP BY x",
            vec![vec![PathBuf::from("/nonexistent/file.cali")]],
        )
        .unwrap_err();
        assert!(matches!(err, ParallelError::Io(_)));
    }
}
