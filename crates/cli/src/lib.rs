//! # cali-cli — the off-line query applications
//!
//! Library backing the two binaries (paper §IV-C):
//!
//! * `cali-query` — serial analytical aggregation over `.cali` files.
//! * `mpi-caliquery` — the scalable parallel query application: each
//!   (simulated) MPI process aggregates its assigned input files
//!   locally, then partial results are combined up a binomial reduction
//!   tree to rank 0.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod lint;
pub mod parallel;

pub use args::{parse_args, CliArgs, UsageError};
pub use lint::{check_query, exit_code, infer_schema, summary_line, CheckedQuery};
pub use parallel::{
    parallel_query, parallel_query_on, parallel_query_on_traced, parallel_query_resilient,
    ParallelError, ParallelTimings, ResilientReport, TracedQueryRun,
};

use caliper_format::{CaliError, Dataset, Pushdown, ReadPolicy, ReadReport};

/// Read one `.cali` (text) or `CALB` (binary) file into a fresh
/// dataset, sniffing the flavor from the stream header. Errors name the
/// offending file ([`CaliError::File`]).
pub fn read_one(path: impl AsRef<std::path::Path>) -> Result<Dataset, CaliError> {
    caliper_format::read_path(path)
}

/// Run an aggregation query over many files in streaming fashion: one
/// file is in memory at a time, partial aggregations are merged — the
/// serial analogue of the parallel query engine, bounding `cali-query`'s
/// memory by the largest input file instead of the whole dataset.
///
/// Pass-through (non-aggregating) queries need all records at once and
/// fall back to [`read_files`].
pub fn query_files_streaming<P: AsRef<std::path::Path>>(
    query: &str,
    paths: &[P],
) -> Result<caliper_query::QueryResult, Box<dyn std::error::Error>> {
    query_files_streaming_with(query, paths, ReadPolicy::Strict, None).map(|(result, _)| result)
}

/// [`query_files_streaming`] with a read policy and an aggregation
/// capacity: files are decoded under `policy` (per-file [`ReadReport`]s
/// come back alongside the result, in input order) and every pipeline —
/// per-file shards and the merged root alike — carries the `max_groups`
/// cap, so serial runs bound memory and overflow identically to the
/// thread-parallel engine.
pub fn query_files_streaming_with<P: AsRef<std::path::Path>>(
    query: &str,
    paths: &[P],
    policy: ReadPolicy,
    max_groups: Option<usize>,
) -> Result<(caliper_query::QueryResult, Vec<ReadReport>), Box<dyn std::error::Error>> {
    query_files_streaming_opts(query, paths, policy, max_groups, None)
}

/// [`query_files_streaming_with`] plus an optional zone-map
/// [`Pushdown`]: on CALB v2 inputs, blocks whose zone maps prove no
/// record can satisfy the pushed predicates are skipped without
/// decoding (counted in each [`ReadReport`]'s `blocks_skipped`). Pass
/// the same instance the parallel engine uses
/// ([`caliper_query::ParallelOptions::with_pushdown`]) and the result —
/// and the skip counts — stay byte-identical across `--threads`.
/// Pass-through queries fall back to [`read_files`] unfiltered.
pub fn query_files_streaming_opts<P: AsRef<std::path::Path>>(
    query: &str,
    paths: &[P],
    policy: ReadPolicy,
    max_groups: Option<usize>,
    pushdown: Option<&Pushdown>,
) -> Result<(caliper_query::QueryResult, Vec<ReadReport>), Box<dyn std::error::Error>> {
    query_files_streaming_degrade(query, paths, policy, max_groups, pushdown, false)
        .map(|(result, reports, _)| (result, reports))
}

/// What [`query_files_streaming_degrade`] produces: the query result,
/// one [`ReadReport`] per file that was actually read, and one
/// [`caliper_query::ShardFailure`] per file that was dropped.
pub type DegradedQueryOutcome = Result<
    (
        caliper_query::QueryResult,
        Vec<ReadReport>,
        Vec<caliper_query::ShardFailure>,
    ),
    Box<dyn std::error::Error>,
>;

/// [`query_files_streaming_opts`] with graceful degradation: when
/// `degrade` is set, a file whose read fails terminally (retries
/// exhausted) or whose `shard.merge` failpoint fires is *dropped* —
/// recorded as a [`caliper_query::ShardFailure`] — instead of aborting
/// the query. This mirrors [`caliper_query::ParallelOptions::degrade`]
/// exactly: the same per-file-index fault decisions, the same surviving
/// files merged in the same order, so a degraded serial run is
/// byte-identical to a degraded `--threads N` run.
pub fn query_files_streaming_degrade<P: AsRef<std::path::Path>>(
    query: &str,
    paths: &[P],
    policy: ReadPolicy,
    max_groups: Option<usize>,
    pushdown: Option<&Pushdown>,
    degrade: bool,
) -> DegradedQueryOutcome {
    let spec = caliper_query::parse_query(query)?;
    if !spec.is_aggregation() {
        let (ds, reports) = read_files_reported(paths, policy)?;
        return Ok((caliper_query::run_query(&ds, query)?, reports, Vec::new()));
    }
    let mut reports = Vec::with_capacity(paths.len());
    let mut failures = Vec::new();
    let mut acc: Option<caliper_query::Pipeline> = None;
    for (file, path) in paths.iter().enumerate() {
        let path = path.as_ref();
        let decoded = caliper_format::read_path_reported_filtered(path, policy, pushdown);
        let fault = match &decoded {
            // Fire the merge failpoint only after a successful read, so
            // the per-key attempt counters advance exactly as on the
            // parallel path (which never reaches the root merge for a
            // file whose read failed).
            Ok(_) => caliper_query::shard_merge_fault(file, path),
            Err(_) => None,
        };
        let error = match (decoded, fault) {
            (Ok((ds, report)), None) => {
                reports.push(report);
                let mut pipeline =
                    caliper_query::Pipeline::new(spec.clone(), std::sync::Arc::clone(&ds.store))
                        .with_max_groups(max_groups);
                pipeline.process_dataset(&ds);
                match &mut acc {
                    Some(root) => root.merge(pipeline),
                    None => acc = Some(pipeline),
                }
                continue;
            }
            (Ok((_, report)), Some(e)) => {
                reports.push(report);
                e
            }
            (Err(e), _) => e,
        };
        if !degrade {
            return Err(error.into());
        }
        caliper_data::metrics::global()
            .counter("query.shards_failed")
            .inc();
        failures.push(caliper_query::ShardFailure {
            file,
            path: path.to_path_buf(),
            error: error.to_string(),
        });
    }
    let acc = acc.unwrap_or_else(|| {
        caliper_query::Pipeline::new(spec, std::sync::Arc::new(Default::default()))
            .with_max_groups(max_groups)
    });
    Ok((acc.finish(), reports, failures))
}

/// Read and merge multiple `.cali` (text) or `.calb` (binary) files
/// into one dataset (shared attribute dictionary and context tree).
/// The flavor is sniffed from the stream header, not the file name, and
/// errors name the offending file ([`CaliError::File`]).
pub fn read_files<P: AsRef<std::path::Path>>(paths: &[P]) -> Result<Dataset, CaliError> {
    read_files_reported(paths, ReadPolicy::Strict).map(|(ds, _)| ds)
}

/// [`read_files`] under a [`ReadPolicy`], returning the per-file
/// [`ReadReport`]s (input order) alongside the merged dataset.
pub fn read_files_reported<P: AsRef<std::path::Path>>(
    paths: &[P],
    policy: ReadPolicy,
) -> Result<(Dataset, Vec<ReadReport>), CaliError> {
    let mut ds = Dataset::new();
    let mut reports = Vec::with_capacity(paths.len());
    for path in paths {
        // One reader per file: each stream has its own id space, which
        // the reader remaps into the shared dataset.
        let (merged, report) = caliper_format::read_path_into_reported(path, ds, policy)?;
        ds = merged;
        reports.push(report);
    }
    Ok((ds, reports))
}
