//! Shared query-checking plumbing behind `cali-query --check` and the
//! `cali-lint` binary: parse a query, run the semantic analyzer against
//! an optional schema, and render the diagnostics as human-readable
//! carets or as JSON.

use std::path::Path;

use caliper_format::Schema;
use caliper_query::{analyze, parse_query_spanned, Diagnostic};

/// One checked query: where it came from, its text, and what the
/// analyzer said about it.
#[derive(Debug, Clone)]
pub struct CheckedQuery {
    /// Display name of the query's origin (a file path or `<query>` for
    /// inline strings) — the `source` part of `source:line:col:`.
    pub source: String,
    /// The query text itself.
    pub query: String,
    /// Diagnostics, sorted by span then code (deterministic).
    pub diagnostics: Vec<Diagnostic>,
}

/// Check one query string. A parse failure yields a single `E001`
/// diagnostic (the analyzer needs a spec to look at); otherwise the
/// full semantic pass runs against `schema` when one is given.
pub fn check_query(source: &str, query: &str, schema: Option<&Schema>) -> CheckedQuery {
    let diagnostics = match parse_query_spanned(query) {
        Ok((spec, spans)) => analyze(&spec, Some(&spans), schema),
        Err(e) => vec![Diagnostic::from(&e)],
    };
    CheckedQuery {
        source: source.to_string(),
        query: query.to_string(),
        diagnostics,
    }
}

impl CheckedQuery {
    /// True when no diagnostic (of any severity) was reported.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Render all diagnostics as `source:line:col:` caret blocks.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for diag in &self.diagnostics {
            out.push_str(&diag.render(&self.source, &self.query));
        }
        out
    }

    /// Render all diagnostics as one JSON array entry per diagnostic,
    /// wrapped in an object naming the source.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"source\": \"");
        out.push_str(&caliper_format::json::escape_json(&self.source));
        out.push_str("\", \"diagnostics\": [");
        for (i, diag) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&diag.render_json(&self.query));
        }
        out.push_str("]}");
        out
    }
}

/// Exit code for a set of checked queries: `0` all clean, `1` at least
/// one error, `2` warnings only.
pub fn exit_code(checked: &[CheckedQuery]) -> u8 {
    let mut code = 0u8;
    for c in checked {
        if Diagnostic::has_errors(&c.diagnostics) {
            return 1;
        }
        if !c.diagnostics.is_empty() {
            code = 2;
        }
    }
    code
}

/// One summary line for stderr: `N error(s), M warning(s) in K queries`.
pub fn summary_line(checked: &[CheckedQuery]) -> String {
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for c in checked {
        for d in &c.diagnostics {
            match d.severity {
                caliper_query::Severity::Error => errors += 1,
                caliper_query::Severity::Warning => warnings += 1,
            }
        }
    }
    let queries = checked.len();
    let plural = |n: usize| if n == 1 { "" } else { "s" };
    format!(
        "{errors} error{}, {warnings} warning{} in {queries} quer{}",
        plural(errors),
        plural(warnings),
        if queries == 1 { "y" } else { "ies" }
    )
}

/// Infer a merged schema from data files: each path is pre-scanned for
/// attribute metadata (cheap — binary payloads are skipped, text lines
/// other than `__rec=attr`/`__rec=schema` are ignored) and the
/// per-file schemas merged, degrading conflicting types to `mixed`.
pub fn infer_schema<P: AsRef<Path>>(paths: &[P]) -> std::io::Result<Schema> {
    let mut schema = Schema::new();
    for path in paths {
        schema.merge(&Schema::infer_path(path)?);
    }
    Ok(schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliper_data::{Properties, ValueType};

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.observe("function", ValueType::Str, Properties::NESTED);
        s.observe("time.duration", ValueType::Float, Properties::AGGREGATABLE);
        s
    }

    #[test]
    fn parse_errors_become_e001() {
        let checked = check_query("<query>", "AGGREGATE sum(", None);
        assert_eq!(checked.diagnostics.len(), 1);
        assert_eq!(checked.diagnostics[0].code, "E001");
        assert_eq!(exit_code(&[checked]), 1);
    }

    #[test]
    fn clean_query_exits_zero() {
        let checked = check_query(
            "<query>",
            "AGGREGATE sum(time.duration) GROUP BY function",
            Some(&schema()),
        );
        assert!(checked.is_clean(), "{:?}", checked.diagnostics);
        assert_eq!(exit_code(&[checked]), 0);
    }

    #[test]
    fn warnings_only_exit_two() {
        let checked = check_query(
            "q.calql",
            "LET unused = scale(time.duration, 2) AGGREGATE count GROUP BY function",
            Some(&schema()),
        );
        assert_eq!(checked.diagnostics.len(), 1);
        assert_eq!(checked.diagnostics[0].code, "W001");
        assert_eq!(exit_code(std::slice::from_ref(&checked)), 2);
        // Any error anywhere wins over warnings.
        let bad = check_query("b", "AGGREGATE sum(function) GROUP BY function", Some(&schema()));
        assert_eq!(exit_code(&[checked, bad]), 1);
    }

    #[test]
    fn render_text_names_the_source() {
        let checked = check_query(
            "my.calql",
            "AGGREGATE sum(nope) GROUP BY function",
            Some(&schema()),
        );
        let text = checked.render_text();
        assert!(text.starts_with("my.calql:1:"), "{text}");
        assert!(text.contains("E002"), "{text}");
    }

    #[test]
    fn render_json_is_parseable() {
        let checked = check_query(
            "q",
            "AGGREGATE sum(function) GROUP BY function",
            Some(&schema()),
        );
        let json = checked.render_json();
        let parsed = caliper_format::parse_json(&json).unwrap();
        drop(parsed);
    }

    #[test]
    fn summary_counts() {
        let warn = check_query(
            "a",
            "LET u = scale(time.duration, 2) AGGREGATE count GROUP BY function",
            Some(&schema()),
        );
        let err = check_query("b", "AGGREGATE sum(function) GROUP BY function", Some(&schema()));
        let line = summary_line(&[warn, err]);
        assert_eq!(line, "1 error, 1 warning in 2 queries");
    }
}
