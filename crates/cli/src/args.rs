//! Minimal command-line argument parsing (flag/value pairs plus
//! positional inputs) — hand-rolled to keep the dependency closure
//! small.

use std::collections::BTreeMap;

/// Parsed command line: flags with values, boolean switches, and
/// positional arguments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CliArgs {
    /// `--flag value` / `-f value` options (last occurrence wins).
    pub options: BTreeMap<String, String>,
    /// Every occurrence of each value option, in command-line order —
    /// for flags that may be given repeatedly (`-q Q1 -q Q2`).
    pub repeated: BTreeMap<String, Vec<String>>,
    /// Bare `--switch` flags.
    pub switches: Vec<String>,
    /// Positional arguments (input files).
    pub positional: Vec<String>,
}

/// Usage error with a message to print.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for UsageError {}

/// Parse arguments. `value_flags` lists the flags that take a value
/// (both long and short spellings, without dashes).
pub fn parse_args(
    args: impl IntoIterator<Item = String>,
    value_flags: &[&str],
) -> Result<CliArgs, UsageError> {
    let mut out = CliArgs::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--").or_else(|| arg.strip_prefix('-')) {
            // `--flag=value` spelling
            if let Some((name, value)) = name.split_once('=') {
                out.options.insert(name.to_string(), value.to_string());
                out.repeated
                    .entry(name.to_string())
                    .or_default()
                    .push(value.to_string());
                continue;
            }
            if value_flags.contains(&name) {
                let value = iter
                    .next()
                    .ok_or_else(|| UsageError(format!("flag --{name} requires a value")))?;
                out.options.insert(name.to_string(), value.clone());
                out.repeated.entry(name.to_string()).or_default().push(value);
            } else {
                out.switches.push(name.to_string());
            }
        } else {
            out.positional.push(arg);
        }
    }
    Ok(out)
}

impl CliArgs {
    /// Look up an option by any of its spellings.
    pub fn get(&self, names: &[&str]) -> Option<&str> {
        names
            .iter()
            .find_map(|n| self.options.get(*n))
            .map(String::as_str)
    }

    /// Whether a switch is present.
    pub fn has(&self, names: &[&str]) -> bool {
        self.switches.iter().any(|s| names.contains(&s.as_str()))
    }

    /// Every occurrence of an option under any of its spellings, in
    /// command-line order per spelling.
    pub fn get_all(&self, names: &[&str]) -> Vec<&str> {
        names
            .iter()
            .filter_map(|n| self.repeated.get(*n))
            .flatten()
            .map(String::as_str)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_positional() {
        let args = parse_args(
            strs(&["-q", "AGGREGATE count", "in1.cali", "in2.cali", "--help"]),
            &["q", "query"],
        )
        .unwrap();
        assert_eq!(args.get(&["query", "q"]), Some("AGGREGATE count"));
        assert_eq!(args.positional, vec!["in1.cali", "in2.cali"]);
        assert!(args.has(&["help", "h"]));
    }

    #[test]
    fn equals_spelling() {
        let args = parse_args(strs(&["--np=16"]), &["np"]).unwrap();
        assert_eq!(args.get(&["np"]), Some("16"));
    }

    #[test]
    fn repeated_options_are_all_kept() {
        let args = parse_args(
            strs(&["-q", "one", "--query", "two", "-q", "three"]),
            &["q", "query"],
        )
        .unwrap();
        // Scalar lookup keeps the last occurrence per spelling…
        assert_eq!(args.get(&["q"]), Some("three"));
        // …while get_all sees every occurrence.
        assert_eq!(args.get_all(&["q", "query"]), vec!["one", "three", "two"]);
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = parse_args(strs(&["--query"]), &["query"]).unwrap_err();
        assert!(err.0.contains("--query"));
    }
}
