//! `cali-recover` — salvage snapshot journals left behind by crashed
//! profiling runs.
//!
//! A journaling runtime (`journal.enable=true`) appends every completed
//! snapshot to an append-only `.cali` journal; when the process dies —
//! panic, OOM kill, `kill -9` — the journal holds a valid prefix of the
//! run's data, possibly ending in a torn line. This tool ingests such
//! journals through the lenient reader, deduplicates double-written
//! tails via the `journal.seq` sequence attribute, reports exactly what
//! was salvaged and what was lost, and either re-emits the salvaged
//! data as a clean `.cali` file or feeds it straight into the CalQL
//! aggregator.
//!
//! ```text
//! cali-recover [-q QUERY] [-o FILE] [--max-errors N] JOURNAL.cali...
//! ```

use std::io::Write;
use std::process::ExitCode;

use cali_cli::parse_args;
use caliper_format::journal::{recover_file, RecoveryReport};
use caliper_format::{cali, CaliReader, ReadPolicy, ReadReport};

const USAGE: &str = "usage: cali-recover [-q QUERY] [-o FILE] [--max-errors N] JOURNAL.cali...

Salvages snapshot journals written by a journaling profiling run that
died mid-flight. Torn trailing lines are dropped, corrupt lines are
skipped, double-written tail records (after an append-mode resume) are
deduplicated by their journal.seq stamp, and sequence gaps are reported
as lost records. A per-journal and a combined salvage summary go to
stderr.

Options:
  -q, --query QUERY   aggregate the salvaged snapshots with a CalQL
                      query and print the result (see docs/CALQL.md)
  -o, --output FILE   write the output to FILE instead of stdout;
                      without -q, the output is the merged salvaged
                      data as a clean .cali stream
  --max-errors N      give up on a journal after skipping more than N
                      corrupt lines (default: unlimited)
  -h, --help          show this help

Exit codes: 0 everything salvaged cleanly, 1 hard error (unreadable
journal, bad query), 2 salvage succeeded but some data was lost.
";

fn main() -> ExitCode {
    let args = match parse_args(
        std::env::args().skip(1),
        &["q", "query", "o", "output", "max-errors"],
    ) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("cali-recover: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.has(&["h", "help"]) {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.positional.is_empty() {
        eprintln!("cali-recover: no journal files\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let policy = match args.get(&["max-errors"]).map(str::parse::<u64>) {
        Some(Ok(n)) => ReadPolicy::Lenient { max_errors: n },
        Some(Err(_)) => {
            eprintln!("cali-recover: --max-errors takes a non-negative integer\n{USAGE}");
            return ExitCode::FAILURE;
        }
        None => ReadPolicy::lenient(),
    };

    // Salvage every journal, then merge the recovered datasets by
    // re-reading their serialized forms through one reader (the .cali
    // reader remaps ids, so overlapping id spaces merge cleanly).
    let mut merger = CaliReader::new();
    let mut reports: Vec<RecoveryReport> = Vec::new();
    let mut hard_error = false;
    for path in &args.positional {
        match recover_file(path, policy) {
            Ok((salvaged, report)) => {
                eprintln!("cali-recover: {}", report.summary());
                let mut remap = ReadReport::default();
                if let Err(e) = merger.read_stream_with(
                    cali::to_bytes(&salvaged).as_slice(),
                    ReadPolicy::Strict,
                    &mut remap,
                ) {
                    // Cannot happen for bytes we just serialized; treat
                    // it as a hard error rather than dropping data.
                    eprintln!("cali-recover: {path}: cannot merge salvaged data: {e}");
                    hard_error = true;
                }
                reports.push(report);
            }
            Err(e) => {
                eprintln!("cali-recover: {e}");
                hard_error = true;
            }
        }
    }
    let merged = merger.finish();

    if reports.len() > 1 {
        let salvaged: u64 = reports.iter().map(|r| r.salvaged).sum();
        let skipped: u64 = reports.iter().map(|r| r.read.skipped).sum();
        let duplicates: u64 = reports.iter().map(|r| r.duplicates).sum();
        let missing: u64 = reports.iter().map(|r| r.missing).sum();
        eprintln!(
            "cali-recover: total: {salvaged} snapshots salvaged from {} journals, \
             {skipped} lines skipped, {duplicates} duplicates dropped, {missing} lost",
            reports.len()
        );
    }

    let rendered = match args.get(&["q", "query"]) {
        Some(query) => match caliper_query::run_query(&merged, query) {
            Ok(result) => result.render(),
            Err(e) => {
                eprintln!("cali-recover: query error: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => String::from_utf8_lossy(&cali::to_bytes(&merged)).into_owned(),
    };
    match args.get(&["o", "output"]) {
        Some(path) => {
            if let Err(e) = std::fs::write(path, rendered) {
                eprintln!("cali-recover: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            if lock.write_all(rendered.as_bytes()).is_err() {
                return ExitCode::FAILURE;
            }
        }
    }

    if hard_error {
        ExitCode::FAILURE
    } else if reports.iter().any(|r| r.data_lost()) {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
