//! `cali-query` — off-line analytical aggregation over `.cali` files
//! (paper §IV-C).
//!
//! ```text
//! cali-query [-q|--query QUERY] [-o|--output FILE] [--threads N] INPUT.cali...
//! ```

use std::io::Write;
use std::process::ExitCode;

use cali_cli::{parse_args, query_files_streaming, read_files};
use caliper_query::{parallel_query_files, ParallelOptions, ParallelQueryError, ShardTimings};

const USAGE: &str = "usage: cali-query [-q QUERY] [-o FILE] [--threads N] INPUT.cali...

Runs an aggregation query over Caliper data files and prints the result.

Options:
  -q, --query QUERY   the aggregation scheme, e.g.
                      \"AGGREGATE count, sum(time.duration) GROUP BY function\"
                      Clauses: AGGREGATE, GROUP BY, WHERE, SELECT,
                      ORDER BY, LET, FORMAT (table|csv|json|expand|cali|flamegraph)
                      (see docs/CALQL.md for the full language reference)
  -o, --output FILE   write the result to FILE instead of stdout
  --threads N         aggregate with N worker threads sharing a work queue
                      (default: available parallelism; 1 = serial; output
                      is identical for every N)
  --timings           report a per-worker timing breakdown on stderr
  --list-attributes   print the attribute dictionary instead of querying
  --list-globals      print dataset-global metadata instead of querying
  -h, --help          show this help
";

/// Render the attribute dictionary (name, type, properties).
fn list_attributes(ds: &caliper_format::Dataset) -> String {
    let mut out = String::from("attribute,type,properties\n");
    let mut attrs = ds.store.all();
    attrs.sort_by(|a, b| a.name().cmp(b.name()));
    for attr in attrs {
        out.push_str(&format!(
            "{},{},{}\n",
            attr.name(),
            attr.value_type(),
            attr.properties().encode()
        ));
    }
    out
}

/// Render the dataset-global metadata records.
fn list_globals(ds: &caliper_format::Dataset) -> String {
    let mut out = String::new();
    for global in &ds.globals {
        out.push_str(&global.describe(&ds.store));
        out.push('\n');
    }
    out
}

/// Print the sharded run's per-worker breakdown, mirroring
/// `mpi-caliquery --timings`.
fn report_timings(timings: &ShardTimings) {
    for (id, w) in timings.workers.iter().enumerate() {
        eprintln!(
            "# worker {id}: read {:.6} s, process {:.6} s ({} files, {} units, {} records)",
            w.read_s, w.process_s, w.files, w.units, w.records
        );
    }
    eprintln!("# slowest worker:    {:.6} s", timings.worker_max_s());
    eprintln!("# root merge:        {:.6} s", timings.merge_s);
    eprintln!("# order/select/format: {:.6} s", timings.finish_s);
    eprintln!("# critical path:     {:.6} s", timings.total_s());
}

fn main() -> ExitCode {
    let args = match parse_args(
        std::env::args().skip(1),
        &["q", "query", "o", "output", "threads"],
    ) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("cali-query: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.has(&["h", "help"]) {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.positional.is_empty() {
        eprintln!("cali-query: no input files\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let query = args.get(&["q", "query"]).unwrap_or("SELECT *");
    let threads = match args.get(&["threads"]).map(str::parse::<usize>) {
        None => ParallelOptions::default().effective_threads(),
        Some(Ok(n)) if n > 0 => n,
        Some(_) => {
            eprintln!("cali-query: --threads takes a positive integer\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let rendered = if args.has(&["list-attributes"]) || args.has(&["list-globals"]) {
        let ds = match read_files(&args.positional) {
            Ok(ds) => ds,
            Err(e) => {
                eprintln!("cali-query: {e}");
                return ExitCode::FAILURE;
            }
        };
        if args.has(&["list-attributes"]) {
            list_attributes(&ds)
        } else {
            list_globals(&ds)
        }
    } else if threads > 1 {
        // Sharded aggregation over a worker pool; pass-through queries
        // need every record in one place and drop to the serial path.
        match parallel_query_files(query, &args.positional, &ParallelOptions::with_threads(threads))
        {
            Ok((result, timings)) => {
                if args.has(&["timings"]) {
                    report_timings(&timings);
                }
                result.render()
            }
            Err(ParallelQueryError::NotAnAggregation) => {
                match query_files_streaming(query, &args.positional) {
                    Ok(result) => result.render(),
                    Err(e) => {
                        eprintln!("cali-query: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Err(e) => {
                eprintln!("cali-query: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        // --threads 1: today's serial streaming path, one input file in
        // memory at a time (memory bounded by the largest file).
        let t0 = std::time::Instant::now();
        match query_files_streaming(query, &args.positional) {
            Ok(result) => {
                if args.has(&["timings"]) {
                    eprintln!("# serial read+process: {:.6} s", t0.elapsed().as_secs_f64());
                }
                result.render()
            }
            Err(e) => {
                eprintln!("cali-query: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    match args.get(&["o", "output"]) {
        Some(path) => {
            if let Err(e) = std::fs::write(path, rendered) {
                eprintln!("cali-query: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            if lock.write_all(rendered.as_bytes()).is_err() {
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
