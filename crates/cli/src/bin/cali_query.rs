//! `cali-query` — off-line analytical aggregation over `.cali` files
//! (paper §IV-C).
//!
//! ```text
//! cali-query [-q|--query QUERY] [-o|--output FILE] INPUT.cali...
//! ```

use std::io::Write;
use std::process::ExitCode;

use cali_cli::{parse_args, query_files_streaming, read_files};

const USAGE: &str = "usage: cali-query [-q QUERY] [-o FILE] INPUT.cali...

Runs an aggregation query over Caliper data files and prints the result.

Options:
  -q, --query QUERY   the aggregation scheme, e.g.
                      \"AGGREGATE count, sum(time.duration) GROUP BY function\"
                      Clauses: AGGREGATE, GROUP BY, WHERE, SELECT,
                      ORDER BY, LET, FORMAT (table|csv|json|expand|cali|flamegraph)
  -o, --output FILE   write the result to FILE instead of stdout
  --list-attributes   print the attribute dictionary instead of querying
  --list-globals      print dataset-global metadata instead of querying
  -h, --help          show this help
";

/// Render the attribute dictionary (name, type, properties).
fn list_attributes(ds: &caliper_format::Dataset) -> String {
    let mut out = String::from("attribute,type,properties\n");
    let mut attrs = ds.store.all();
    attrs.sort_by(|a, b| a.name().cmp(b.name()));
    for attr in attrs {
        out.push_str(&format!(
            "{},{},{}\n",
            attr.name(),
            attr.value_type(),
            attr.properties().encode()
        ));
    }
    out
}

/// Render the dataset-global metadata records.
fn list_globals(ds: &caliper_format::Dataset) -> String {
    let mut out = String::new();
    for global in &ds.globals {
        out.push_str(&global.describe(&ds.store));
        out.push('\n');
    }
    out
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1), &["q", "query", "o", "output"]) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("cali-query: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.has(&["h", "help"]) {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.positional.is_empty() {
        eprintln!("cali-query: no input files\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let query = args.get(&["q", "query"]).unwrap_or("SELECT *");

    let rendered = if args.has(&["list-attributes"]) || args.has(&["list-globals"]) {
        let ds = match read_files(&args.positional) {
            Ok(ds) => ds,
            Err(e) => {
                eprintln!("cali-query: {e}");
                return ExitCode::FAILURE;
            }
        };
        if args.has(&["list-attributes"]) {
            list_attributes(&ds)
        } else {
            list_globals(&ds)
        }
    } else {
        // Aggregation queries stream one input file at a time (memory
        // bounded by the largest file); pass-through queries fall back
        // to loading everything.
        match query_files_streaming(query, &args.positional) {
            Ok(result) => result.render(),
            Err(e) => {
                eprintln!("cali-query: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    match args.get(&["o", "output"]) {
        Some(path) => {
            if let Err(e) = std::fs::write(path, rendered) {
                eprintln!("cali-query: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            if lock.write_all(rendered.as_bytes()).is_err() {
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
