//! `cali-query` — off-line analytical aggregation over `.cali` files
//! (paper §IV-C).
//!
//! ```text
//! cali-query [-q|--query QUERY] [-o|--output FILE] [--threads N] INPUT.cali...
//! ```

use std::io::Write;
use std::process::ExitCode;

use std::sync::Arc;

use cali_cli::{lint, parse_args, query_files_streaming_degrade, read_files_reported};
use caliper_format::{Pushdown, ReadPolicy, ReadReport};
use caliper_query::{
    analyze, build_pushdown, parallel_query_files, parse_query_spanned, ParallelOptions,
    ParallelQueryError, QueryResult, ShardFailure, ShardTimings, OVERFLOW_KEY,
};

const USAGE: &str = "usage: cali-query [-q QUERY] [-o FILE] [--threads N] INPUT.cali...

Runs an aggregation query over Caliper data files and prints the result.

Options:
  -q, --query QUERY   the aggregation scheme, e.g.
                      \"AGGREGATE count, sum(time.duration) GROUP BY function\"
                      Clauses: AGGREGATE, GROUP BY, WHERE, SELECT,
                      ORDER BY, LET, FORMAT (table|csv|json|expand|cali|flamegraph)
                      (see docs/CALQL.md for the full language reference)
  -o, --output FILE   write the result to FILE instead of stdout
  --threads N         aggregate with N worker threads sharing a work queue
                      (default: available parallelism; 1 = serial; output
                      is identical for every N)
  --lenient           skip corrupt records instead of aborting; a per-file
                      summary of skipped work is printed on stderr
                      (opening a missing file is still an error)
  --max-errors N      like --lenient, but give up on a file after
                      skipping more than N corrupt records; a file that
                      lands exactly on the cap succeeds with a
                      \"budget exhausted\" note on stderr and exit code 2
  --max-groups N      cap the aggregation database at N groups; once at
                      capacity, records with new keys fold into a single
                      \"__overflow__\" bucket (memory stays bounded, totals
                      stay exact, output stays identical for every --threads)
  --check[=json]      validate the query against the inputs' attribute
                      schema and exit without aggregating: diagnostics
                      go to stdout (text carets, or JSON with
                      --check=json), a summary to stderr; exit 0 clean,
                      1 on errors, 2 on warnings only
  --no-lint           suppress the advisory lint warnings normal runs
                      print on stderr
  --faults SPEC       arm the deterministic fault-injection registry,
                      e.g. \"io.read=fail(2);v2.block=corrupt(bitflip,7)\"
                      (equivalent to the CALI_FAULTS environment
                      variable; see docs/CHAOS.md for the grammar)
  --degrade           partial results instead of aborting: drop an input
                      file whose read exhausts the transient-error
                      retries, report the dropped shard on stderr, and
                      exit 2; output stays identical for every --threads
  --timings           report a per-worker timing breakdown on stderr
  --stats[=FORMAT]    report pipeline self-instrumentation metrics on
                      stderr after the query: sorted name=value lines
                      (or one JSON object with --stats=json). The block
                      contains only deterministic metrics and is
                      byte-identical for every --threads N;
                      --stats=full adds volatile wall-clock timers
  --list-attributes   print the attribute dictionary instead of querying
  --list-globals      print dataset-global metadata instead of querying
  -h, --help          show this help

Exit codes: 0 success, 1 error, 2 success but the result is partial
(lenient reads skipped records, a file hit the --max-errors budget
exactly, or --degrade dropped a failed shard).
";

/// Render the attribute dictionary (name, type, properties).
fn list_attributes(ds: &caliper_format::Dataset) -> String {
    let mut out = String::from("attribute,type,properties\n");
    let mut attrs = ds.store.all();
    attrs.sort_by(|a, b| a.name().cmp(b.name()));
    for attr in attrs {
        out.push_str(&format!(
            "{},{},{}\n",
            attr.name(),
            attr.value_type(),
            attr.properties().encode()
        ));
    }
    out
}

/// Render the dataset-global metadata records.
fn list_globals(ds: &caliper_format::Dataset) -> String {
    let mut out = String::new();
    for global in &ds.globals {
        out.push_str(&global.describe(&ds.store));
        out.push('\n');
    }
    out
}

/// Print the sharded run's per-worker breakdown, mirroring
/// `mpi-caliquery --timings`.
fn report_timings(timings: &ShardTimings) {
    for (id, w) in timings.workers.iter().enumerate() {
        eprintln!(
            "# worker {id}: read {:.6} s, process {:.6} s ({} files, {} units, {} records)",
            w.read_s, w.process_s, w.files, w.units, w.records
        );
    }
    eprintln!("# slowest worker:    {:.6} s", timings.worker_max_s());
    eprintln!("# root merge:        {:.6} s", timings.merge_s);
    eprintln!("# order/select/format: {:.6} s", timings.finish_s);
    eprintln!("# critical path:     {:.6} s", timings.total_s());
}

/// Print the per-file skipped-work summaries for every file the lenient
/// reader had to repair, plus one combined total line, so dropped data
/// is loud even when the run succeeds. Returns true when any data was
/// skipped — the caller exits with code 2 so scripts can detect a
/// partial result.
fn report_skipped(reports: &[ReadReport], policy: ReadPolicy) -> bool {
    let mut files_with_errors = 0usize;
    let mut total = ReadReport::default();
    for report in reports {
        total.absorb(report);
        if !report.is_clean() {
            files_with_errors += 1;
            eprintln!("cali-query: {}", report.summary());
        }
        // Landing exactly on the --max-errors cap is the boundary
        // between "partial result" (exit 2) and "abort" (exit 1): one
        // more error would have failed the file. Say so explicitly, so
        // a run that barely survived is distinguishable from one with
        // budget to spare.
        if let ReadPolicy::Lenient { max_errors } = policy {
            if report.skipped == max_errors && max_errors > 0 {
                eprintln!(
                    "cali-query: {}: error budget exhausted ({} of {} allowed); \
                     one more error would abort (exit 1)",
                    report
                        .path
                        .as_deref()
                        .map(|p| p.display().to_string())
                        .unwrap_or_else(|| "<input>".into()),
                    report.skipped,
                    max_errors
                );
            }
        }
    }
    if files_with_errors > 0 {
        eprintln!(
            "cali-query: total: {} records decoded, {} skipped, {}/{} files with errors",
            total.records,
            total.skipped,
            files_with_errors,
            reports.len()
        );
    }
    !total.is_clean()
}

/// Print each shard `--degrade` dropped, plus one combined line.
/// Returns true when any shard was dropped — the result is partial and
/// the caller exits 2. Failures are listed in ascending file order with
/// deterministic messages, so degraded stderr is byte-identical across
/// `--threads N` for a fixed fault seed.
fn report_failures(failures: &[ShardFailure]) -> bool {
    for f in failures {
        eprintln!("cali-query: dropped shard: {}", f.error);
    }
    if !failures.is_empty() {
        eprintln!(
            "cali-query: partial result: {} input file(s) dropped after retries",
            failures.len()
        );
    }
    !failures.is_empty()
}

/// How `--stats` renders the metrics block.
#[derive(Clone, Copy, PartialEq, Eq)]
enum StatsFormat {
    /// Sorted `name=value` lines, stable metrics only.
    Text,
    /// One flat JSON object, stable metrics only.
    Json,
    /// Sorted `name=value` lines including volatile timers.
    Full,
}

/// Emit the self-instrumentation block on stderr. Stable formats print
/// only deterministic metrics, so the block is byte-identical for every
/// `--threads N` over the same inputs.
fn report_stats(format: StatsFormat) {
    let metrics = caliper_data::metrics::global();
    match format {
        StatsFormat::Text => eprint!("{}", metrics.render_text(true)),
        StatsFormat::Json => eprintln!("{}", metrics.render_json(true)),
        StatsFormat::Full => eprint!("{}", metrics.render_text(false)),
    }
}

/// Print the overflow-bucket summary when `--max-groups` evicted work
/// into the `__overflow__` row.
fn report_overflow(result: &QueryResult, max_groups: Option<usize>) {
    if result.overflow_records > 0 {
        eprintln!(
            "cali-query: aggregation capped at {} groups; {} records folded into the \"{}\" bucket",
            max_groups.unwrap_or(0),
            result.overflow_records,
            OVERFLOW_KEY
        );
    }
}

fn main() -> ExitCode {
    let args = match parse_args(
        std::env::args().skip(1),
        &["q", "query", "o", "output", "threads", "max-errors", "max-groups", "faults"],
    ) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("cali-query: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.has(&["h", "help"]) {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    // Arm the fault registry before anything reads a file, so the
    // --faults flag and the CALI_FAULTS environment variable behave
    // identically.
    if let Some(spec) = args.get(&["faults"]) {
        if let Err(e) = caliper_faults::install_spec(spec) {
            eprintln!("cali-query: --faults: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    let degrade = args.has(&["degrade"]);
    let query = args.get(&["q", "query"]).unwrap_or("SELECT *");
    // --check: validate and exit without touching any snapshot data.
    // Works without input files too (schema-dependent checks are
    // simply skipped then).
    let check_json = match args.get(&["check"]) {
        Some("json") => Some(true),
        Some(other) => {
            eprintln!("cali-query: unknown check format '{other}' (use --check or --check=json)\n{USAGE}");
            return ExitCode::FAILURE;
        }
        None if args.has(&["check"]) => Some(false),
        None => None,
    };
    if let Some(json) = check_json {
        let schema = if args.positional.is_empty() {
            None
        } else {
            match lint::infer_schema(&args.positional) {
                Ok(schema) => Some(schema),
                Err(e) => {
                    eprintln!("cali-query: {e}");
                    return ExitCode::FAILURE;
                }
            }
        };
        let checked = lint::check_query("<query>", query, schema.as_ref());
        if json {
            println!("{}", checked.render_json());
        } else {
            print!("{}", checked.render_text());
        }
        let checked = [checked];
        eprintln!("cali-query: {}", lint::summary_line(&checked));
        return ExitCode::from(lint::exit_code(&checked));
    }
    if args.positional.is_empty() {
        eprintln!("cali-query: no input files\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let threads = match args.get(&["threads"]).map(str::parse::<usize>) {
        None => ParallelOptions::default().effective_threads(),
        Some(Ok(n)) if n > 0 => n,
        Some(_) => {
            eprintln!("cali-query: --threads takes a positive integer\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let policy = match args.get(&["max-errors"]).map(str::parse::<u64>) {
        Some(Ok(n)) => ReadPolicy::Lenient { max_errors: n },
        Some(Err(_)) => {
            eprintln!("cali-query: --max-errors takes a non-negative integer\n{USAGE}");
            return ExitCode::FAILURE;
        }
        None if args.has(&["lenient"]) => ReadPolicy::lenient(),
        None => ReadPolicy::Strict,
    };
    let max_groups = match args.get(&["max-groups"]).map(str::parse::<usize>) {
        None => None,
        Some(Ok(n)) if n > 0 => Some(n),
        Some(_) => {
            eprintln!("cali-query: --max-groups takes a positive integer\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let stats = match args.get(&["stats"]) {
        Some("text") => Some(StatsFormat::Text),
        Some("json") => Some(StatsFormat::Json),
        Some("full") => Some(StatsFormat::Full),
        Some(other) => {
            eprintln!("cali-query: unknown stats format '{other}' (text|json|full)\n{USAGE}");
            return ExitCode::FAILURE;
        }
        None if args.has(&["stats"]) => Some(StatsFormat::Text),
        None => None,
    };

    // Advisory lint: before running, check the query against the
    // inputs' schema and surface findings on stderr. Never alters the
    // result or the exit code; parse errors are left to the engine's
    // own error path. --no-lint silences it.
    let listing = args.has(&["list-attributes"]) || args.has(&["list-globals"]);
    let spanned = if listing { None } else { parse_query_spanned(query).ok() };
    let schema = if spanned.is_some() {
        lint::infer_schema(&args.positional).ok()
    } else {
        None
    };
    if !args.has(&["no-lint"]) {
        if let (Some((spec, spans)), Some(schema)) = (&spanned, &schema) {
            for diag in analyze(spec, Some(spans), Some(schema)) {
                eprint!("{}", diag.render("<query>", query));
            }
        }
    }
    // Build the zone-map pushdown once — schema-aware when the pre-pass
    // succeeded — and hand the same instance to the serial and parallel
    // paths, so `--stats` skip counts match for every --threads N.
    let pushdown: Option<Arc<Pushdown>> = spanned.as_ref().and_then(|(spec, _)| {
        let pd = build_pushdown(spec, schema.as_ref());
        (!pd.is_empty()).then(|| Arc::new(pd))
    });

    let mut partial = false;
    let rendered = if listing {
        let ds = match read_files_reported(&args.positional, policy) {
            Ok((ds, reports)) => {
                partial |= report_skipped(&reports, policy);
                ds
            }
            Err(e) => {
                eprintln!("cali-query: {e}");
                return ExitCode::FAILURE;
            }
        };
        if args.has(&["list-attributes"]) {
            list_attributes(&ds)
        } else {
            list_globals(&ds)
        }
    } else if threads > 1 {
        // Sharded aggregation over a worker pool; pass-through queries
        // need every record in one place and drop to the serial path.
        let options = ParallelOptions::with_threads(threads)
            .with_read_policy(policy)
            .with_max_groups(max_groups)
            .with_pushdown(pushdown.clone())
            .with_degrade(degrade);
        match parallel_query_files(query, &args.positional, &options) {
            Ok((result, timings)) => {
                partial |= report_skipped(&timings.reports, policy);
                partial |= report_failures(&timings.failures);
                report_overflow(&result, max_groups);
                if args.has(&["timings"]) {
                    report_timings(&timings);
                }
                result.render()
            }
            Err(ParallelQueryError::NotAnAggregation) => {
                match query_files_streaming_degrade(
                    query,
                    &args.positional,
                    policy,
                    max_groups,
                    pushdown.as_deref(),
                    degrade,
                ) {
                    Ok((result, reports, failures)) => {
                        partial |= report_skipped(&reports, policy);
                        partial |= report_failures(&failures);
                        result.render()
                    }
                    Err(e) => {
                        eprintln!("cali-query: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Err(e) => {
                eprintln!("cali-query: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        // --threads 1: today's serial streaming path, one input file in
        // memory at a time (memory bounded by the largest file).
        let t0 = std::time::Instant::now();
        match query_files_streaming_degrade(
            query,
            &args.positional,
            policy,
            max_groups,
            pushdown.as_deref(),
            degrade,
        ) {
            Ok((result, reports, failures)) => {
                partial |= report_skipped(&reports, policy);
                partial |= report_failures(&failures);
                report_overflow(&result, max_groups);
                if args.has(&["timings"]) {
                    eprintln!("# serial read+process: {:.6} s", t0.elapsed().as_secs_f64());
                }
                result.render()
            }
            Err(e) => {
                eprintln!("cali-query: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    match args.get(&["o", "output"]) {
        Some(path) => {
            if let Err(e) = std::fs::write(path, rendered) {
                eprintln!("cali-query: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            if lock.write_all(rendered.as_bytes()).is_err() {
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(format) = stats {
        report_stats(format);
    }
    if partial {
        // Distinct exit code for "succeeded, but some input records
        // were skipped" so scripts can detect partial data.
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
