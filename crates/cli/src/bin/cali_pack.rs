//! `cali-pack` — re-encode Caliper streams into the block-columnar
//! CALB v2 layout (or back to record-oriented v1).
//!
//! ```text
//! cali-pack [-o FILE] [--v1] [--block-records N] [--no-footer] INPUT...
//! ```
//!
//! Inputs may be text `.cali` or binary CALB v1/v2 (sniffed from the
//! stream header, not the file name); they are merged into one dataset
//! and re-encoded. See `docs/CALB.md` for both on-disk layouts.

use std::io::Write;
use std::process::ExitCode;

use cali_cli::{parse_args, read_files_reported};
use caliper_format::{binary, to_binary_v2_with, ReadPolicy, V2WriteOptions};

const USAGE: &str = "usage: cali-pack [-o FILE] [--v1] [--block-records N] INPUT...

Re-encodes Caliper data files (text .cali or binary CALB v1/v2, sniffed
from the stream header) into the block-columnar CALB v2 layout, merging
all inputs into one output stream. v2 groups records into blocks with
per-attribute min/max zone maps, so selective queries can skip whole
blocks without decoding them (see docs/CALB.md).

Options:
  -o, --output FILE    write the re-encoded stream to FILE
                       (default: stdout)
  --v1                 emit record-oriented CALB v1 instead of v2
  --block-records N    records per v2 block (default: 1024)
  --no-footer          omit the v2 footer block index
  --lenient            skip corrupt input records instead of aborting
  --max-errors N       like --lenient, but give up on a file after
                       skipping more than N corrupt records
  --mutate MODE        chaos-testing helper: instead of re-encoding,
                       deterministically damage each input file's raw
                       bytes in place (bitflip | truncate | garbage-block),
                       seeded by --seed and the file path; prints what
                       was done to stderr
  --seed N             mutation seed (default 0); the same seed, mode,
                       and file always produce the same damage
  -h, --help           show this help

Exit codes: 0 success, 1 error, 2 success but some input records were
skipped (lenient reads over partially corrupt input).
";

/// `--mutate`: damage each input file's raw bytes in place, seeded by
/// `--seed` and the file path — the file-level fuzz half of the chaos
/// suite (the failpoint registry injects faults at runtime; this makes
/// reproducibly *bad files* for the lenient readers to survive).
fn mutate_files(mode: &str, seed: Option<&str>, paths: &[String]) -> ExitCode {
    let mode = match caliper_faults::CorruptMode::parse(mode) {
        Ok(mode) => mode,
        Err(e) => {
            eprintln!("cali-pack: --mutate: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let seed = match seed.map(str::parse::<u64>) {
        None => 0,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("cali-pack: --seed takes a non-negative integer\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    for path in paths {
        let mut bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) => {
                eprintln!("cali-pack: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let before = bytes.len();
        // Mix the path into the seed so a multi-file corpus doesn't get
        // the same damage offset in every file.
        let file_seed = seed ^ caliper_faults::stable_hash(path);
        let changed = caliper_faults::corrupt_bytes(mode, file_seed, &mut bytes);
        if let Err(e) = std::fs::write(path, &bytes) {
            eprintln!("cali-pack: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "cali-pack: mutated {path}: {mode:?} seed {seed}: {before} -> {} bytes{}",
            bytes.len(),
            if changed { "" } else { " (no change: empty file)" }
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args(
        std::env::args().skip(1),
        &["o", "output", "block-records", "max-errors", "mutate", "seed"],
    ) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("cali-pack: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.has(&["h", "help"]) {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.positional.is_empty() {
        eprintln!("cali-pack: no input files\n{USAGE}");
        return ExitCode::FAILURE;
    }
    if let Some(mode) = args.get(&["mutate"]) {
        return mutate_files(mode, args.get(&["seed"]), &args.positional);
    }
    let block_records = match args.get(&["block-records"]).map(str::parse::<usize>) {
        None => V2WriteOptions::default().block_records,
        Some(Ok(n)) if n > 0 => n,
        Some(_) => {
            eprintln!("cali-pack: --block-records takes a positive integer\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let policy = match args.get(&["max-errors"]).map(str::parse::<u64>) {
        Some(Ok(n)) => ReadPolicy::Lenient { max_errors: n },
        Some(Err(_)) => {
            eprintln!("cali-pack: --max-errors takes a non-negative integer\n{USAGE}");
            return ExitCode::FAILURE;
        }
        None if args.has(&["lenient"]) => ReadPolicy::lenient(),
        None => ReadPolicy::Strict,
    };

    let (ds, reports) = match read_files_reported(&args.positional, policy) {
        Ok(read) => read,
        Err(e) => {
            eprintln!("cali-pack: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut partial = false;
    for report in &reports {
        if !report.is_clean() {
            partial = true;
            eprintln!("cali-pack: {}", report.summary());
        }
    }

    let bytes = if args.has(&["v1"]) {
        binary::to_binary(&ds)
    } else {
        let opts = V2WriteOptions {
            block_records,
            footer: !args.has(&["no-footer"]),
        };
        to_binary_v2_with(&ds, &opts)
    };
    match args.get(&["o", "output"]) {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &bytes) {
                eprintln!("cali-pack: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            if lock.write_all(&bytes).and_then(|()| lock.flush()).is_err() {
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!(
        "cali-pack: {} records from {} file(s) -> {} bytes ({})",
        ds.len(),
        args.positional.len(),
        bytes.len(),
        if args.has(&["v1"]) {
            "CALB v1".to_string()
        } else {
            format!("CALB v2, {block_records} records/block")
        }
    );
    if partial {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
