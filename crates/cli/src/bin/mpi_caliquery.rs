//! `mpi-caliquery` — scalable cross-process aggregation (paper §IV-C).
//!
//! Distributes the input files over N simulated MPI query processes,
//! aggregates locally on each, reduces the partial results up a
//! binomial tree to rank 0, and prints the result plus the timing
//! breakdown that Figure 4 of the paper reports.
//!
//! ```text
//! mpi-caliquery --np N [-q QUERY] [--timings] INPUT.cali...
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use cali_cli::{
    parallel_query, parallel_query_on, parallel_query_on_traced, parallel_query_resilient,
    parse_args, TracedQueryRun,
};
use mpisim::{EventEngine, FaultPlan, ResilienceOptions, ThreadEngine, Topology};

const USAGE: &str = "usage: mpi-caliquery --np N [-q QUERY] [--timings] INPUT.cali...

Runs an aggregation query across many Caliper data files in parallel
(N simulated MPI processes; files are distributed round-robin).

Options:
  --np, --ranks N     number of query processes (default: number of inputs)
  -q, --query QUERY   the aggregation scheme (must aggregate)
                      default: \"AGGREGATE sum(sum#time.duration),
                      sum(aggregate.count) GROUP BY kernel\"
  --timings           print the per-phase timing breakdown
  --engine NAME       execution engine: 'threads' (one OS thread per
                      rank; the default) or 'event' (deterministic
                      virtual-clock scheduler — use for rank counts in
                      the thousands)
  --nodes N           two-level reduction topology: ranks are grouped
                      into N nodes, each node pre-reduces locally, then
                      node leaders reduce across nodes (default: flat
                      binomial tree over all ranks)
  --workers N         event engine only: worker threads stepping ready
                      ranks (default 1; results are identical for any
                      value)
  --faults SPEC       chaos testing: script simulated rank faults with
                      the shared fault grammar, e.g.
                      \"mpi.kill=at(2,0);mpi.delay=at(1,0,20)\" kills
                      rank 2 at its first comm op and stalls rank 1 by
                      20 ms; the run switches to the fault-tolerant
                      reduction and reports which ranks' data the
                      result covers (also read from CALI_FAULTS)
  --analyze           record the happens-before communication trace and
                      run the race/deadlock analysis on it after the
                      query; the certificate is printed to stderr and
                      analysis errors fail the run (see cali-race for
                      the standalone analyzer)
  --trace FILE        dump the happens-before trace as .cali records to
                      FILE (aggregatable with cali-query)
  -h, --help          show this help

Exit codes: 0 success, 1 error, 2 success but the result is partial
(injected faults lost some ranks' contributions).
";

/// Print the result and coverage report of an engine-generic run; with
/// `sched_timings` also the event scheduler's counters (the event
/// engine's analogue of the threaded path's timing breakdown).
fn finish_engine_run(
    run: Result<(caliper_query::QueryResult, cali_cli::ResilientReport), cali_cli::ParallelError>,
    sched_timings: bool,
) -> ExitCode {
    match run {
        Ok((result, report)) => {
            print!("{}", result.render());
            if sched_timings {
                let m = caliper_data::metrics::global();
                eprintln!(
                    "# sched events:          {}",
                    m.counter_volatile("mpisim.sched.events").get()
                );
                eprintln!(
                    "# sched virtual time:    {} ns",
                    m.gauge_volatile("mpisim.sched.virtual_time_ns").get()
                );
                eprintln!(
                    "# sched max queue depth: {}",
                    m.gauge_volatile("mpisim.sched.max_queue_depth").get()
                );
            }
            if report.lost.is_empty() {
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "mpi-caliquery: partial result: covers {} of {} ranks; lost ranks {:?}",
                    report.included.len(),
                    report.included.len() + report.lost.len(),
                    report.lost
                );
                ExitCode::from(2)
            }
        }
        Err(e) => {
            eprintln!("mpi-caliquery: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Handle a traced run: dump and/or analyze the happens-before trace,
/// then report the query outcome as usual. Analysis errors (message
/// races, deadlock cycles) fail the run even when the query itself
/// produced a result.
fn finish_traced_run(
    run: TracedQueryRun,
    sched_timings: bool,
    analyze: bool,
    trace_path: Option<&str>,
) -> ExitCode {
    run.trace.record_metrics();
    if let Some(path) = trace_path {
        let file = match std::fs::File::create(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("mpi-caliquery: --trace {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = run.trace.write_cali(std::io::BufWriter::new(file)) {
            eprintln!("mpi-caliquery: --trace {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "mpi-caliquery: wrote {} trace events ({} ranks) to {path}",
            run.trace.len(),
            run.trace.size()
        );
    }
    let mut analysis_errors = false;
    if analyze {
        let analysis = mpisim::analyze(&run.trace);
        eprint!("{}", analysis.render());
        analysis_errors = analysis.exit_code(false) == 2;
    }
    let code = finish_engine_run(run.outcome, sched_timings);
    if analysis_errors {
        eprintln!("mpi-caliquery: --analyze found communication errors");
        return ExitCode::FAILURE;
    }
    code
}

fn main() -> ExitCode {
    let args = match parse_args(
        std::env::args().skip(1),
        &["q", "query", "np", "ranks", "faults", "engine", "nodes", "workers", "trace"],
    ) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("mpi-caliquery: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.has(&["h", "help"]) {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.positional.is_empty() {
        eprintln!("mpi-caliquery: no input files\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let np: usize = match args.get(&["np", "ranks"]) {
        Some(v) => match v.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("mpi-caliquery: invalid --np '{v}'");
                return ExitCode::FAILURE;
            }
        },
        None => args.positional.len(),
    };
    let query = args
        .get(&["q", "query"])
        .unwrap_or("AGGREGATE sum(sum#time.duration), sum(aggregate.count) GROUP BY kernel");

    // Scripted rank faults: an explicit --faults spec wins, otherwise
    // lift any mpi.* schedule from the process-wide CALI_FAULTS
    // registry (which also arms the I/O failpoints on the read paths).
    let plan = match args.get(&["faults"]) {
        Some(spec) => match FaultPlan::from_spec(spec) {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("mpi-caliquery: --faults: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => FaultPlan::from_global(),
    };

    // Reduction topology: flat binomial tree unless --nodes asks for
    // the two-level (intra-node, then cross-node) scheme.
    let topology = match args.get(&["nodes"]) {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => Some(Topology::two_level_for(np, n)),
            _ => {
                eprintln!("mpi-caliquery: invalid --nodes '{v}'");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let workers: usize = match args.get(&["workers"]) {
        Some(v) => match v.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("mpi-caliquery: invalid --workers '{v}'");
                return ExitCode::FAILURE;
            }
        },
        None => 1,
    };

    // Round-robin file distribution, one subset per query process.
    let mut per_rank: Vec<Vec<PathBuf>> = vec![Vec::new(); np];
    for (i, path) in args.positional.iter().enumerate() {
        per_rank[i % np].push(PathBuf::from(path));
    }

    // Happens-before tracing: --analyze and --trace both need the
    // instrumented run, on either engine.
    let analyze = args.has(&["analyze"]);
    let trace_path = args.get(&["trace"]);
    if analyze || trace_path.is_some() {
        let topology = topology.unwrap_or(Topology::Flat);
        let opts = ResilienceOptions::default();
        let run = match args.get(&["engine"]).unwrap_or("threads") {
            "event" => {
                let engine = EventEngine::with_workers(workers);
                parallel_query_on_traced(&engine, topology, query, per_rank, plan, opts)
            }
            "threads" => {
                parallel_query_on_traced(&ThreadEngine, topology, query, per_rank, plan, opts)
            }
            other => {
                eprintln!("mpi-caliquery: unknown --engine '{other}' (use 'event' or 'threads')");
                return ExitCode::FAILURE;
            }
        };
        return match run {
            Ok(traced) => {
                finish_traced_run(traced, args.has(&["timings"]), analyze, trace_path)
            }
            Err(e) => {
                eprintln!("mpi-caliquery: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // The event engine — and any two-level topology — routes through
    // the engine-generic task path; the default threaded flat path
    // below keeps its per-phase timing harvest.
    match args.get(&["engine"]).unwrap_or("threads") {
        "event" => {
            let engine = EventEngine::with_workers(workers);
            let run = parallel_query_on(
                &engine,
                topology.unwrap_or(Topology::Flat),
                query,
                per_rank,
                plan,
                ResilienceOptions::default(),
            );
            return finish_engine_run(run, args.has(&["timings"]));
        }
        "threads" => {
            if let Some(topology) = topology {
                let run = parallel_query_on(
                    &ThreadEngine,
                    topology,
                    query,
                    per_rank,
                    plan,
                    ResilienceOptions::default(),
                );
                return finish_engine_run(run, false);
            }
        }
        other => {
            eprintln!("mpi-caliquery: unknown --engine '{other}' (use 'event' or 'threads')");
            return ExitCode::FAILURE;
        }
    }

    if !plan.is_empty() {
        return match parallel_query_resilient(query, per_rank, plan, ResilienceOptions::default())
        {
            Ok((result, report)) => {
                print!("{}", result.render());
                if args.has(&["timings"]) {
                    eprintln!("# timings unavailable under fault injection");
                }
                if report.lost.is_empty() {
                    ExitCode::SUCCESS
                } else {
                    eprintln!(
                        "mpi-caliquery: partial result: covers ranks {:?}; lost ranks {:?}",
                        report.included, report.lost
                    );
                    ExitCode::from(2)
                }
            }
            Err(e) => {
                eprintln!("mpi-caliquery: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match parallel_query(query, per_rank) {
        Ok((result, timings)) => {
            print!("{}", result.render());
            if args.has(&["timings"]) {
                eprintln!(
                    "# local read+process (max over ranks): {:.6} s",
                    timings.local_max_s()
                );
                eprintln!(
                    "# tree reduction (critical path):      {:.6} s",
                    timings.reduction_s
                );
                for (level, t) in timings.level_merge_max_s.iter().enumerate() {
                    eprintln!("#   level {level}: {t:.6} s");
                }
                eprintln!(
                    "# root finish:                         {:.6} s",
                    timings.finish_s
                );
                eprintln!(
                    "# total:                               {:.6} s",
                    timings.total_s()
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mpi-caliquery: {e}");
            ExitCode::FAILURE
        }
    }
}
