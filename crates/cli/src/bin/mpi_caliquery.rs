//! `mpi-caliquery` — scalable cross-process aggregation (paper §IV-C).
//!
//! Distributes the input files over N simulated MPI query processes,
//! aggregates locally on each, reduces the partial results up a
//! binomial tree to rank 0, and prints the result plus the timing
//! breakdown that Figure 4 of the paper reports.
//!
//! ```text
//! mpi-caliquery --np N [-q QUERY] [--timings] INPUT.cali...
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use cali_cli::{parallel_query, parse_args};

const USAGE: &str = "usage: mpi-caliquery --np N [-q QUERY] [--timings] INPUT.cali...

Runs an aggregation query across many Caliper data files in parallel
(N simulated MPI processes; files are distributed round-robin).

Options:
  --np N              number of query processes (default: number of inputs)
  -q, --query QUERY   the aggregation scheme (must aggregate)
                      default: \"AGGREGATE sum(sum#time.duration),
                      sum(aggregate.count) GROUP BY kernel\"
  --timings           print the per-phase timing breakdown
  -h, --help          show this help
";

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1), &["q", "query", "np"]) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("mpi-caliquery: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.has(&["h", "help"]) {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.positional.is_empty() {
        eprintln!("mpi-caliquery: no input files\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let np: usize = match args.get(&["np"]) {
        Some(v) => match v.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("mpi-caliquery: invalid --np '{v}'");
                return ExitCode::FAILURE;
            }
        },
        None => args.positional.len(),
    };
    let query = args
        .get(&["q", "query"])
        .unwrap_or("AGGREGATE sum(sum#time.duration), sum(aggregate.count) GROUP BY kernel");

    // Round-robin file distribution, one subset per query process.
    let mut per_rank: Vec<Vec<PathBuf>> = vec![Vec::new(); np];
    for (i, path) in args.positional.iter().enumerate() {
        per_rank[i % np].push(PathBuf::from(path));
    }

    match parallel_query(query, per_rank) {
        Ok((result, timings)) => {
            print!("{}", result.render());
            if args.has(&["timings"]) {
                eprintln!(
                    "# local read+process (max over ranks): {:.6} s",
                    timings.local_max_s()
                );
                eprintln!(
                    "# tree reduction (critical path):      {:.6} s",
                    timings.reduction_s
                );
                for (level, t) in timings.level_merge_max_s.iter().enumerate() {
                    eprintln!("#   level {level}: {t:.6} s");
                }
                eprintln!(
                    "# root finish:                         {:.6} s",
                    timings.finish_s
                );
                eprintln!(
                    "# total:                               {:.6} s",
                    timings.total_s()
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mpi-caliquery: {e}");
            ExitCode::FAILURE
        }
    }
}
