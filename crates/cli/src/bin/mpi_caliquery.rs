//! `mpi-caliquery` — scalable cross-process aggregation (paper §IV-C).
//!
//! Distributes the input files over N simulated MPI query processes,
//! aggregates locally on each, reduces the partial results up a
//! binomial tree to rank 0, and prints the result plus the timing
//! breakdown that Figure 4 of the paper reports.
//!
//! ```text
//! mpi-caliquery --np N [-q QUERY] [--timings] INPUT.cali...
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use cali_cli::{parallel_query, parallel_query_resilient, parse_args};
use mpisim::{FaultPlan, ResilienceOptions};

const USAGE: &str = "usage: mpi-caliquery --np N [-q QUERY] [--timings] INPUT.cali...

Runs an aggregation query across many Caliper data files in parallel
(N simulated MPI processes; files are distributed round-robin).

Options:
  --np N              number of query processes (default: number of inputs)
  -q, --query QUERY   the aggregation scheme (must aggregate)
                      default: \"AGGREGATE sum(sum#time.duration),
                      sum(aggregate.count) GROUP BY kernel\"
  --timings           print the per-phase timing breakdown
  --faults SPEC       chaos testing: script simulated rank faults with
                      the shared fault grammar, e.g.
                      \"mpi.kill=at(2,0);mpi.delay=at(1,0,20)\" kills
                      rank 2 at its first comm op and stalls rank 1 by
                      20 ms; the run switches to the fault-tolerant
                      reduction and reports which ranks' data the
                      result covers (also read from CALI_FAULTS)
  -h, --help          show this help

Exit codes: 0 success, 1 error, 2 success but the result is partial
(injected faults lost some ranks' contributions).
";

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1), &["q", "query", "np", "faults"]) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("mpi-caliquery: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.has(&["h", "help"]) {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.positional.is_empty() {
        eprintln!("mpi-caliquery: no input files\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let np: usize = match args.get(&["np"]) {
        Some(v) => match v.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("mpi-caliquery: invalid --np '{v}'");
                return ExitCode::FAILURE;
            }
        },
        None => args.positional.len(),
    };
    let query = args
        .get(&["q", "query"])
        .unwrap_or("AGGREGATE sum(sum#time.duration), sum(aggregate.count) GROUP BY kernel");

    // Scripted rank faults: an explicit --faults spec wins, otherwise
    // lift any mpi.* schedule from the process-wide CALI_FAULTS
    // registry (which also arms the I/O failpoints on the read paths).
    let plan = match args.get(&["faults"]) {
        Some(spec) => match FaultPlan::from_spec(spec) {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("mpi-caliquery: --faults: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => FaultPlan::from_global(),
    };

    // Round-robin file distribution, one subset per query process.
    let mut per_rank: Vec<Vec<PathBuf>> = vec![Vec::new(); np];
    for (i, path) in args.positional.iter().enumerate() {
        per_rank[i % np].push(PathBuf::from(path));
    }

    if !plan.is_empty() {
        return match parallel_query_resilient(query, per_rank, plan, ResilienceOptions::default())
        {
            Ok((result, report)) => {
                print!("{}", result.render());
                if args.has(&["timings"]) {
                    eprintln!("# timings unavailable under fault injection");
                }
                if report.lost.is_empty() {
                    ExitCode::SUCCESS
                } else {
                    eprintln!(
                        "mpi-caliquery: partial result: covers ranks {:?}; lost ranks {:?}",
                        report.included, report.lost
                    );
                    ExitCode::from(2)
                }
            }
            Err(e) => {
                eprintln!("mpi-caliquery: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match parallel_query(query, per_rank) {
        Ok((result, timings)) => {
            print!("{}", result.render());
            if args.has(&["timings"]) {
                eprintln!(
                    "# local read+process (max over ranks): {:.6} s",
                    timings.local_max_s()
                );
                eprintln!(
                    "# tree reduction (critical path):      {:.6} s",
                    timings.reduction_s
                );
                for (level, t) in timings.level_merge_max_s.iter().enumerate() {
                    eprintln!("#   level {level}: {t:.6} s");
                }
                eprintln!(
                    "# root finish:                         {:.6} s",
                    timings.finish_s
                );
                eprintln!(
                    "# total:                               {:.6} s",
                    timings.total_s()
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mpi-caliquery: {e}");
            ExitCode::FAILURE
        }
    }
}
