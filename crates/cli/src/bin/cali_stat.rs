//! `cali-stat` — inspect Caliper data files: record and attribute
//! statistics, context-tree shape, and encoding footprint.
//!
//! ```text
//! cali-stat INPUT.cali...
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use cali_cli::{parse_args, read_files};
use caliper_data::ValueType;

const USAGE: &str = "usage: cali-stat INPUT.cali...

Prints dataset statistics: per-attribute occurrence counts and value
ranges, snapshot record shapes, context-tree size, and the stream
footprint in the text and binary encodings.

Options:
  -h, --help   show this help
";

struct AttrStats {
    occurrences: u64,
    numeric_min: f64,
    numeric_max: f64,
    numeric_sum: f64,
    numeric_n: u64,
    distinct: std::collections::HashSet<String>,
}

impl Default for AttrStats {
    fn default() -> AttrStats {
        AttrStats {
            occurrences: 0,
            numeric_min: f64::INFINITY,
            numeric_max: f64::NEG_INFINITY,
            numeric_sum: 0.0,
            numeric_n: 0,
            distinct: Default::default(),
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1), &[]) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("cali-stat: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.has(&["h", "help"]) {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.positional.is_empty() {
        eprintln!("cali-stat: no input files\n{USAGE}");
        return ExitCode::FAILURE;
    }

    let ds = match read_files(&args.positional) {
        Ok(ds) => ds,
        Err(e) => {
            eprintln!("cali-stat: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Per-attribute statistics over the expanded records.
    const DISTINCT_CAP: usize = 10_000;
    let mut stats: HashMap<u32, AttrStats> = HashMap::new();
    let mut entries_total = 0u64;
    let mut expanded_total = 0u64;
    for (compressed, flat) in ds.records.iter().map(|r| (r.len(), r.unpack(&ds.tree))) {
        entries_total += compressed as u64;
        expanded_total += flat.len() as u64;
        for (attr, value) in flat.pairs() {
            let s = stats.entry(*attr).or_default();
            s.occurrences += 1;
            if let Some(v) = match value {
                caliper_data::Value::Str(_) => None,
                other => other.to_f64(),
            } {
                s.numeric_min = s.numeric_min.min(v);
                s.numeric_max = s.numeric_max.max(v);
                s.numeric_sum += v;
                s.numeric_n += 1;
            }
            if s.distinct.len() < DISTINCT_CAP {
                s.distinct.insert(value.to_string());
            }
        }
    }

    println!("files:            {}", args.positional.len());
    println!("snapshot records: {}", ds.records.len());
    println!("global records:   {}", ds.globals.len());
    println!("attributes:       {}", ds.store.len());
    println!("context tree:     {} nodes", ds.tree.len());
    if !ds.records.is_empty() {
        println!(
            "record size:      {:.2} entries compressed / {:.2} expanded (compression {:.1}x)",
            entries_total as f64 / ds.records.len() as f64,
            expanded_total as f64 / ds.records.len() as f64,
            expanded_total.max(1) as f64 / entries_total.max(1) as f64
        );
    }
    let text_size = caliper_format::cali::to_bytes(&ds).len();
    let binary_size = caliper_format::binary::to_binary(&ds).len();
    println!(
        "stream footprint: {text_size} bytes text / {binary_size} bytes binary ({:.1}x)",
        text_size as f64 / binary_size.max(1) as f64
    );
    println!();

    // Attribute table, sorted by occurrence count.
    let mut attrs = ds.store.all();
    attrs.sort_by_key(|a| std::cmp::Reverse(stats.get(&a.id()).map(|s| s.occurrences).unwrap_or(0)));
    println!(
        "{:<28} {:>8} {:>9} {:>12} {:>12} {:>12}  properties",
        "attribute", "type", "occurs", "min", "mean", "max"
    );
    for attr in attrs {
        let s = stats.get(&attr.id());
        let occurs = s.map(|s| s.occurrences).unwrap_or(0);
        let (min, mean, max) = match s {
            Some(s) if s.numeric_n > 0 && attr.value_type().is_numeric() => (
                format!("{:.3}", s.numeric_min),
                format!("{:.3}", s.numeric_sum / s.numeric_n as f64),
                format!("{:.3}", s.numeric_max),
            ),
            Some(s) if attr.value_type() == ValueType::Str => {
                let d = s.distinct.len();
                let label = if d >= DISTINCT_CAP {
                    format!(">{d}")
                } else {
                    d.to_string()
                };
                ("-".into(), format!("{label} distinct"), "-".into())
            }
            _ => ("-".into(), "-".into(), "-".into()),
        };
        println!(
            "{:<28} {:>8} {:>9} {:>12} {:>12} {:>12}  {}",
            attr.name(),
            attr.value_type().name(),
            occurs,
            min,
            mean,
            max,
            attr.properties().encode()
        );
    }
    ExitCode::SUCCESS
}
