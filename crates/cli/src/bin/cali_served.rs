//! `cali-served` — the resident aggregation daemon, plus the thin
//! client used by scripts and tests (so the smoke path needs neither
//! `curl` nor `nc`).
//!
//! Server mode (default):
//!
//! ```text
//! cali-served --data-dir DIR [--port P] [--http-port P] [--ports-file F]
//!             [--aggregate OPS] [--group-by KEY] [--queue-depth N]
//!             [--workers N] [--deadline-ms MS] [--max-restarts N]
//!             [--max-groups N] [--fsync] [--config FILE] [--faults SPEC]
//!             [--stats]
//! ```
//!
//! Client modes (mutually exclusive with serving):
//!
//! ```text
//! cali-served --connect ADDR --stream NAME INPUT.cali...   # ingest batches
//! cali-served --http ADDR --client-query QUERY [--query-stream NAME]
//! cali-served --http ADDR --probe PATH                     # GET, print body
//! cali-served --http ADDR --shutdown                       # begin drain
//! ```
//!
//! Exit codes: 0 success; 1 usage/protocol error; 2 degraded (daemon:
//! tripped workers, degraded streams, or incomplete drain; query
//! client: partial result under deadline, HTTP 408).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::time::Duration;

use cali_cli::parse_args;
use caliper_runtime::Config;
use caliper_served::{IngestClient, Reply, ServedConfig, Server};

const USAGE: &str = "usage: cali-served [server flags] | --connect ADDR ... | --http ADDR ...

Server flags:
  --data-dir DIR       journal directory (created if missing; default .)
  --port P             ingest TCP port (default 0 = ephemeral)
  --http-port P        query/health HTTP port (default 0 = ephemeral)
  --ports-file FILE    write \"ingest=PORT\\nhttp=PORT\\n\" after binding
  --aggregate OPS      aggregation ops, e.g. \"count,sum(time.duration)\"
  --group-by KEY       aggregation key attribute(s), comma separated
  --queue-depth N      bounded ingest queue capacity (full => BUSY)
  --workers N          supervised ingest worker threads
  --deadline-ms MS     per-query deadline (slow queries => HTTP 408)
  --max-restarts N     worker restarts before the supervisor trips
  --max-groups N       cap aggregate groups per stream (0 = unbounded)
  --fsync              fsync journals on every flush
  --config FILE        caliper config profile (served.* keys; CLI wins)
  --faults SPEC        arm fault injection (same grammar as CALI_FAULTS)
  --stats              print the metrics block on stderr at exit

Client flags:
  --connect ADDR       ingest endpoint, e.g. 127.0.0.1:9090
  --stream NAME        stream to bind (with --connect)
  --http ADDR          HTTP endpoint, e.g. 127.0.0.1:9091
  --client-query Q     run a CalQL query via GET /query
  --query-stream NAME  restrict --client-query to one stream
  --probe PATH         GET an endpoint (/healthz, /readyz, /stats)
  --shutdown           POST /shutdown (graceful drain)
  --timeout-ms MS      client socket timeout (default 10000)
";

/// One-shot HTTP request; returns `(status, body)`.
fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    timeout: Duration,
) -> std::io::Result<(u16, String)> {
    let mut conn = TcpStream::connect_timeout(&addr, timeout)?;
    conn.set_read_timeout(Some(timeout))?;
    conn.set_write_timeout(Some(timeout))?;
    conn.write_all(format!("{method} {path} HTTP/1.1\r\nHost: cali-served\r\n\r\n").as_bytes())?;
    let mut raw = String::new();
    conn.read_to_string(&mut raw)?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed HTTP status line")
        })?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// Percent-encode a query value (conservative: everything but
/// unreserved characters).
fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn parse_addr(s: &str) -> Result<SocketAddr, String> {
    s.parse().map_err(|e| format!("bad address '{s}': {e}"))
}

fn client_main(args: &cali_cli::CliArgs) -> ExitCode {
    let timeout = Duration::from_millis(
        args.get(&["timeout-ms"])
            .and_then(|v| v.parse().ok())
            .unwrap_or(10_000),
    );

    if let Some(addr) = args.get(&["connect"]) {
        let addr = match parse_addr(addr) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("cali-served: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(stream) = args.get(&["stream"]) else {
            eprintln!("cali-served: --connect requires --stream NAME\n{USAGE}");
            return ExitCode::FAILURE;
        };
        if args.positional.is_empty() {
            eprintln!("cali-served: --connect requires input files to ingest\n{USAGE}");
            return ExitCode::FAILURE;
        }
        let mut client = match IngestClient::connect(addr, timeout) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("cali-served: connecting {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match client.hello(stream) {
            Ok(reply) if reply.is_ok() => {}
            Ok(reply) => {
                eprintln!("cali-served: HELLO refused: {}", reply.to_line());
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("cali-served: HELLO: {e}");
                return ExitCode::FAILURE;
            }
        }
        let mut degraded = false;
        for file in &args.positional {
            let payload = match std::fs::read(file) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("cali-served: reading {file}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match client.send_batch_retrying(&payload, 50) {
                Ok(Reply::Ok(detail)) => println!("{file}: OK {detail}"),
                Ok(reply) => {
                    eprintln!("cali-served: {file}: {}", reply.to_line());
                    degraded = true;
                }
                Err(e) => {
                    eprintln!("cali-served: {file}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let _ = client.quit();
        return if degraded {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }

    let addr = match args.get(&["http"]).map(parse_addr) {
        Some(Ok(a)) => a,
        Some(Err(e)) => {
            eprintln!("cali-served: {e}");
            return ExitCode::FAILURE;
        }
        None => {
            eprintln!("cali-served: client mode needs --connect or --http\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let (method, path) = if args.has(&["shutdown"]) {
        ("POST", "/shutdown".to_string())
    } else if let Some(q) = args.get(&["client-query"]) {
        let mut path = format!("/query?q={}", percent_encode(q));
        if let Some(stream) = args.get(&["query-stream"]) {
            path.push_str(&format!("&stream={}", percent_encode(stream)));
        }
        ("GET", path)
    } else if let Some(p) = args.get(&["probe"]) {
        ("GET", p.to_string())
    } else {
        eprintln!("cali-served: --http needs --client-query, --probe, or --shutdown\n{USAGE}");
        return ExitCode::FAILURE;
    };

    match http_request(addr, method, &path, timeout) {
        Ok((status, body)) => {
            print!("{body}");
            match status {
                200 => ExitCode::SUCCESS,
                408 => ExitCode::from(2), // partial result under deadline
                other => {
                    eprintln!("cali-served: {method} {path}: HTTP {other}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(e) => {
            eprintln!("cali-served: {method} {path} on {addr}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn server_main(args: &cali_cli::CliArgs) -> ExitCode {
    // Profile file (if any) under environment overrides, with CLI
    // flags taking final precedence via `set`.
    let mut config = match args.get(&["config"]) {
        Some(file) => match std::fs::read_to_string(file) {
            Ok(text) => match Config::from_text(&text) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cali-served: parsing {file}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("cali-served: reading {file}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Config::from_env(),
    };
    let flag_keys = [
        ("data-dir", "served.data.dir"),
        ("port", "served.port"),
        ("http-port", "served.http.port"),
        ("aggregate", "served.aggregate.ops"),
        ("group-by", "served.aggregate.key"),
        ("queue-depth", "served.queue.depth"),
        ("workers", "served.workers"),
        ("deadline-ms", "served.query.deadline.ms"),
        ("max-restarts", "served.supervisor.max.restarts"),
        ("max-groups", "served.max.groups"),
        ("batch-max-bytes", "served.batch.max.bytes"),
    ];
    for (flag, key) in flag_keys {
        if let Some(value) = args.get(&[flag]) {
            config = config.set(key, value);
        }
    }
    if args.has(&["fsync"]) {
        config = config.set("served.fsync", "true");
    }

    let cfg = match ServedConfig::from_config(&config) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("cali-served: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cali-served: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ingest = server.ingest_addr();
    let http = server.http_addr();
    if let Some(file) = args.get(&["ports-file"]) {
        let contents = format!("ingest={}\nhttp={}\n", ingest.port(), http.port());
        if let Err(e) = std::fs::write(file, contents) {
            eprintln!("cali-served: writing {file}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("cali-served listening ingest={ingest} http={http}");

    let summary = server.run();
    if args.has(&["stats"]) {
        eprint!("{}", caliper_data::metrics::global().render_text(true));
    }
    if summary.exit_code != 0 {
        eprintln!(
            "cali-served: degraded exit: drained={} tripped_workers={} degraded_streams={:?}",
            summary.drained, summary.tripped_workers, summary.degraded_streams
        );
    }
    ExitCode::from(summary.exit_code as u8)
}

fn main() -> ExitCode {
    let args = match parse_args(
        std::env::args().skip(1),
        &[
            "data-dir", "port", "http-port", "ports-file", "aggregate", "group-by",
            "queue-depth", "workers", "deadline-ms", "max-restarts", "max-groups",
            "batch-max-bytes", "config", "faults", "connect", "stream", "http",
            "client-query", "query-stream", "probe", "timeout-ms",
        ],
    ) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("cali-served: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.has(&["h", "help"]) {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if let Some(spec) = args.get(&["faults"]) {
        if let Err(e) = caliper_faults::install_spec(spec) {
            eprintln!("cali-served: --faults: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    if args.get(&["connect"]).is_some() || args.get(&["http"]).is_some() {
        client_main(&args)
    } else {
        server_main(&args)
    }
}
