//! `cali-race` — happens-before analysis of mpisim communication.
//!
//! Runs a rank program on a simulated MPI engine with the
//! happens-before trace hook armed, then analyzes the trace for message
//! races, wait-cycle deadlocks, and determinism hazards, printing a
//! race-freedom certificate (or the diagnostics) to stdout.
//!
//! ```text
//! cali-race [--program NAME] [--ranks N] [--engine event|threads] ...
//! ```

use std::process::ExitCode;
use std::time::Duration;

use cali_cli::parse_args;
use mpisim::{
    analyze, Action, EventEngine, Executor, FaultPlan, HbTrace, RankTask, ReduceCoverage,
    ReduceTask, ResilienceOptions, SchedError, TaskCtx, ThreadEngine, Topology, TracedRun, Wake,
};

const USAGE: &str = "usage: cali-race [--program NAME] [--ranks N] [--engine event|threads] [options]

Runs a rank program under the happens-before trace hook and analyzes
the communication trace for message races (M001), wait-cycle deadlocks
(M002/M003), and timing hazards (N001..N003). Prints the analysis
certificate to stdout; the output is byte-identical across --workers
values on the event engine.

Options:
  --program NAME      rank program to run and analyze:
                        reduce         fault-tolerant tree reduction
                                       (the default; race-free)
                        wildcard-race  root gathers via wildcard
                                       receives from concurrent
                                       senders (a deliberate M001)
                        deadlock       ring of unbounded waits with no
                                       sender (M002; event engine only)
                        straggler      sender delayed past the
                                       receiver's timeout (N001)
  --ranks, --np N     world size (default 64)
  --engine NAME       'event' (deterministic virtual clock; default) or
                      'threads' (one OS thread per rank)
  --workers N         event engine worker threads (default 1; the
                      certificate is identical for any value)
  --nodes N           two-level reduction topology over N nodes
                      (default: flat binomial tree)
  --kills K           kill K ranks at seeded positions (reduce demo)
  --kill-seed S       seed for --kills victim selection (default 42)
  --faults SPEC       explicit fault plan in the shared fault grammar,
                      e.g. 'mpi.kill=at(3,0)' (overrides --kills)
  --trace FILE        also dump the raw happens-before trace as .cali
                      records to FILE
  --deny-warnings     treat warnings (N-codes) as fatal
  -h, --help          show this help

Exit codes: 0 clean (or warnings tolerated), 1 warnings with
--deny-warnings, 2 errors found.
";

/// Tag used by the demo programs' messages.
const TAG: mpisim::Tag = 0x7ace;

/// Deliberately racy gather: the root posts wildcard receives that any
/// of the concurrent senders can match, so with three or more ranks the
/// analyzer must report an M001 message race.
struct WildcardGather {
    rank: usize,
    size: usize,
    got: usize,
}

impl RankTask for WildcardGather {
    type Out = usize;

    fn step(&mut self, ctx: &mut dyn TaskCtx, wake: Wake) -> Action {
        if self.rank != 0 {
            let _ = ctx.send(0, TAG, Box::new(()));
            return Action::Done;
        }
        match wake {
            Wake::Start => {}
            Wake::Message(_) => self.got += 1,
            Wake::Timeout => return Action::Done,
        }
        if self.got + 1 >= self.size {
            return Action::Done;
        }
        Action::Recv {
            src: None,
            tag: TAG,
            timeout: Some(Duration::from_secs(5)),
        }
    }

    fn into_output(self) -> usize {
        self.got
    }
}

/// Deliberate deadlock: every rank waits forever on its ring successor
/// and nobody ever sends, so the analyzer must name the full wait
/// cycle (M002).
struct WaitRing {
    rank: usize,
    size: usize,
}

impl RankTask for WaitRing {
    type Out = ();

    fn step(&mut self, _ctx: &mut dyn TaskCtx, wake: Wake) -> Action {
        match wake {
            Wake::Start => Action::Recv {
                src: Some((self.rank + 1) % self.size),
                tag: TAG,
                timeout: None,
            },
            _ => Action::Done,
        }
    }

    fn into_output(self) {}
}

/// Deliberate timing hazard: rank 1's send is delayed past rank 0's
/// receive timeout, so the message can arrive after the receiver gave
/// up — the analyzer must report an N001 timeout hazard.
struct Straggler {
    rank: usize,
}

impl RankTask for Straggler {
    type Out = ();

    fn step(&mut self, ctx: &mut dyn TaskCtx, wake: Wake) -> Action {
        match (self.rank, wake) {
            (0, Wake::Start) => Action::Recv {
                src: Some(1),
                tag: TAG,
                timeout: Some(Duration::from_millis(10)),
            },
            (1, Wake::Start) => {
                let _ = ctx.send(0, TAG, Box::new(()));
                Action::Done
            }
            _ => Action::Done,
        }
    }

    fn into_output(self) {}
}

/// The per-run facts the certificate reports besides the analysis:
/// whether the run completed and how many ranks produced output.
struct RunSummary {
    finished: usize,
    size: usize,
    deadlocked: Option<SchedError>,
    trace: HbTrace,
}

fn summarize<Out>(run: TracedRun<Out>, size: usize) -> RunSummary {
    match run.outputs {
        Ok(outs) => RunSummary {
            finished: outs.iter().filter(|o| o.is_some()).count(),
            size,
            deadlocked: None,
            trace: run.trace,
        },
        Err(e) => RunSummary {
            finished: 0,
            size,
            deadlocked: Some(e),
            trace: run.trace,
        },
    }
}

/// Run the selected program on the selected engine, trace hook armed.
fn run_program<E: Executor>(
    engine: &E,
    program: &str,
    size: usize,
    plan: FaultPlan,
    topology: Topology,
) -> Result<RunSummary, String> {
    match program {
        "reduce" => {
            let opts = ResilienceOptions::default();
            let run: TracedRun<Option<(u64, ReduceCoverage)>> =
                engine.run_tasks_traced(size, plan, move |rank, size| {
                    ReduceTask::new(
                        rank,
                        size,
                        topology,
                        move || rank as u64,
                        |a: u64, b: u64| a + b,
                        opts,
                    )
                });
            Ok(summarize(run, size))
        }
        "wildcard-race" => {
            let run = engine.run_tasks_traced(size, plan, |rank, size| WildcardGather {
                rank,
                size,
                got: 0,
            });
            Ok(summarize(run, size))
        }
        "deadlock" => {
            let run = engine.run_tasks_traced(size, plan, |rank, size| WaitRing { rank, size });
            Ok(summarize(run, size))
        }
        "straggler" => {
            if size < 2 {
                return Err("--program straggler needs at least 2 ranks".into());
            }
            let plan = plan.delay(1, 0, Duration::from_millis(50));
            let run = engine.run_tasks_traced(size, plan, |rank, _| Straggler { rank });
            Ok(summarize(run, size))
        }
        other => Err(format!(
            "unknown --program '{other}' (use reduce, wildcard-race, deadlock, or straggler)"
        )),
    }
}

fn main() -> ExitCode {
    let args = match parse_args(
        std::env::args().skip(1),
        &[
            "program", "ranks", "np", "engine", "workers", "nodes", "kills", "kill-seed", "faults",
            "trace",
        ],
    ) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("cali-race: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.has(&["h", "help"]) {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if !args.positional.is_empty() {
        eprintln!(
            "cali-race: unexpected positional arguments {:?}\n{USAGE}",
            args.positional
        );
        return ExitCode::FAILURE;
    }

    let program = args.get(&["program"]).unwrap_or("reduce");
    let size: usize = match args.get(&["ranks", "np"]).unwrap_or("64").parse() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("cali-race: invalid --ranks");
            return ExitCode::FAILURE;
        }
    };
    let workers: usize = match args.get(&["workers"]).unwrap_or("1").parse() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("cali-race: invalid --workers");
            return ExitCode::FAILURE;
        }
    };
    let engine_name = args.get(&["engine"]).unwrap_or("event");

    // Fault plan: explicit grammar spec wins, else seeded kills.
    let (plan, faults_desc) = match args.get(&["faults"]) {
        Some(spec) => match FaultPlan::from_spec(spec) {
            Ok(plan) => (plan, format!("spec '{spec}'")),
            Err(e) => {
                eprintln!("cali-race: --faults: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let kills: usize = match args.get(&["kills"]).unwrap_or("0").parse() {
                Ok(n) => n,
                Err(_) => {
                    eprintln!("cali-race: invalid --kills");
                    return ExitCode::FAILURE;
                }
            };
            let seed: u64 = match args.get(&["kill-seed"]).unwrap_or("42").parse() {
                Ok(n) => n,
                Err(_) => {
                    eprintln!("cali-race: invalid --kill-seed");
                    return ExitCode::FAILURE;
                }
            };
            if kills > 0 {
                (
                    FaultPlan::seeded_kills(seed, kills, size),
                    format!("kills={kills} seed={seed}"),
                )
            } else {
                (FaultPlan::new(), "none".to_string())
            }
        }
    };

    // Topology: flat binomial tree, or two-level over --nodes groups.
    let (topology, topo_desc) = match args.get(&["nodes"]) {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => (Topology::two_level_for(size, n), format!("two-level ({n} nodes)")),
            _ => {
                eprintln!("cali-race: invalid --nodes '{v}'");
                return ExitCode::FAILURE;
            }
        },
        None => (Topology::Flat, "flat".to_string()),
    };

    let summary = match engine_name {
        "event" => {
            let engine = EventEngine::with_workers(workers);
            run_program(&engine, program, size, plan, topology)
        }
        "threads" => {
            if program == "deadlock" {
                // A blocked OS thread blocks forever; only the virtual
                // clock can observe that no event can ever arrive.
                eprintln!("cali-race: --program deadlock requires --engine event");
                return ExitCode::FAILURE;
            }
            run_program(&ThreadEngine, program, size, plan, topology)
        }
        other => {
            eprintln!("cali-race: unknown --engine '{other}' (use 'event' or 'threads')");
            return ExitCode::FAILURE;
        }
    };
    let summary = match summary {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cali-race: {e}");
            return ExitCode::FAILURE;
        }
    };

    summary.trace.record_metrics();
    if let Some(path) = args.get(&["trace"]) {
        let write = std::fs::File::create(path)
            .map_err(|e| e.to_string())
            .and_then(|f| {
                summary
                    .trace
                    .write_cali(std::io::BufWriter::new(f))
                    .map_err(|e| e.to_string())
            });
        if let Err(e) = write {
            eprintln!("cali-race: --trace {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let analysis = analyze(&summary.trace);

    // The certificate. Everything below is deterministic on the event
    // engine for any --workers value, so runs can be cmp'd byte for
    // byte.
    println!("cali-race certificate");
    println!("program:  {program}");
    match engine_name {
        "event" => println!("engine:   event"),
        _ => println!("engine:   threads"),
    }
    println!("ranks:    {size}");
    println!("topology: {topo_desc}");
    println!("faults:   {faults_desc}");
    match &summary.deadlocked {
        Some(e) => println!("run:      {e}"),
        None => println!(
            "run:      completed, {} of {} ranks finished",
            summary.finished, summary.size
        ),
    }
    print!("{}", analysis.render());

    let deny = args.has(&["deny-warnings"]);
    ExitCode::from(analysis.exit_code(deny))
}
