//! `cali-lint` — static validation of CalQL queries against a data
//! schema, without running them.
//!
//! ```text
//! cali-lint [-q QUERY]... [-i INPUT.cali]... [--schema FILE] QUERY_FILE...
//! ```

use std::process::ExitCode;

use cali_cli::{lint, parse_args};
use caliper_format::Schema;

const USAGE: &str = "usage: cali-lint [-q QUERY]... [-i INPUT.cali]... [--schema FILE] QUERY_FILE...

Checks CalQL queries for errors (unknown attributes, type mismatches,
contradictory filters, ...) without aggregating any data. Queries come
from positional files (one query per file; blank lines and '#' comment
lines are ignored) and/or repeated -q flags.

Options:
  -q, --query QUERY   check this query string (repeatable)
  -i, --input FILE    infer the attribute schema from this .cali/CALB
                      data file (repeatable; metadata pre-pass only,
                      snapshot payloads are never decoded)
      --schema FILE   load the attribute schema from a saved schema
                      file (merged with any --input inference)
      --save-schema FILE
                      write the merged schema to FILE and exit
                      (requires at least one --input or --schema)
      --json          print diagnostics as JSON, one object per query
  -h, --help          show this help

Without a schema source, schema-dependent checks (unknown attributes,
operator/type mismatches) are skipped; purely structural checks still
run.

Exit codes: 0 clean, 1 at least one error, 2 warnings only.
";

/// Read a query file: the query is the concatenation of its
/// non-comment, non-blank lines (so long queries can be wrapped).
fn read_query_file(path: &str) -> Result<String, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let query: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    Ok(query.join(" "))
}

fn main() -> ExitCode {
    let args = match parse_args(
        std::env::args().skip(1),
        &["q", "query", "i", "input", "schema", "save-schema"],
    ) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("cali-lint: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.has(&["h", "help"]) {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    // Assemble the schema: saved schema file, plus inference over any
    // data files, merged (conflicts degrade to `mixed`).
    let inputs = args.get_all(&["i", "input"]);
    let mut schema: Option<Schema> = None;
    if let Some(path) = args.get(&["schema"]) {
        match std::fs::read_to_string(path) {
            Ok(text) => schema = Some(Schema::parse_text(&text)),
            Err(e) => {
                eprintln!("cali-lint: cannot read schema {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if !inputs.is_empty() {
        match lint::infer_schema(&inputs) {
            Ok(inferred) => match &mut schema {
                Some(s) => s.merge(&inferred),
                None => schema = Some(inferred),
            },
            Err(e) => {
                eprintln!("cali-lint: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = args.get(&["save-schema"]) {
        let Some(schema) = &schema else {
            eprintln!("cali-lint: --save-schema needs a schema source (--input or --schema)\n{USAGE}");
            return ExitCode::FAILURE;
        };
        if let Err(e) = std::fs::write(path, schema.to_text()) {
            eprintln!("cali-lint: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("cali-lint: wrote {} attributes to {path}", schema.len());
        return ExitCode::SUCCESS;
    }

    // Collect the queries: inline strings first, then query files.
    let mut queries: Vec<(String, String)> = Vec::new();
    for q in args.get_all(&["q", "query"]) {
        queries.push(("<query>".to_string(), q.to_string()));
    }
    for path in &args.positional {
        match read_query_file(path) {
            Ok(query) => queries.push((path.clone(), query)),
            Err(e) => {
                eprintln!("cali-lint: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if queries.is_empty() {
        eprintln!("cali-lint: nothing to check (give -q QUERY or a query file)\n{USAGE}");
        return ExitCode::FAILURE;
    }

    let checked: Vec<_> = queries
        .iter()
        .map(|(source, query)| lint::check_query(source, query, schema.as_ref()))
        .collect();
    if args.has(&["json"]) {
        for c in &checked {
            println!("{}", c.render_json());
        }
    } else {
        for c in &checked {
            print!("{}", c.render_text());
        }
    }
    eprintln!("cali-lint: {}", lint::summary_line(&checked));
    ExitCode::from(lint::exit_code(&checked))
}
