//! Golden-file conformance suite for `cali-query`.
//!
//! Each case runs the real binary over the checked-in `.cali` inputs
//! under `tests/golden/data/` and compares stdout **byte-for-byte**
//! against `tests/golden/expected/<name>.txt`, so any change to the
//! query pipeline or an output formatter shows up as a reviewable diff.
//!
//! To regenerate the inputs and expectations after an intentional
//! output change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p cali-cli --test cli_golden
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;

use caliper_runtime::{Caliper, Clock, Config};

/// One golden case: a query (plus extra CLI flags) whose stdout is
/// pinned in `expected/<name>.txt`.
struct Case {
    name: &'static str,
    query: &'static str,
    extra_args: &'static [&'static str],
}

/// The conformance queries. Together they cover every output format,
/// WHERE/SELECT/ORDER BY/LIMIT/LET, the bucketing and distribution
/// operators, and the `--max-groups` overflow fold.
const CASES: &[Case] = &[
    Case {
        name: "count-by-function",
        query: "AGGREGATE count GROUP BY function ORDER BY function",
        extra_args: &[],
    },
    Case {
        name: "sum-by-function-iteration",
        query: "AGGREGATE sum(time.duration) GROUP BY function, loop.iteration \
                ORDER BY function, loop.iteration",
        extra_args: &[],
    },
    Case {
        name: "csv-avg",
        query: "AGGREGATE avg(time.duration) GROUP BY function ORDER BY function FORMAT csv",
        extra_args: &[],
    },
    Case {
        name: "json-min-max",
        query: "AGGREGATE min(time.duration), max(time.duration) GROUP BY function \
                ORDER BY function FORMAT json",
        extra_args: &[],
    },
    Case {
        name: "where-filter",
        query: "AGGREGATE count WHERE function GROUP BY function ORDER BY function",
        extra_args: &[],
    },
    Case {
        name: "let-scale",
        query: "LET time.ms = scale(time.duration, 0.001) \
                AGGREGATE sum(time.ms) GROUP BY function ORDER BY function",
        extra_args: &[],
    },
    Case {
        name: "order-desc-limit",
        query: "AGGREGATE sum(time.duration) GROUP BY function \
                SELECT function, sum#time.duration ORDER BY sum#time.duration desc LIMIT 2",
        extra_args: &[],
    },
    Case {
        name: "histogram",
        query: "AGGREGATE histogram(time.duration, 0, 60, 6) GROUP BY function \
                ORDER BY function",
        extra_args: &[],
    },
    Case {
        name: "percentile",
        query: "AGGREGATE percentile(time.duration, 95) GROUP BY function ORDER BY function",
        extra_args: &[],
    },
    Case {
        name: "percent-total",
        query: "AGGREGATE percent_total(time.duration) GROUP BY function ORDER BY function",
        extra_args: &[],
    },
    Case {
        name: "expand-passthrough",
        query: "SELECT function, time.duration LIMIT 4 FORMAT expand",
        extra_args: &[],
    },
    Case {
        name: "flamegraph",
        query: "AGGREGATE sum(time.duration) WHERE function GROUP BY function FORMAT flamegraph",
        extra_args: &[],
    },
    Case {
        name: "cali-reaggregation",
        query: "AGGREGATE count, sum(time.duration) GROUP BY function FORMAT cali",
        extra_args: &[],
    },
    Case {
        name: "max-groups-overflow",
        query: "AGGREGATE count, sum(time.duration) GROUP BY function ORDER BY function",
        extra_args: &["--max-groups", "2"],
    },
];

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn update_golden() -> bool {
    std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1")
}

/// The deterministic workload the inputs are generated from: the
/// paper's Listing 1 shape (4 iterations of foo/foo/bar inside an
/// annotated loop) under an event-trace profile and a virtual clock,
/// with per-rank time scaling so the two files differ.
fn generate_rank(rank: u64) -> caliper_format::Dataset {
    let caliper = Caliper::with_clock(Config::event_trace(), Clock::virtual_clock());
    caliper.set_global("mpi.rank", rank as i64);
    caliper.set_global("experiment", "golden");
    let function = caliper.region_attribute("function");
    let iteration = caliper.attribute(
        "loop.iteration",
        caliper_data::ValueType::Int,
        caliper_data::Properties::AS_VALUE,
    );
    let mut scope = caliper.make_thread_scope();
    for i in 0..4i64 {
        scope.begin(&iteration, i);
        for (name, time_us) in [("foo", 15u64), ("foo", 25), ("bar", 20)] {
            scope.begin(&function, name);
            scope.advance_time(time_us * 1_000 * (rank + 1));
            scope.end(&function).unwrap();
        }
        scope.end(&iteration).unwrap();
    }
    scope.flush();
    caliper.take_dataset()
}

/// The checked-in input files, regenerating them under `UPDATE_GOLDEN=1`.
fn input_files() -> Vec<PathBuf> {
    let data_dir = golden_dir().join("data");
    let paths: Vec<PathBuf> = (0..2)
        .map(|rank| data_dir.join(format!("rank{rank}.cali")))
        .collect();
    if update_golden() {
        std::fs::create_dir_all(&data_dir).unwrap();
        for (rank, path) in paths.iter().enumerate() {
            caliper_format::cali::write_file(&generate_rank(rank as u64), path).unwrap();
        }
    }
    for path in &paths {
        assert!(
            path.exists(),
            "golden input {} missing — run UPDATE_GOLDEN=1 cargo test -p cali-cli --test cli_golden",
            path.display()
        );
    }
    paths
}

fn run_cali_query(query: &str, extra_args: &[&str], inputs: &[PathBuf]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("-q")
        .arg(query)
        .args(extra_args)
        .args(inputs)
        .output()
        .expect("run cali-query")
}

/// Compare `actual` to the checked-in expectation (or rewrite it under
/// `UPDATE_GOLDEN=1`), reporting a unified-ish diff on mismatch.
fn check_golden(name: &str, actual: &str) {
    let expected_path = golden_dir().join("expected").join(format!("{name}.txt"));
    if update_golden() {
        std::fs::create_dir_all(expected_path.parent().unwrap()).unwrap();
        std::fs::write(&expected_path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&expected_path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}) — run UPDATE_GOLDEN=1 cargo test -p cali-cli --test cli_golden",
            expected_path.display()
        )
    });
    if expected != actual {
        let mut diff = String::new();
        for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
            if e != a {
                diff.push_str(&format!("line {}:\n- {e}\n+ {a}\n", i + 1));
            }
        }
        panic!(
            "golden mismatch for '{name}' ({} expected lines, {} actual):\n{diff}\
             full actual output:\n{actual}\n\
             (UPDATE_GOLDEN=1 regenerates expectations after intentional changes)",
            expected.lines().count(),
            actual.lines().count(),
        );
    }
}

#[test]
fn golden_query_outputs_are_stable() {
    let inputs = input_files();
    for case in CASES {
        let out = run_cali_query(case.query, case.extra_args, &inputs);
        assert!(
            out.status.success(),
            "case '{}' failed: {}",
            case.name,
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
        check_golden(case.name, &stdout);
    }
}

/// The `--stats` block is part of the conformance surface too: its
/// stable metrics are pure functions of the input bytes, so the stderr
/// block is pinned as a golden file *and* must be byte-identical for
/// every `--threads N` (the determinism contract from DESIGN.md §8).
#[test]
fn golden_stats_block_is_stable_across_thread_counts() {
    let inputs = input_files();
    let query = "AGGREGATE count, sum(time.duration) GROUP BY function ORDER BY function";
    let run_with_threads = |threads: &str| {
        let out = run_cali_query(query, &["--stats", "--threads", threads], &inputs);
        assert!(
            out.status.success(),
            "--threads {threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (out.stdout, String::from_utf8(out.stderr).unwrap())
    };
    let (stdout1, stats1) = run_with_threads("1");
    check_golden("stats-stderr", &stats1);
    for threads in ["2", "4"] {
        let (stdout_n, stats_n) = run_with_threads(threads);
        assert_eq!(stdout1, stdout_n, "--threads {threads} stdout diverged");
        assert_eq!(stats1, stats_n, "--threads {threads} --stats block diverged");
    }
}

/// CALB v2 predicate pushdown is part of the determinism contract too:
/// over a block-columnar input, a selective WHERE must produce stdout
/// byte-identical to the text-encoded inputs, and the `--stats` block —
/// including a nonzero `format.reader.blocks_skipped` — must be
/// byte-identical for every `--threads N`.
#[test]
fn v2_pushdown_skips_blocks_identically_across_thread_counts() {
    let inputs = input_files();
    let (ds, _) = cali_cli::read_files_reported(&inputs, caliper_format::ReadPolicy::Strict)
        .expect("read golden inputs");
    let dir = std::env::temp_dir().join(format!("cali-v2-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let v2_path = dir.join("golden.calb2");
    // Tiny blocks so the selective WHERE below has whole blocks to skip.
    let bytes = caliper_format::to_binary_v2_with(
        &ds,
        &caliper_format::V2WriteOptions { block_records: 4, footer: true },
    );
    std::fs::write(&v2_path, bytes).unwrap();

    let query = "AGGREGATE count, sum(time.duration) WHERE loop.iteration > 2 \
                 GROUP BY function ORDER BY function";
    let text_out = run_cali_query(query, &[], &inputs);
    assert!(text_out.status.success());

    let run_v2 = |threads: &str| {
        let out = run_cali_query(
            query,
            &["--stats", "--threads", threads],
            std::slice::from_ref(&v2_path),
        );
        assert!(
            out.status.success(),
            "--threads {threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (out.stdout, String::from_utf8(out.stderr).unwrap())
    };
    let (stdout1, stats1) = run_v2("1");
    assert_eq!(text_out.stdout, stdout1, "v2 stdout diverged from the text encoding");
    let skipped = stats1
        .lines()
        .find_map(|l| l.strip_prefix("format.reader.blocks_skipped="))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("blocks_skipped metric present");
    assert!(skipped > 0, "selective WHERE should skip blocks:\n{stats1}");
    for threads in ["2", "4"] {
        let (stdout_n, stats_n) = run_v2(threads);
        assert_eq!(stdout1, stdout_n, "--threads {threads} stdout diverged");
        assert_eq!(stats1, stats_n, "--threads {threads} --stats block diverged");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--stats=json` must parse with the repo's own JSON reader, contain
/// the same values as the text form, and keep its keys sorted — the
/// machine-readable schema smoke test.
#[test]
fn stats_json_parses_and_matches_schema() {
    let inputs = input_files();
    let query = "AGGREGATE count GROUP BY function";
    let out = run_cali_query(query, &["--stats=json"], &inputs);
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    let json = caliper_format::parse_json(stderr.trim()).expect("valid JSON on stderr");
    let keys = json.keys();
    assert!(!keys.is_empty(), "top-level object with members");
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "stats keys must be sorted");
    // Non-zero pipeline activity is visible through the report.
    let reader_records = json
        .get("format.reader.records")
        .and_then(|v| v.as_num())
        .expect("format.reader.records present");
    assert!(reader_records > 0.0);
    let agg_records = json
        .get("query.aggregator.records")
        .and_then(|v| v.as_num())
        .expect("query.aggregator.records present");
    assert!(agg_records > 0.0);
    assert_eq!(
        json.get("format.reader.files").and_then(|v| v.as_num()),
        Some(2.0)
    );
}

/// The golden inputs themselves regenerate bit-identically: guards
/// against accidental nondeterminism in the runtime → writer path
/// (which would make UPDATE_GOLDEN churn unrelated bytes).
#[test]
fn golden_inputs_regenerate_deterministically() {
    let a = caliper_format::cali::to_bytes(&generate_rank(0));
    let b = caliper_format::cali::to_bytes(&generate_rank(0));
    assert_eq!(a, b);
    let checked_in = std::fs::read(golden_dir().join("data/rank0.cali")).unwrap();
    assert_eq!(
        a, checked_in,
        "generator drifted from the checked-in golden input — \
         run UPDATE_GOLDEN=1 to refresh data and expectations together"
    );
}

/// Dogfood end-to-end: a runtime channel with `metrics.enable = true`
/// writes its own metrics as snapshot records, and the `cali-query`
/// binary aggregates them with ordinary CalQL.
#[test]
fn dogfooded_metrics_are_queryable_with_calql() {
    let dir = std::env::temp_dir().join(format!("cali-golden-dogfood-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let caliper = Caliper::with_clock(
        Config::event_trace().set("metrics.enable", "true"),
        Clock::virtual_clock(),
    );
    let function = caliper.region_attribute("function");
    let mut scope = caliper.make_thread_scope();
    for _ in 0..3 {
        scope.begin(&function, "work");
        scope.advance_time(1_000);
        scope.end(&function).unwrap();
    }
    scope.flush();
    drop(scope);
    let path = dir.join("dogfood.cali");
    caliper_format::cali::write_file(&caliper.take_dataset(), &path).unwrap();
    drop::<Arc<Caliper>>(caliper);

    let out = run_cali_query(
        "AGGREGATE sum(metric.value) GROUP BY metric.name WHERE metric.name \
         ORDER BY metric.name FORMAT csv",
        &[],
        &[path],
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    // 3 x (begin + end) = 6 ops / 6 event snapshots.
    assert!(stdout.contains("runtime.blackboard.ops,6"), "{stdout}");
    assert!(stdout.contains("runtime.snapshots,6"), "{stdout}");
    assert!(stdout.contains("runtime.flushed_threads,1"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}
