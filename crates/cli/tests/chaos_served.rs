//! Black-box chaos suite for `cali-served` (docs/SERVED.md §runbook,
//! docs/CHAOS.md): the daemon is started as a real child process and
//! abused over its real sockets, under deterministic `--faults` specs.
//!
//! Invariants:
//!
//! * an injected worker kill mid-batch loses nothing: the supervisor
//!   restarts the worker, the batch is redelivered, and the final query
//!   result is byte-identical to a fault-free run;
//! * `kill -9` + restart reproduces every acknowledged batch
//!   byte-identically (ack-after-flush + journal replay);
//! * a full ingest queue answers `BUSY` promptly — clients never hang —
//!   and the well-behaved retry loop eventually lands every batch;
//! * a slow query returns a prompt 408 partial-with-warning, not a
//!   wedged connection;
//! * graceful shutdown (`POST /shutdown`) drains, exits 0, and a
//!   restart answers the pre-shutdown query byte-identically.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use caliper_served::{IngestClient, Reply};

/// Deterministic self-describing `.cali` batch payload.
fn batch_payload(seed: usize, records: usize) -> Vec<u8> {
    use caliper_data::{Properties, SnapshotRecord, Value, ValueType};
    let mut ds = caliper_format::Dataset::new();
    let kernel = ds.attribute("kernel", ValueType::Str, Properties::NESTED);
    let time = ds.attribute(
        "time",
        ValueType::Int,
        Properties::AS_VALUE | Properties::AGGREGATABLE,
    );
    let names = ["alpha", "beta", "gamma"];
    for i in 0..records {
        let node = ds.tree.get_child(
            caliper_data::NODE_NONE,
            kernel.id(),
            &Value::str(names[(seed + i) % names.len()]),
        );
        let mut rec = SnapshotRecord::new();
        rec.push_node(node);
        rec.push_imm(time.id(), Value::Int((i * (seed + 1)) as i64));
        ds.push(rec);
    }
    caliper_format::cali::to_bytes(&ds)
}

const QUERY: &str = "AGGREGATE count, sum(time) GROUP BY kernel, stream \
                     ORDER BY stream, kernel FORMAT csv";

struct Daemon {
    child: Child,
    ingest: SocketAddr,
    http: SocketAddr,
}

impl Daemon {
    /// Spawn `cali-served` over `dir` and wait until it is ready.
    fn start(dir: &Path, extra: &[&str]) -> Daemon {
        std::fs::create_dir_all(dir).unwrap();
        let ports = dir.join("ports.txt");
        let _ = std::fs::remove_file(&ports);
        let child = Command::new(env!("CARGO_BIN_EXE_cali-served"))
            .arg("--data-dir")
            .arg(dir.join("data"))
            .arg("--ports-file")
            .arg(&ports)
            .args(["--aggregate", "count,sum(time)", "--group-by", "kernel"])
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn cali-served");
        let deadline = Instant::now() + Duration::from_secs(20);
        let parse_ports = |text: &str| -> Option<(u16, u16)> {
            let mut ingest = None;
            let mut http = None;
            for line in text.lines() {
                if let Some(p) = line.strip_prefix("ingest=") {
                    ingest = p.parse().ok();
                }
                if let Some(p) = line.strip_prefix("http=") {
                    http = p.parse().ok();
                }
            }
            Some((ingest?, http?))
        };
        let (ingest_port, http_port) = loop {
            assert!(Instant::now() < deadline, "cali-served never wrote {ports:?}");
            if let Ok(text) = std::fs::read_to_string(&ports) {
                if let Some(pair) = parse_ports(&text) {
                    break pair;
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        };
        let daemon = Daemon {
            child,
            ingest: SocketAddr::from(([127, 0, 0, 1], ingest_port)),
            http: SocketAddr::from(([127, 0, 0, 1], http_port)),
        };
        loop {
            assert!(Instant::now() < deadline, "cali-served never became ready");
            if let Ok((200, _)) = daemon.http_req("GET", "/readyz") {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        daemon
    }

    fn http_req(&self, method: &str, path: &str) -> std::io::Result<(u16, String)> {
        let timeout = Duration::from_secs(10);
        let mut conn = TcpStream::connect_timeout(&self.http, timeout)?;
        conn.set_read_timeout(Some(timeout))?;
        conn.set_write_timeout(Some(timeout))?;
        conn.write_all(format!("{method} {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())?;
        let mut raw = String::new();
        conn.read_to_string(&mut raw)?;
        let status = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        Ok((status, body))
    }

    fn query(&self) -> (u16, String) {
        let encoded: String = QUERY
            .split_whitespace()
            .collect::<Vec<_>>()
            .join("+")
            .replace(',', "%2C")
            .replace('(', "%28")
            .replace(')', "%29");
        self.http_req("GET", &format!("/query?q={encoded}")).unwrap()
    }

    fn client(&self, stream: &str) -> IngestClient {
        let mut client = IngestClient::connect(self.ingest, Duration::from_secs(10)).unwrap();
        let reply = client.hello(stream).unwrap();
        assert!(reply.is_ok(), "HELLO refused: {}", reply.to_line());
        client
    }

    /// Graceful drain; asserts the daemon's exit code.
    fn shutdown(mut self, expect_exit: i32) {
        let (status, _) = self.http_req("POST", "/shutdown").unwrap();
        assert_eq!(status, 200);
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            if let Some(status) = self.child.try_wait().unwrap() {
                assert_eq!(status.code(), Some(expect_exit), "daemon exit code");
                break;
            }
            assert!(Instant::now() < deadline, "daemon never exited after drain");
            std::thread::sleep(Duration::from_millis(20));
        }
        // Prevent the Drop kill from firing on the reaped child.
        std::mem::forget(self);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cali-chaos-served-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Ingest the standard three batches over two streams; returns acks.
fn ingest_standard(daemon: &Daemon) -> Vec<Reply> {
    let mut acks = Vec::new();
    let mut a = daemon.client("rank0");
    acks.push(a.send_batch(&batch_payload(0, 12)).unwrap());
    acks.push(a.send_batch(&batch_payload(1, 12)).unwrap());
    let _ = a.quit();
    let mut b = daemon.client("rank1");
    acks.push(b.send_batch(&batch_payload(2, 12)).unwrap());
    let _ = b.quit();
    acks
}

#[test]
fn worker_kill_mid_batch_loses_nothing() {
    // Clean run first: the reference answer.
    let clean_dir = tmpdir("workerkill-clean");
    let clean = Daemon::start(&clean_dir, &[]);
    for ack in ingest_standard(&clean) {
        assert!(ack.is_ok(), "{}", ack.to_line());
    }
    let (status, reference) = clean.query();
    assert_eq!(status, 200, "{reference}");
    clean.shutdown(0);

    // Faulty run: every batch's first processing attempt kills the
    // worker mid-ingest (fail(1) per fault key = per batch). The
    // supervisor restarts the worker, the batch is redelivered, and
    // the ack still arrives on the same send.
    let dir = tmpdir("workerkill");
    let daemon = Daemon::start(&dir, &["--faults", "served.ingest=fail(1)"]);
    for ack in ingest_standard(&daemon) {
        assert!(ack.is_ok(), "{}", ack.to_line());
    }
    let (status, result) = daemon.query();
    assert_eq!(status, 200, "{result}");
    assert_eq!(result, reference, "worker kills changed the answer");
    let (status, stats) = daemon.http_req("GET", "/stats").unwrap();
    assert_eq!(status, 200);
    assert!(
        stats.contains("served.supervisor.restarts=3"),
        "expected exactly one restart per batch:\n{stats}"
    );
    assert!(stats.contains("served.ingest.accepted=3"), "{stats}");
    daemon.shutdown(0);

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkill_then_restart_is_byte_identical() {
    let dir = tmpdir("sigkill");
    let mut daemon = Daemon::start(&dir, &["--fsync"]);
    for ack in ingest_standard(&daemon) {
        assert!(ack.is_ok(), "{}", ack.to_line());
    }
    let (status, before) = daemon.query();
    assert_eq!(status, 200, "{before}");

    // Hard kill: no drain, no flush beyond the per-batch ack path.
    daemon.child.kill().unwrap();
    daemon.child.wait().unwrap();
    std::mem::forget(daemon);

    let daemon = Daemon::start(&dir, &["--fsync"]);
    let (status, after) = daemon.query();
    assert_eq!(status, 200, "{after}");
    assert_eq!(after, before, "acknowledged batches lost across kill -9");
    daemon.shutdown(0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_queue_replies_busy_and_never_hangs() {
    let dir = tmpdir("busy");
    // One worker, queue depth 1, and every batch held 300 ms inside
    // the worker: three simultaneous senders cannot all fit.
    let daemon = Daemon::start(
        &dir,
        &[
            "--queue-depth",
            "1",
            "--workers",
            "1",
            "--faults",
            "served.ingest=delay(300)",
        ],
    );
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(3));
    let started = Instant::now();
    let mut handles = Vec::new();
    for i in 0..3 {
        let barrier = std::sync::Arc::clone(&barrier);
        let mut client = daemon.client(&format!("s{i}"));
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let first = client.send_batch(&batch_payload(i, 6)).unwrap();
            let landed = match &first {
                Reply::Busy { .. } => {
                    // The well-behaved backpressure loop: retry until
                    // accepted.
                    client.send_batch_retrying(&batch_payload(i, 6), 100).unwrap()
                }
                other => other.clone(),
            };
            let _ = client.quit();
            (first, landed)
        }));
    }
    let outcomes: Vec<(Reply, Reply)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(15),
        "backpressure path took {elapsed:?} — a full queue must not hang clients"
    );
    let busy = outcomes
        .iter()
        .filter(|(first, _)| matches!(first, Reply::Busy { .. }))
        .count();
    assert!(busy >= 1, "expected at least one BUSY: {outcomes:?}");
    for (_, landed) in &outcomes {
        assert!(landed.is_ok(), "retry loop never landed: {}", landed.to_line());
    }
    // Every batch accepted exactly once: 3 streams × 6 records. The
    // query plane sees warm per-(kernel,stream) rows, so summing their
    // `count` column recovers the raw record total.
    let (status, body) = daemon
        .http_req("GET", "/query?q=AGGREGATE+sum%28count%29+FORMAT+csv")
        .unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.trim(), "sum#count\n18", "every batch must land exactly once");
    daemon.shutdown(0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_query_returns_prompt_408_partial() {
    let dir = tmpdir("deadline");
    let daemon = Daemon::start(
        &dir,
        &[
            "--deadline-ms",
            "50",
            "--faults",
            "served.query=delay(150)",
        ],
    );
    let mut client = daemon.client("rank0");
    assert!(client.send_batch(&batch_payload(0, 12)).unwrap().is_ok());
    let _ = client.quit();

    let started = Instant::now();
    let (status, body) = daemon.query();
    let elapsed = started.elapsed();
    assert_eq!(status, 408, "{body}");
    assert!(
        body.contains("deadline exceeded"),
        "408 body must carry the partial-result warning: {body}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline query took {elapsed:?} — must return promptly"
    );
    // Health plane is unaffected by slow queries.
    assert_eq!(daemon.http_req("GET", "/healthz").unwrap().0, 200);
    daemon.shutdown(0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_drains_and_restart_matches() {
    let dir = tmpdir("graceful");
    let daemon = Daemon::start(&dir, &[]);
    for ack in ingest_standard(&daemon) {
        assert!(ack.is_ok(), "{}", ack.to_line());
    }
    let (status, before) = daemon.query();
    assert_eq!(status, 200, "{before}");
    daemon.shutdown(0);

    let daemon = Daemon::start(&dir, &[]);
    let (status, ready) = daemon.http_req("GET", "/readyz").unwrap();
    assert_eq!(status, 200, "{ready}");
    let (status, after) = daemon.query();
    assert_eq!(status, 200, "{after}");
    assert_eq!(after, before, "graceful restart changed the answer");
    // Draining daemons refuse new batches instead of dropping them.
    let (s, _) = daemon.http_req("POST", "/shutdown").unwrap();
    assert_eq!(s, 200);
    let mut client = IngestClient::connect(daemon.ingest, Duration::from_secs(10)).unwrap();
    if client.hello("late").is_ok() {
        // An I/O error (connection closed during drain) is also fine;
        // only an accepted batch would be a bug.
        if let Ok(reply) = client.send_batch(&batch_payload(9, 3)) {
            assert!(!reply.is_ok(), "draining daemon accepted a batch");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
