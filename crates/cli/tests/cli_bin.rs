//! Black-box tests of the `cali-query` and `mpi-caliquery` binaries.

use std::path::PathBuf;
use std::process::Command;

use miniapps::paradis::{self, ParaDisParams};

fn write_inputs(name: &str, ranks: usize) -> (PathBuf, Vec<PathBuf>) {
    let dir = std::env::temp_dir().join(format!("cali-bin-test-{name}-{}", std::process::id()));
    let params = ParaDisParams {
        iterations: 2,
        ..Default::default()
    };
    let paths = paradis::write_files(&params, ranks, &dir).unwrap();
    (dir, paths)
}

#[test]
fn cali_query_runs_a_query() {
    let (dir, paths) = write_inputs("serial", 2);
    let out = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("-q")
        .arg("AGGREGATE sum(aggregate.count) GROUP BY kernel ORDER BY kernel")
        .args(&paths)
        .output()
        .expect("run cali-query");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("kernel"));
    assert!(stdout.contains("CalcSegForces"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cali_query_csv_output_to_file() {
    let (dir, paths) = write_inputs("csv", 1);
    let out_file = dir.join("result.csv");
    let out = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("-q")
        .arg("AGGREGATE sum(sum#time.duration) GROUP BY mpi.function FORMAT csv")
        .arg("-o")
        .arg(&out_file)
        .args(&paths)
        .output()
        .expect("run cali-query");
    assert!(out.status.success());
    let csv = std::fs::read_to_string(&out_file).unwrap();
    assert!(csv.starts_with("mpi.function,sum#sum#time.duration"));
    assert!(csv.contains("MPI_Barrier"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cali_query_reads_binary_files() {
    let (dir, paths) = write_inputs("binary", 2);
    // Convert the generated text files to the binary flavor.
    let mut binary_paths = Vec::new();
    for (i, path) in paths.iter().enumerate() {
        let ds = caliper_format::cali::read_file(path).unwrap();
        let bin = dir.join(format!("rank-{i}.calb"));
        caliper_format::binary::write_file(&ds, &bin).unwrap();
        binary_paths.push(bin);
    }
    let query = "AGGREGATE sum(aggregate.count) GROUP BY kernel ORDER BY kernel";
    let from_text = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("-q")
        .arg(query)
        .args(&paths)
        .output()
        .expect("run cali-query on text");
    let from_binary = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("-q")
        .arg(query)
        .args(&binary_paths)
        .output()
        .expect("run cali-query on binary");
    assert!(from_binary.status.success());
    assert_eq!(from_text.stdout, from_binary.stdout);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn streaming_query_matches_merged_query() {
    let (dir, paths) = write_inputs("streaming", 5);
    let query = "AGGREGATE sum(sum#time.duration), sum(aggregate.count) GROUP BY kernel";
    let merged = cali_cli::read_files(&paths).unwrap();
    let reference = caliper_query::run_query(&merged, query).unwrap();
    let streamed = cali_cli::query_files_streaming(query, &paths).unwrap();
    assert_eq!(
        reference.to_table().render(),
        streamed.to_table().render()
    );
    // Pass-through fallback also works.
    let passthrough = cali_cli::query_files_streaming("SELECT * LIMIT 3", &paths).unwrap();
    assert_eq!(passthrough.records.len(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cali_query_reports_bad_query() {
    let (dir, paths) = write_inputs("bad", 1);
    let out = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("-q")
        .arg("AGGREGATE bogus(x) GROUP BY kernel")
        .args(&paths)
        .output()
        .expect("run cali-query");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("bogus"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cali_stat_summarizes_datasets() {
    let (dir, paths) = write_inputs("stat", 2);
    let out = Command::new(env!("CARGO_BIN_EXE_cali-stat"))
        .args(&paths)
        .output()
        .expect("run cali-stat");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("files:            2"), "{stdout}");
    assert!(stdout.contains("snapshot records:"), "{stdout}");
    assert!(stdout.contains("kernel"), "{stdout}");
    assert!(stdout.contains("binary"), "{stdout}");
    // numeric attribute gets min/mean/max
    assert!(stdout.contains("sum#time.duration"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cali_query_help() {
    let out = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("--help")
        .output()
        .expect("run cali-query");
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("usage:"));
}

#[test]
fn mpi_caliquery_matches_cali_query() {
    let (dir, paths) = write_inputs("mpi", 4);
    let query = "AGGREGATE sum(sum#time.duration), sum(aggregate.count) GROUP BY kernel";

    let serial = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("-q")
        .arg(query)
        .args(&paths)
        .output()
        .expect("run cali-query");
    let parallel = Command::new(env!("CARGO_BIN_EXE_mpi-caliquery"))
        .arg("--np")
        .arg("4")
        .arg("-q")
        .arg(query)
        .arg("--timings")
        .args(&paths)
        .output()
        .expect("run mpi-caliquery");

    assert!(serial.status.success());
    assert!(parallel.status.success(), "{}", String::from_utf8_lossy(&parallel.stderr));
    assert_eq!(serial.stdout, parallel.stdout);
    let stderr = String::from_utf8(parallel.stderr).unwrap();
    assert!(stderr.contains("tree reduction"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cali_query_lists_attributes_and_globals() {
    let (dir, paths) = write_inputs("list", 1);
    let out = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("--list-attributes")
        .args(&paths)
        .output()
        .expect("run cali-query");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("kernel,string,nested"), "{stdout}");
    assert!(stdout.contains("sum#time.duration,double"), "{stdout}");

    let out = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("--list-globals")
        .args(&paths)
        .output()
        .expect("run cali-query");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("experiment=paradis"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cali_query_flamegraph_format() {
    let (dir, paths) = write_inputs("flame", 1);
    let out = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("-q")
        .arg(
            "AGGREGATE sum(sum#time.duration) WHERE kernel GROUP BY kernel \
             SELECT kernel, sum#sum#time.duration FORMAT flamegraph",
        )
        .args(&paths)
        .output()
        .expect("run cali-query");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    // folded format: "frame value" lines
    let first = stdout.lines().next().unwrap();
    assert!(first.split(' ').count() == 2, "{first}");
    assert!(first.split(' ').nth(1).unwrap().parse::<i64>().is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cali_query_threads_output_is_identical() {
    let (dir, paths) = write_inputs("threads", 6);
    let query = "AGGREGATE count, sum(sum#time.duration), avg(sum#time.duration) \
                 GROUP BY kernel ORDER BY kernel";
    let run = |threads: &str| {
        Command::new(env!("CARGO_BIN_EXE_cali-query"))
            .arg("-q")
            .arg(query)
            .arg("--threads")
            .arg(threads)
            .args(&paths)
            .output()
            .expect("run cali-query")
    };
    let serial = run("1");
    assert!(serial.status.success(), "{}", String::from_utf8_lossy(&serial.stderr));
    for threads in ["2", "4", "8"] {
        let sharded = run(threads);
        assert!(sharded.status.success(), "{}", String::from_utf8_lossy(&sharded.stderr));
        assert_eq!(serial.stdout, sharded.stdout, "--threads {threads} diverged");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cali_query_threads_reports_timings_and_bad_values() {
    let (dir, paths) = write_inputs("threads-timings", 2);
    let out = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("-q")
        .arg("AGGREGATE count GROUP BY kernel")
        .arg("--threads")
        .arg("2")
        .arg("--timings")
        .args(&paths)
        .output()
        .expect("run cali-query");
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("# worker 0:"), "{stderr}");
    assert!(stderr.contains("# worker 1:"), "{stderr}");
    assert!(stderr.contains("# critical path:"), "{stderr}");

    let out = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("--threads")
        .arg("0")
        .args(&paths)
        .output()
        .expect("run cali-query");
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("positive integer"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cali_query_read_errors_name_the_file() {
    let (dir, mut paths) = write_inputs("badfile", 1);
    paths.push(dir.join("does-not-exist.cali"));
    let out = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("-q")
        .arg("AGGREGATE count GROUP BY kernel")
        .args(&paths)
        .output()
        .expect("run cali-query");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("does-not-exist.cali"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mpi_caliquery_rejects_passthrough() {
    let (dir, paths) = write_inputs("reject", 1);
    let out = Command::new(env!("CARGO_BIN_EXE_mpi-caliquery"))
        .arg("-q")
        .arg("SELECT *")
        .args(&paths)
        .output()
        .expect("run mpi-caliquery");
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("must aggregate"));
    std::fs::remove_dir_all(&dir).ok();
}
