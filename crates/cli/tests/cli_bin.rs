//! Black-box tests of the `cali-query` and `mpi-caliquery` binaries.

use std::path::PathBuf;
use std::process::Command;

use miniapps::paradis::{self, ParaDisParams};

fn write_inputs(name: &str, ranks: usize) -> (PathBuf, Vec<PathBuf>) {
    let dir = std::env::temp_dir().join(format!("cali-bin-test-{name}-{}", std::process::id()));
    let params = ParaDisParams {
        iterations: 2,
        ..Default::default()
    };
    let paths = paradis::write_files(&params, ranks, &dir).unwrap();
    (dir, paths)
}

#[test]
fn cali_query_runs_a_query() {
    let (dir, paths) = write_inputs("serial", 2);
    let out = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("-q")
        .arg("AGGREGATE sum(aggregate.count) GROUP BY kernel ORDER BY kernel")
        .args(&paths)
        .output()
        .expect("run cali-query");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("kernel"));
    assert!(stdout.contains("CalcSegForces"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cali_query_csv_output_to_file() {
    let (dir, paths) = write_inputs("csv", 1);
    let out_file = dir.join("result.csv");
    let out = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("-q")
        .arg("AGGREGATE sum(sum#time.duration) GROUP BY mpi.function FORMAT csv")
        .arg("-o")
        .arg(&out_file)
        .args(&paths)
        .output()
        .expect("run cali-query");
    assert!(out.status.success());
    let csv = std::fs::read_to_string(&out_file).unwrap();
    assert!(csv.starts_with("mpi.function,sum#sum#time.duration"));
    assert!(csv.contains("MPI_Barrier"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cali_query_reads_binary_files() {
    let (dir, paths) = write_inputs("binary", 2);
    // Convert the generated text files to the binary flavor.
    let mut binary_paths = Vec::new();
    for (i, path) in paths.iter().enumerate() {
        let ds = caliper_format::cali::read_file(path).unwrap();
        let bin = dir.join(format!("rank-{i}.calb"));
        caliper_format::binary::write_file(&ds, &bin).unwrap();
        binary_paths.push(bin);
    }
    let query = "AGGREGATE sum(aggregate.count) GROUP BY kernel ORDER BY kernel";
    let from_text = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("-q")
        .arg(query)
        .args(&paths)
        .output()
        .expect("run cali-query on text");
    let from_binary = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("-q")
        .arg(query)
        .args(&binary_paths)
        .output()
        .expect("run cali-query on binary");
    assert!(from_binary.status.success());
    assert_eq!(from_text.stdout, from_binary.stdout);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn streaming_query_matches_merged_query() {
    let (dir, paths) = write_inputs("streaming", 5);
    let query = "AGGREGATE sum(sum#time.duration), sum(aggregate.count) GROUP BY kernel";
    let merged = cali_cli::read_files(&paths).unwrap();
    let reference = caliper_query::run_query(&merged, query).unwrap();
    let streamed = cali_cli::query_files_streaming(query, &paths).unwrap();
    assert_eq!(
        reference.to_table().render(),
        streamed.to_table().render()
    );
    // Pass-through fallback also works.
    let passthrough = cali_cli::query_files_streaming("SELECT * LIMIT 3", &paths).unwrap();
    assert_eq!(passthrough.records.len(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cali_query_reports_bad_query() {
    let (dir, paths) = write_inputs("bad", 1);
    let out = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("-q")
        .arg("AGGREGATE bogus(x) GROUP BY kernel")
        .args(&paths)
        .output()
        .expect("run cali-query");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("bogus"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cali_stat_summarizes_datasets() {
    let (dir, paths) = write_inputs("stat", 2);
    let out = Command::new(env!("CARGO_BIN_EXE_cali-stat"))
        .args(&paths)
        .output()
        .expect("run cali-stat");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("files:            2"), "{stdout}");
    assert!(stdout.contains("snapshot records:"), "{stdout}");
    assert!(stdout.contains("kernel"), "{stdout}");
    assert!(stdout.contains("binary"), "{stdout}");
    // numeric attribute gets min/mean/max
    assert!(stdout.contains("sum#time.duration"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cali_query_help() {
    let out = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("--help")
        .output()
        .expect("run cali-query");
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("usage:"));
}

#[test]
fn mpi_caliquery_matches_cali_query() {
    let (dir, paths) = write_inputs("mpi", 4);
    let query = "AGGREGATE sum(sum#time.duration), sum(aggregate.count) GROUP BY kernel";

    let serial = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("-q")
        .arg(query)
        .args(&paths)
        .output()
        .expect("run cali-query");
    let parallel = Command::new(env!("CARGO_BIN_EXE_mpi-caliquery"))
        .arg("--np")
        .arg("4")
        .arg("-q")
        .arg(query)
        .arg("--timings")
        .args(&paths)
        .output()
        .expect("run mpi-caliquery");

    assert!(serial.status.success());
    assert!(parallel.status.success(), "{}", String::from_utf8_lossy(&parallel.stderr));
    assert_eq!(serial.stdout, parallel.stdout);
    let stderr = String::from_utf8(parallel.stderr).unwrap();
    assert!(stderr.contains("tree reduction"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cali_query_lists_attributes_and_globals() {
    let (dir, paths) = write_inputs("list", 1);
    let out = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("--list-attributes")
        .args(&paths)
        .output()
        .expect("run cali-query");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("kernel,string,nested"), "{stdout}");
    assert!(stdout.contains("sum#time.duration,double"), "{stdout}");

    let out = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("--list-globals")
        .args(&paths)
        .output()
        .expect("run cali-query");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("experiment=paradis"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cali_query_flamegraph_format() {
    let (dir, paths) = write_inputs("flame", 1);
    let out = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("-q")
        .arg(
            "AGGREGATE sum(sum#time.duration) WHERE kernel GROUP BY kernel \
             SELECT kernel, sum#sum#time.duration FORMAT flamegraph",
        )
        .args(&paths)
        .output()
        .expect("run cali-query");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    // folded format: "frame value" lines
    let first = stdout.lines().next().unwrap();
    assert!(first.split(' ').count() == 2, "{first}");
    assert!(first.split(' ').nth(1).unwrap().parse::<i64>().is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cali_query_threads_output_is_identical() {
    let (dir, paths) = write_inputs("threads", 6);
    let query = "AGGREGATE count, sum(sum#time.duration), avg(sum#time.duration) \
                 GROUP BY kernel ORDER BY kernel";
    let run = |threads: &str| {
        Command::new(env!("CARGO_BIN_EXE_cali-query"))
            .arg("-q")
            .arg(query)
            .arg("--threads")
            .arg(threads)
            .args(&paths)
            .output()
            .expect("run cali-query")
    };
    let serial = run("1");
    assert!(serial.status.success(), "{}", String::from_utf8_lossy(&serial.stderr));
    for threads in ["2", "4", "8"] {
        let sharded = run(threads);
        assert!(sharded.status.success(), "{}", String::from_utf8_lossy(&sharded.stderr));
        assert_eq!(serial.stdout, sharded.stdout, "--threads {threads} diverged");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cali_query_threads_reports_timings_and_bad_values() {
    let (dir, paths) = write_inputs("threads-timings", 2);
    let out = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("-q")
        .arg("AGGREGATE count GROUP BY kernel")
        .arg("--threads")
        .arg("2")
        .arg("--timings")
        .args(&paths)
        .output()
        .expect("run cali-query");
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("# worker 0:"), "{stderr}");
    assert!(stderr.contains("# worker 1:"), "{stderr}");
    assert!(stderr.contains("# critical path:"), "{stderr}");

    let out = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("--threads")
        .arg("0")
        .args(&paths)
        .output()
        .expect("run cali-query");
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("positive integer"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cali_query_read_errors_name_the_file() {
    let (dir, mut paths) = write_inputs("badfile", 1);
    paths.push(dir.join("does-not-exist.cali"));
    let out = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("-q")
        .arg("AGGREGATE count GROUP BY kernel")
        .args(&paths)
        .output()
        .expect("run cali-query");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("does-not-exist.cali"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Writes a small hand-built dataset (3 kernels, integer times) so the
/// corruption tests control file contents byte-precisely.
fn tiny_dataset(seed: usize, records: usize) -> caliper_format::Dataset {
    use caliper_data::{Properties, SnapshotRecord, Value, ValueType};
    let mut ds = caliper_format::Dataset::new();
    let kernel = ds.attribute("kernel", ValueType::Str, Properties::NESTED);
    let time = ds.attribute(
        "time",
        ValueType::Int,
        Properties::AS_VALUE | Properties::AGGREGATABLE,
    );
    let names = ["alpha", "beta", "gamma"];
    for i in 0..records {
        let node = ds.tree.get_child(
            caliper_data::NODE_NONE,
            kernel.id(),
            &Value::str(names[(seed + i) % names.len()]),
        );
        let mut rec = SnapshotRecord::new();
        rec.push_node(node);
        rec.push_imm(time.id(), Value::Int((i * (seed + 1)) as i64));
        ds.push(rec);
    }
    ds
}

#[test]
fn cali_query_lenient_salvages_a_corrupt_corpus() {
    let dir = std::env::temp_dir().join(format!("cali-bin-test-lenient-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let query = "AGGREGATE count, sum(time) GROUP BY kernel ORDER BY kernel";

    // Two clean files...
    let mut clean = Vec::new();
    for seed in 0..2 {
        let path = dir.join(format!("clean{seed}.cali"));
        caliper_format::cali::write_file(&tiny_dataset(seed, 12), &path).unwrap();
        clean.push(path);
    }
    // ...a text file truncated mid-way through its first context record
    // (valid prefix = dictionary only, zero data records; the cut lands
    // inside the record marker so the partial line cannot parse)...
    let text = caliper_format::cali::to_bytes(&tiny_dataset(2, 12));
    let text_str = String::from_utf8(text).unwrap();
    let cut = text_str.find("__rec=ctx").expect("has a ctx record") + 4;
    let truncated = dir.join("truncated.cali");
    std::fs::write(&truncated, &text_str.as_bytes()[..cut]).unwrap();
    // ...and a binary file whose body is garbage right after the header.
    let bin = caliper_format::binary::to_binary(&tiny_dataset(3, 12));
    let corrupt = dir.join("corrupt.calb");
    std::fs::write(&corrupt, [&bin[..5], &[0xFF; 16]].concat()).unwrap();

    let mut corpus = clean.clone();
    corpus.push(truncated);
    corpus.push(corrupt);

    let run = |threads: &str, lenient: bool, paths: &[PathBuf]| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_cali-query"));
        cmd.arg("-q").arg(query).arg("--threads").arg(threads);
        if lenient {
            cmd.arg("--lenient");
        }
        cmd.args(paths).output().expect("run cali-query")
    };

    for threads in ["1", "4"] {
        // Strict over the full corpus fails, naming a corrupt file.
        let strict = run(threads, false, &corpus);
        assert!(!strict.status.success(), "--threads {threads}");

        // Lenient salvages the corpus; the corrupt files contribute
        // their (empty) valid prefixes, so stdout is byte-identical to
        // a strict run over the clean files alone — and the partial
        // result is flagged with the distinct exit code 2.
        let reference = run(threads, false, &clean);
        assert!(reference.status.success());
        let lenient = run(threads, true, &corpus);
        assert_eq!(
            lenient.status.code(),
            Some(2),
            "--threads {threads}: lenient with skipped records must exit 2: {}",
            String::from_utf8_lossy(&lenient.stderr)
        );
        assert_eq!(
            String::from_utf8_lossy(&lenient.stdout),
            String::from_utf8_lossy(&reference.stdout),
            "--threads {threads}"
        );

        // The skipped work is summarized per file on stderr, plus one
        // combined total line for the whole corpus.
        let stderr = String::from_utf8(lenient.stderr).unwrap();
        assert!(stderr.contains("truncated.cali"), "--threads {threads}: {stderr}");
        assert!(stderr.contains("corrupt.calb"), "--threads {threads}: {stderr}");
        assert!(stderr.contains("skipped"), "--threads {threads}: {stderr}");
        assert!(
            stderr.contains("total:") && stderr.contains("2/4 files with errors"),
            "--threads {threads}: {stderr}"
        );

        // A lenient run over clean files alone stays exit 0.
        let clean_lenient = run(threads, true, &clean);
        assert_eq!(clean_lenient.status.code(), Some(0), "--threads {threads}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cali_query_max_groups_bounds_the_database() {
    let dir = std::env::temp_dir().join(format!("cali-bin-test-capped-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut paths = Vec::new();
    for seed in 0..3 {
        let path = dir.join(format!("in{seed}.cali"));
        caliper_format::cali::write_file(&tiny_dataset(seed, 20), &path).unwrap();
        paths.push(path);
    }
    let run = |threads: &str| {
        Command::new(env!("CARGO_BIN_EXE_cali-query"))
            .arg("-q")
            .arg("AGGREGATE count, sum(time) GROUP BY kernel ORDER BY kernel")
            .arg("--max-groups")
            .arg("2") // fewer than the 3 kernels in the data
            .arg("--threads")
            .arg(threads)
            .args(&paths)
            .output()
            .expect("run cali-query")
    };
    let serial = run("1");
    assert!(serial.status.success(), "{}", String::from_utf8_lossy(&serial.stderr));
    let stdout = String::from_utf8(serial.stdout.clone()).unwrap();
    assert!(stdout.contains("__overflow__"), "{stdout}");
    let stderr = String::from_utf8(serial.stderr).unwrap();
    assert!(stderr.contains("capped at 2 groups"), "{stderr}");

    // The cap is deterministic across thread counts.
    for threads in ["2", "4"] {
        let sharded = run(threads);
        assert!(sharded.status.success());
        assert_eq!(serial.stdout, sharded.stdout, "--threads {threads} diverged");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mpi_caliquery_rejects_passthrough() {
    let (dir, paths) = write_inputs("reject", 1);
    let out = Command::new(env!("CARGO_BIN_EXE_mpi-caliquery"))
        .arg("-q")
        .arg("SELECT *")
        .args(&paths)
        .output()
        .expect("run mpi-caliquery");
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("must aggregate"));
    std::fs::remove_dir_all(&dir).ok();
}
