//! In-process chaos tests for the runtime journal failpoints
//! (`journal.write`, `journal.fsync`, `runtime.append`).
//!
//! These arm the process-global fault registry directly (no spawned
//! binary between the fault and the code under test), so they live in
//! their own integration-test binary: each test file is its own
//! process, and the registry is install-once per process. Every test
//! installs the same combined spec; `~path` filters keep the scenarios
//! from interfering with each other.

use std::path::PathBuf;
use std::process::Command;

use caliper_runtime::{Caliper, Clock, Config};

/// One spec for the whole process: transient write/fsync faults on the
/// `retry-j` journal, a permanent append fault on the `dead-j` journal.
const SPEC: &str =
    "journal.write~retry-j=fail(2);journal.fsync~retry-j=fail(1);runtime.append~dead-j=err(1)";

fn arm() {
    caliper_faults::install_spec(SPEC).expect("valid spec");
}

/// Run a journaled event-trace workload; returns (journal path, stats,
/// snapshots the in-memory trace collected).
fn run_workload(tag: &str, regions: usize, fsync: bool) -> (PathBuf, caliper_runtime::JournalStats, usize) {
    let path = std::env::temp_dir().join(format!(
        "cali-chaos-journal-{tag}-{}.cali",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let mut config = Config::event_trace()
        .set("journal.enable", "true")
        .set("journal.path", &path.display().to_string());
    if fsync {
        config = config.set("journal.fsync", "true");
    }
    let caliper = Caliper::try_with_clock(config, Clock::virtual_clock()).unwrap();
    let function = caliper.region_attribute("function");
    let mut scope = caliper.make_thread_scope();
    for i in 0..regions {
        scope.begin(&function, if i % 2 == 0 { "solve" } else { "io" });
        scope.advance_time(1_000);
        scope.end(&function).unwrap();
    }
    scope.flush();
    let stats = caliper.channels()[0]
        .journal()
        .expect("journal enabled")
        .stats();
    let ds = caliper.take_dataset();
    (path, stats, ds.len())
}

fn recover(journal: &std::path::Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cali-recover"))
        .arg(journal)
        .output()
        .expect("run cali-recover")
}

#[test]
fn transient_journal_write_and_fsync_faults_are_absorbed_by_retry() {
    arm();
    let (journal, stats, _) = run_workload("retry-j", 10, true);
    // fail(2) on the write path plus fail(1) on the fsync path, all
    // absorbed: the injected attempts are counted, nothing is lost.
    assert_eq!(stats.retries, 3, "{stats:?}");
    assert!(!stats.disabled, "{stats:?}");
    assert_eq!(stats.write_errors, 0, "{stats:?}");
    assert_eq!(stats.appended, stats.durable, "{stats:?}");

    // The journal on disk is complete: a clean (fault-free, separate
    // process) recovery salvages every snapshot.
    let out = recover(&journal);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("salvaged 20 snapshots"), "{stderr}");
    assert!(stderr.contains("0 corrupt lines skipped"), "{stderr}");
    std::fs::remove_file(&journal).ok();
}

#[test]
fn permanent_append_faults_disable_the_journal_not_the_program() {
    arm();
    let (journal, stats, traced) = run_workload("dead-j", 8, false);
    // err(1): every append fails; the sink disables itself on the
    // first, reports once, and the instrumented program carries on.
    assert!(stats.disabled, "{stats:?}");
    assert_eq!(stats.write_errors, 1, "{stats:?}");
    // The in-memory trace pipeline is unaffected by the dead journal.
    assert_eq!(traced, 16, "trace must still hold 2 snapshots/region");

    // What little reached the disk (the header, at most) must still be
    // recoverable without a panic.
    let out = recover(&journal);
    assert!(
        matches!(out.status.code(), Some(0..=2)),
        "exit {:?}: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        !String::from_utf8_lossy(&out.stderr).contains("panicked"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(&journal).ok();
}
