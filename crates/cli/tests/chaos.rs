//! Chaos-invariant suite: black-box tests of the CLI binaries under
//! deterministic fault injection (`--faults` / `CALI_FAULTS`) and
//! file-level mutation (`cali-pack --mutate`).
//!
//! The invariants, spelled out in docs/CHAOS.md:
//!
//! * injected faults and mutated files never panic a binary — they
//!   surface as typed errors, partial-result reports, and exit code 2;
//! * for a fixed spec/seed, every fault decision — and therefore every
//!   output byte — is identical across `--threads 1/2/4`;
//! * lenient read reports count the damage exactly (decoded record
//!   counts match what the aggregation saw);
//! * `cali-pack --mutate` is a pure function of (path, seed, mode).

use std::path::PathBuf;
use std::process::{Command, Output};

/// Hand-built dataset with integer times so tests control file
/// contents byte-precisely (same shape as cli_bin.rs).
fn tiny_dataset(seed: usize, records: usize) -> caliper_format::Dataset {
    use caliper_data::{Properties, SnapshotRecord, Value, ValueType};
    let mut ds = caliper_format::Dataset::new();
    let kernel = ds.attribute("kernel", ValueType::Str, Properties::NESTED);
    let time = ds.attribute(
        "time",
        ValueType::Int,
        Properties::AS_VALUE | Properties::AGGREGATABLE,
    );
    let names = ["alpha", "beta", "gamma"];
    for i in 0..records {
        let node = ds.tree.get_child(
            caliper_data::NODE_NONE,
            kernel.id(),
            &Value::str(names[(seed + i) % names.len()]),
        );
        let mut rec = SnapshotRecord::new();
        rec.push_node(node);
        rec.push_imm(time.id(), Value::Int((i * (seed + 1)) as i64));
        ds.push(rec);
    }
    ds
}

/// Fresh temp dir with three 12-record text files (36 records total).
fn text_corpus(name: &str) -> (PathBuf, Vec<PathBuf>) {
    let dir = std::env::temp_dir().join(format!("cali-chaos-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut paths = Vec::new();
    for seed in 0..3 {
        let path = dir.join(format!("in{seed}.cali"));
        caliper_format::cali::write_file(&tiny_dataset(seed, 12), &path).unwrap();
        paths.push(path);
    }
    (dir, paths)
}

fn query(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .args(args)
        .output()
        .expect("run cali-query")
}

fn pack(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cali-pack"))
        .args(args)
        .output()
        .expect("run cali-pack")
}

fn paths_as_strs(paths: &[PathBuf]) -> Vec<&str> {
    paths.iter().map(|p| p.to_str().unwrap()).collect()
}

const QUERY: &str = "AGGREGATE count, sum(time) GROUP BY kernel ORDER BY kernel";

#[test]
fn fault_spec_typo_is_a_hard_error_not_a_silent_disarm() {
    let (dir, paths) = text_corpus("typo");
    let mut args = vec!["-q", QUERY, "--faults", "io.read=boom(1)"];
    args.extend(paths_as_strs(&paths));
    let out = query(&args);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("invalid fault spec"), "{stderr}");

    // The environment variable route must be just as loud: a chaos run
    // with a typo'd spec must abort, not quietly run fault-free.
    let out = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .env("CALI_FAULTS", "io.read=boom(1)")
        .args(["-q", QUERY])
        .args(&paths)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("invalid fault spec"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn transient_read_faults_are_retried_to_success() {
    let (dir, paths) = text_corpus("retry");
    let clean = {
        let mut args = vec!["-q", QUERY];
        args.extend(paths_as_strs(&paths));
        query(&args)
    };
    assert_eq!(clean.status.code(), Some(0));

    for threads in ["1", "2", "4"] {
        // fail(2): the first two read attempts of every file fail with a
        // transient error; the bounded backoff retries absorb them.
        let mut args = vec![
            "-q",
            QUERY,
            "--threads",
            threads,
            "--stats",
            "--faults",
            "io.read=fail(2)",
        ];
        args.extend(paths_as_strs(&paths));
        let out = query(&args);
        assert_eq!(
            out.status.code(),
            Some(0),
            "--threads {threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(out.stdout, clean.stdout, "--threads {threads}");
        // 2 retries per file x 3 files, counted in the metrics block.
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(
            stderr.contains("format.reader.retries=6"),
            "--threads {threads}: {stderr}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exhausted_retries_are_a_hard_error_without_degrade() {
    let (dir, paths) = text_corpus("exhaust");
    // fail(9) outlasts the 4-attempt retry policy.
    let mut args = vec!["-q", QUERY, "--faults", "io.read~in1=fail(9)"];
    args.extend(paths_as_strs(&paths));
    let out = query(&args);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("in1.cali"), "{stderr}");
    assert!(stderr.contains("injected fault"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn degrade_drops_the_failed_shard_deterministically() {
    let (dir, paths) = text_corpus("degrade");
    // Reference: the corpus minus the file the fault will take out.
    let survivors: Vec<&PathBuf> = paths
        .iter()
        .filter(|p| !p.to_string_lossy().contains("in1"))
        .collect();
    let reference = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .args(["-q", QUERY])
        .args(&survivors)
        .output()
        .unwrap();
    assert_eq!(reference.status.code(), Some(0));

    let mut outputs = Vec::new();
    for threads in ["1", "2", "4"] {
        let mut args = vec![
            "-q",
            QUERY,
            "--threads",
            threads,
            "--degrade",
            "--faults",
            "io.read~in1=fail(9)",
        ];
        args.extend(paths_as_strs(&paths));
        let out = query(&args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "--threads {threads}: degraded run must exit 2: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8(out.stderr.clone()).unwrap();
        assert!(stderr.contains("dropped shard"), "--threads {threads}: {stderr}");
        assert!(
            stderr.contains("partial result: 1 input file(s) dropped after retries"),
            "--threads {threads}: {stderr}"
        );
        // The degraded result equals an aggregation over the survivors.
        assert_eq!(out.stdout, reference.stdout, "--threads {threads}");
        outputs.push(out);
    }
    // Byte-identical stdout AND stderr across thread counts.
    assert_eq!(outputs[0].stdout, outputs[1].stdout);
    assert_eq!(outputs[0].stdout, outputs[2].stdout);
    assert_eq!(outputs[0].stderr, outputs[1].stderr);
    assert_eq!(outputs[0].stderr, outputs[2].stderr);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn degraded_merge_failures_keep_stats_thread_invariant() {
    let (dir, paths) = text_corpus("merge");
    let mut stats_blocks = Vec::new();
    for threads in ["1", "2", "4"] {
        let mut args = vec![
            "-q",
            QUERY,
            "--threads",
            threads,
            "--degrade",
            "--stats",
            "--faults",
            "shard.merge~in2=fail(1)",
        ];
        args.extend(paths_as_strs(&paths));
        let out = query(&args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "--threads {threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(
            stderr.contains("query.shards_failed=1"),
            "--threads {threads}: {stderr}"
        );
        // The whole deterministic metrics block must agree, not just
        // the new counter.
        let block: Vec<&str> = stderr
            .lines()
            .filter(|l| l.contains('=') && !l.starts_with("cali-query"))
            .collect();
        stats_blocks.push(block.join("\n"));
    }
    assert_eq!(stats_blocks[0], stats_blocks[1], "--threads 1 vs 2");
    assert_eq!(stats_blocks[0], stats_blocks[2], "--threads 1 vs 4");
    std::fs::remove_dir_all(&dir).ok();
}

/// Sum of the `count` column of a rendered table.
fn count_column_total(stdout: &[u8]) -> u64 {
    String::from_utf8_lossy(stdout)
        .lines()
        .skip(1) // header
        .filter_map(|l| l.split_whitespace().nth(1))
        .filter_map(|v| v.parse::<u64>().ok())
        .sum()
}

#[test]
fn v2_block_faults_lose_whole_blocks_and_report_exact_counts() {
    let (dir, _paths) = text_corpus("v2block");
    // One v2 file, 36 records in blocks of 8 (8+8+8+8+4).
    let merged = tiny_dataset(0, 36);
    let total = merged.len() as u64;
    let bytes = caliper_format::to_binary_v2_with(
        &merged,
        &caliper_format::V2WriteOptions {
            block_records: 8,
            footer: true,
        },
    );
    let v2 = dir.join("all.calb2");
    std::fs::write(&v2, &bytes).unwrap();

    let q = "AGGREGATE count GROUP BY kernel ORDER BY kernel";
    let mut first: Option<Output> = None;
    for threads in ["1", "2", "4"] {
        let out = query(&[
            "-q",
            q,
            "--threads",
            threads,
            "--lenient",
            "--faults",
            "v2.block=err(0.5,42)",
            v2.to_str().unwrap(),
        ]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "--threads {threads}: lenient block loss must exit 2: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8(out.stderr.clone()).unwrap();
        assert!(!stderr.contains("panicked"), "{stderr}");

        // Exact accounting: the per-file report's decoded-record count
        // equals what the aggregation saw, and decoded + lost == total
        // where the loss is whole blocks only.
        let decoded = count_column_total(&out.stdout);
        assert!(
            stderr.contains(&format!("{decoded} records decoded")),
            "--threads {threads}: report disagrees with the result: {stderr}"
        );
        let lost = total - decoded;
        assert!(lost > 0, "seed 42 must drop at least one block");
        assert!(
            lost.is_multiple_of(8) || lost % 8 == 4,
            "--threads {threads}: partial-block loss ({lost} records): {stderr}"
        );

        match &first {
            None => first = Some(out),
            Some(f) => {
                assert_eq!(f.stdout, out.stdout, "--threads {threads} diverged");
                assert_eq!(f.stderr, out.stderr, "--threads {threads} stderr diverged");
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mutated_files_never_panic_in_any_format() {
    let (dir, paths) = text_corpus("fuzz");
    // The same records in all three on-disk formats.
    let ds = tiny_dataset(0, 12);
    let v1 = dir.join("fuzz.calb");
    caliper_format::binary::write_file(&ds, &v1).unwrap();
    let v2 = dir.join("fuzz.calb2");
    std::fs::write(&v2, caliper_format::to_binary_v2(&ds)).unwrap();
    let originals = [paths[0].clone(), v1, v2];

    for original in &originals {
        for mode in ["bitflip", "truncate", "garbage-block"] {
            for seed in 0..5u64 {
                let victim = dir.join(format!("victim-{mode}-{seed}"));
                std::fs::copy(original, &victim).unwrap();
                let out = pack(&[
                    "--mutate",
                    mode,
                    "--seed",
                    &seed.to_string(),
                    victim.to_str().unwrap(),
                ]);
                assert_eq!(out.status.code(), Some(0), "mutate {mode} seed {seed}");

                let ctx = format!("{} {mode} seed {seed}", original.display());
                // Both strict and lenient+degrade must survive the
                // damage: any exit code in {0,1,2}, never a panic.
                for extra in [&[][..], &["--lenient", "--degrade"][..]] {
                    let mut args = vec!["-q", QUERY, "--threads", "2"];
                    args.extend_from_slice(extra);
                    args.push(victim.to_str().unwrap());
                    let out = query(&args);
                    let stderr = String::from_utf8(out.stderr).unwrap();
                    assert!(!stderr.contains("panicked"), "{ctx}: {stderr}");
                    assert!(
                        matches!(out.status.code(), Some(0..=2)),
                        "{ctx}: exit {:?}: {stderr}",
                        out.status.code()
                    );
                    // Survival is deterministic: a second identical run
                    // reproduces the outcome byte for byte.
                    let mut args2 = vec!["-q", QUERY, "--threads", "2"];
                    args2.extend_from_slice(extra);
                    args2.push(victim.to_str().unwrap());
                    let again = query(&args2);
                    assert_eq!(out.status.code(), again.status.code(), "{ctx}");
                    assert_eq!(out.stdout, again.stdout, "{ctx}");
                }
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mutator_is_a_pure_function_of_path_seed_and_mode() {
    let (dir, paths) = text_corpus("mutdet");
    let original = std::fs::read(&paths[0]).unwrap();
    let victim = dir.join("victim.cali");

    let mutate = |seed: &str| -> Vec<u8> {
        std::fs::write(&victim, &original).unwrap();
        let out = pack(&["--mutate", "bitflip", "--seed", seed, victim.to_str().unwrap()]);
        assert_eq!(out.status.code(), Some(0));
        std::fs::read(&victim).unwrap()
    };
    let a = mutate("7");
    let b = mutate("7");
    let c = mutate("8");
    assert_eq!(a, b, "same (path, seed, mode) must damage identically");
    assert_ne!(a, original, "bitflip must change the file");
    assert_ne!(a, c, "a different seed must damage differently");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn max_errors_exact_boundary_is_a_flagged_partial_success() {
    let (dir, mut paths) = text_corpus("budget");
    // A text file cut mid-way through its first context record: the
    // valid prefix holds zero data records and exactly ONE parse error.
    let text = caliper_format::cali::to_bytes(&tiny_dataset(3, 12));
    let text = String::from_utf8(text).unwrap();
    let cut = text.find("__rec=ctx").expect("has a ctx record") + 4;
    let torn = dir.join("torn.cali");
    std::fs::write(&torn, &text.as_bytes()[..cut]).unwrap();
    paths.push(torn);

    // Landing exactly on the cap: partial success, loud boundary note.
    let mut args = vec!["-q", QUERY, "--max-errors", "1"];
    args.extend(paths_as_strs(&paths));
    let out = query(&args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "exact budget hit must exit 2: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("error budget exhausted (1 of 1 allowed); one more error would abort (exit 1)"),
        "{stderr}"
    );
    assert!(stderr.contains("torn.cali"), "{stderr}");

    // One error over the cap (--max-errors 0): hard abort, no note.
    let mut args = vec!["-q", QUERY, "--max-errors", "0"];
    args.extend(paths_as_strs(&paths));
    let out = query(&args);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        !String::from_utf8(out.stderr).unwrap().contains("budget exhausted"),
        "an aborted run must not claim a survived budget"
    );

    // Budget to spare: still partial (exit 2) but no boundary note.
    let mut args = vec!["-q", QUERY, "--max-errors", "5"];
    args.extend(paths_as_strs(&paths));
    let out = query(&args);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        !String::from_utf8(out.stderr).unwrap().contains("budget exhausted"),
        "under-budget runs must not warn"
    );

    // Clean corpus under a cap: exit 0, silent.
    let clean: Vec<&str> = paths_as_strs(&paths[..3]);
    let mut args = vec!["-q", QUERY, "--max-errors", "1"];
    args.extend(clean);
    let out = query(&args);
    assert_eq!(out.status.code(), Some(0));
    assert!(out.stderr.is_empty(), "{}", String::from_utf8_lossy(&out.stderr));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mpi_caliquery_scripted_kill_yields_a_covered_partial_result() {
    let (dir, paths) = text_corpus("mpikill");
    let q = "AGGREGATE count GROUP BY kernel ORDER BY kernel";
    // --np 2, round-robin: rank 0 reads in0+in2, rank 1 reads in1.
    let rank0_files = [paths[0].to_str().unwrap(), paths[2].to_str().unwrap()];
    let reference = query(&["-q", q, rank0_files[0], rank0_files[1]]);
    assert_eq!(reference.status.code(), Some(0));

    let out = Command::new(env!("CARGO_BIN_EXE_mpi-caliquery"))
        .args(["--np", "2", "-q", q, "--faults", "mpi.kill=at(1,0)"])
        .args(&paths)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "a killed rank must yield exit 2: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("covers ranks [0]; lost ranks [1]"),
        "{stderr}"
    );
    // The partial result is exactly the surviving rank's aggregation.
    assert_eq!(out.stdout, reference.stdout);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mpi_caliquery_scripted_delay_only_slows_the_run() {
    let (dir, paths) = text_corpus("mpidelay");
    let q = "AGGREGATE count GROUP BY kernel ORDER BY kernel";
    let clean = Command::new(env!("CARGO_BIN_EXE_mpi-caliquery"))
        .args(["--np", "2", "-q", q])
        .args(&paths)
        .output()
        .unwrap();
    assert_eq!(clean.status.code(), Some(0));

    // A straggler is not a failure: same result, exit 0.
    let out = Command::new(env!("CARGO_BIN_EXE_mpi-caliquery"))
        .args(["--np", "2", "-q", q, "--faults", "mpi.delay=at(1,0,20)"])
        .args(&paths)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(out.stdout, clean.stdout);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_is_idempotent_over_a_torn_journal() {
    // Build a journal-shaped stream, tear it, and recover twice: both
    // passes must salvage the identical byte-for-byte output, and
    // re-aggregating that output is thread-count invariant.
    use caliper_data::{Properties, SnapshotRecord, Value, ValueType, NODE_NONE};
    use caliper_format::journal::SEQ_ATTR;

    let dir = std::env::temp_dir().join(format!("cali-chaos-recover-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("torn.cali");
    {
        let ds = caliper_format::Dataset::new();
        let kernel = ds.attribute("kernel", ValueType::Str, Properties::NESTED);
        let time = ds.attribute(
            "time",
            ValueType::Int,
            Properties::AS_VALUE | Properties::AGGREGATABLE,
        );
        let seq = ds.attribute(SEQ_ATTR, ValueType::UInt, Properties::AS_VALUE);
        let mut w = caliper_format::JournalWriter::create(
            &journal,
            caliper_format::FlushPolicy::default(),
        )
        .unwrap();
        for i in 0..30u64 {
            let node = ds.tree.get_child(
                NODE_NONE,
                kernel.id(),
                &Value::str(["solve", "io"][(i % 2) as usize]),
            );
            let mut rec = SnapshotRecord::new();
            rec.push_node(node);
            rec.push_imm(time.id(), Value::Int(i as i64));
            rec.push_imm(seq.id(), Value::UInt(i));
            w.append_snapshot(&ds, &rec).unwrap();
        }
    }
    let bytes = std::fs::read(&journal).unwrap();
    std::fs::write(&journal, &bytes[..bytes.len() * 3 / 4]).unwrap();

    let recover = |out_name: &str| -> (Option<i32>, Vec<u8>, Vec<u8>) {
        let out_path = dir.join(out_name);
        let out = Command::new(env!("CARGO_BIN_EXE_cali-recover"))
            .args(["-o", out_path.to_str().unwrap(), journal.to_str().unwrap()])
            .output()
            .unwrap();
        (
            out.status.code(),
            out.stderr,
            std::fs::read(&out_path).unwrap(),
        )
    };
    let (code1, stderr1, bytes1) = recover("pass1.cali");
    let (code2, stderr2, bytes2) = recover("pass2.cali");
    assert_eq!(code1, Some(2), "{}", String::from_utf8_lossy(&stderr1));
    assert_eq!(code1, code2);
    assert_eq!(stderr1, stderr2, "recovery reports must be reproducible");
    assert_eq!(bytes1, bytes2, "recovery must be idempotent");

    let q = "AGGREGATE count, sum(time) GROUP BY kernel ORDER BY kernel";
    let p1 = dir.join("pass1.cali");
    let serial = query(&["-q", q, "--threads", "1", p1.to_str().unwrap()]);
    assert_eq!(serial.status.code(), Some(0));
    for threads in ["2", "4"] {
        let sharded = query(&["-q", q, "--threads", threads, p1.to_str().unwrap()]);
        assert_eq!(serial.stdout, sharded.stdout, "--threads {threads}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
