//! Black-box tests of the `cali-race` binary and the `--analyze` /
//! `--trace` modes of `mpi-caliquery`.

use std::path::PathBuf;
use std::process::Command;

use miniapps::paradis::{self, ParaDisParams};

fn write_inputs(name: &str, ranks: usize) -> (PathBuf, Vec<PathBuf>) {
    let dir = std::env::temp_dir().join(format!("cali-race-test-{name}-{}", std::process::id()));
    let params = ParaDisParams {
        iterations: 2,
        ..Default::default()
    };
    let paths = paradis::write_files(&params, ranks, &dir).unwrap();
    (dir, paths)
}

fn cali_race(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_cali-race"))
        .args(args)
        .output()
        .expect("run cali-race");
    (
        out.status.code(),
        String::from_utf8(out.stdout).unwrap(),
        String::from_utf8(out.stderr).unwrap(),
    )
}

#[test]
fn reduce_certificate_is_clean_and_exit_0_on_both_topologies() {
    for extra in [&[][..], &["--nodes", "8"][..]] {
        let mut args = vec!["--ranks", "128", "--kills", "3"];
        args.extend_from_slice(extra);
        let (code, stdout, stderr) = cali_race(&args);
        assert_eq!(code, Some(0), "{stderr}");
        assert!(stdout.contains("cali-race certificate"), "{stdout}");
        assert!(stdout.contains("verdict: CLEAN (race-free, deadlock-free)"), "{stdout}");
        assert!(stdout.contains("ranks:    128"), "{stdout}");
    }
}

#[test]
fn certificate_is_byte_identical_across_worker_pools() {
    let base = ["--ranks", "256", "--kills", "4", "--nodes", "16", "--workers"];
    let mut outs = Vec::new();
    for workers in ["1", "2", "4"] {
        let mut args: Vec<&str> = base.to_vec();
        args.push(workers);
        let (code, stdout, stderr) = cali_race(&args);
        assert_eq!(code, Some(0), "{stderr}");
        outs.push(stdout);
    }
    assert_eq!(outs[0], outs[1], "workers 1 vs 2 diverged");
    assert_eq!(outs[0], outs[2], "workers 1 vs 4 diverged");
}

#[test]
fn thread_engine_certifies_reduce_on_both_topologies() {
    for extra in [&[][..], &["--nodes", "4"][..]] {
        let mut args = vec!["--engine", "threads", "--ranks", "24", "--kills", "2"];
        args.extend_from_slice(extra);
        let (code, stdout, stderr) = cali_race(&args);
        assert_eq!(code, Some(0), "{stderr}");
        assert!(stdout.contains("verdict: CLEAN (race-free, deadlock-free)"), "{stdout}");
    }
}

#[test]
fn wildcard_race_exits_2_with_m001() {
    let (code, stdout, _) = cali_race(&["--program", "wildcard-race", "--ranks", "6"]);
    assert_eq!(code, Some(2));
    assert!(stdout.contains("error[M001]"), "{stdout}");
    assert!(stdout.contains("verdict:"), "{stdout}");
}

#[test]
fn deadlock_exits_2_and_names_the_cycle() {
    let (code, stdout, _) = cali_race(&["--program", "deadlock", "--ranks", "4"]);
    assert_eq!(code, Some(2));
    assert!(stdout.contains("error[M002]"), "{stdout}");
    assert!(stdout.contains("0 -> 1 -> 2 -> 3 -> 0"), "{stdout}");
}

#[test]
fn straggler_warns_and_deny_warnings_exits_1() {
    let (code, stdout, _) = cali_race(&["--program", "straggler", "--ranks", "2"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("warning[N001]"), "{stdout}");

    let (code, _, _) = cali_race(&["--program", "straggler", "--ranks", "2", "--deny-warnings"]);
    assert_eq!(code, Some(1));
}

#[test]
fn trace_dump_is_aggregatable_by_cali_query() {
    let dir = std::env::temp_dir().join(format!("cali-race-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("hb.cali");
    let (code, _, stderr) = cali_race(&["--ranks", "16", "--trace", trace.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{stderr}");

    let out = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("-q")
        .arg("AGGREGATE count() GROUP BY hb.event ORDER BY hb.event")
        .arg(&trace)
        .output()
        .expect("run cali-query");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    for event in ["start", "send", "match", "done"] {
        assert!(stdout.contains(event), "missing {event} rows in:\n{stdout}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mpi_caliquery_analyze_certifies_the_query_run() {
    let (dir, paths) = write_inputs("analyze", 4);
    let out = Command::new(env!("CARGO_BIN_EXE_mpi-caliquery"))
        .args(["--np", "8", "--engine", "event", "--analyze"])
        .args(&paths)
        .output()
        .expect("run mpi-caliquery");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("happens-before analysis: 8 ranks"), "{stderr}");
    assert!(stderr.contains("verdict: CLEAN (race-free, deadlock-free)"), "{stderr}");
    // The query result itself still lands on stdout.
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("kernel"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mpi_caliquery_trace_dump_round_trips() {
    let (dir, paths) = write_inputs("trace", 2);
    let trace = dir.join("hb.cali");
    let out = Command::new(env!("CARGO_BIN_EXE_mpi-caliquery"))
        .args(["--np", "4", "--engine", "event", "--trace", trace.to_str().unwrap()])
        .args(&paths)
        .output()
        .expect("run mpi-caliquery");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("-q")
        .arg("AGGREGATE count(), max(hb.clock) GROUP BY mpisim.rank ORDER BY mpisim.rank")
        .arg(&trace)
        .output()
        .expect("run cali-query");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let rows = String::from_utf8(out.stdout).unwrap();
    // One row per rank, 4 ranks.
    assert_eq!(rows.lines().count(), 5, "{rows}");
    std::fs::remove_dir_all(&dir).ok();
}
