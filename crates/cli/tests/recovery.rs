//! Black-box tests of the `cali-recover` binary: torn-journal salvage,
//! tail deduplication, exit codes, and `--threads`-independent
//! aggregation over recovered data.

use std::path::PathBuf;
use std::process::Command;

use caliper_runtime::{Caliper, Clock, Config};

/// Write a journal by running an event-traced workload with journaling
/// enabled; returns the journal path.
fn write_journal(name: &str, regions: usize) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "cali-recover-test-{name}-{}.cali",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let config = Config::event_trace()
        .set("journal.enable", "true")
        .set("journal.path", &path.display().to_string());
    let caliper = Caliper::try_with_clock(config, Clock::virtual_clock()).unwrap();
    caliper.set_global("experiment", "recovery-test");
    let function = caliper.region_attribute("function");
    let mut scope = caliper.make_thread_scope();
    for i in 0..regions {
        scope.begin(&function, if i % 2 == 0 { "solve" } else { "io" });
        scope.advance_time(1_000);
        scope.end(&function).unwrap();
    }
    scope.flush();
    caliper.take_dataset();
    path
}

fn recover(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cali-recover"))
        .args(args)
        .output()
        .expect("run cali-recover")
}

fn query(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .args(args)
        .output()
        .expect("run cali-query")
}

#[test]
fn clean_journal_recovers_completely_with_exit_0() {
    let journal = write_journal("clean", 10);
    let out = recover(&[
        "-q",
        "AGGREGATE count GROUP BY function ORDER BY function",
        journal.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("salvaged 20 snapshots"), "{stderr}");
    assert!(stderr.contains("0 corrupt lines skipped"), "{stderr}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("solve"), "{stdout}");
    assert!(stdout.contains("io"), "{stdout}");
    std::fs::remove_file(&journal).ok();
}

#[test]
fn torn_journal_salvages_prefix_and_threads_agree() {
    let journal = write_journal("torn", 40);
    // Tear the journal mid-line, as a kill would.
    let bytes = std::fs::read(&journal).unwrap();
    std::fs::write(&journal, &bytes[..bytes.len() * 2 / 3]).unwrap();

    let recovered = journal.with_extension("recovered.cali");
    let out = recover(&[
        "-o",
        recovered.to_str().unwrap(),
        journal.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "torn journal must exit 2: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("salvaged"), "{stderr}");

    // Aggregating the salvaged data is --threads independent.
    let q = "AGGREGATE count, sum(time.duration) GROUP BY function ORDER BY function";
    let mut outputs = Vec::new();
    for threads in ["1", "2", "4"] {
        let out = query(&["-q", q, "--threads", threads, recovered.to_str().unwrap()]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "--threads {threads}: recovered file must read cleanly: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        outputs.push(out.stdout);
    }
    assert_eq!(outputs[0], outputs[1], "--threads 1 vs 2");
    assert_eq!(outputs[0], outputs[2], "--threads 1 vs 4");
    std::fs::remove_file(&journal).ok();
    std::fs::remove_file(&recovered).ok();
}

#[test]
fn duplicated_tail_is_deduplicated() {
    let journal = write_journal("dup", 6);
    // Simulate a resume that double-writes the tail: append the last
    // three complete data lines again.
    let text = std::fs::read_to_string(&journal).unwrap();
    let tail: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("__rec=ctx"))
        .rev()
        .take(3)
        .collect();
    let mut dup = text.clone();
    for line in tail.iter().rev() {
        dup.push_str(line);
        dup.push('\n');
    }
    std::fs::write(&journal, dup).unwrap();

    let out = recover(&[journal.to_str().unwrap()]);
    // Duplicates are dropped, not lost data: exit stays 0.
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("salvaged 12 snapshots"), "{stderr}");
    assert!(
        stderr.contains("3 duplicate tail records dropped"),
        "{stderr}"
    );
    std::fs::remove_file(&journal).ok();
}

#[test]
fn missing_journal_is_a_hard_error() {
    let out = recover(&["/nonexistent/journal.cali"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("journal.cali"), "{stderr}");
}

#[test]
fn usage_errors_do_not_backtrace() {
    for args in [&["--max-errors", "many", "x.cali"][..], &[][..]] {
        let out = recover(args);
        assert_eq!(out.status.code(), Some(1));
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("usage:"), "{stderr}");
        assert!(!stderr.contains("panicked"), "{stderr}");
    }
}
