//! Golden-file conformance suite for the semantic analyzer's CLI
//! surface: `cali-query --check` and `cali-lint`.
//!
//! Each fixture under `tests/golden/checks/*.calql` is checked against
//! the checked-in `.cali` inputs; the diagnostic output is compared
//! byte-for-byte against `tests/golden/expected/check/<name>.txt` and
//! must be identical across runs and across `--threads` values (the
//! check never aggregates, so thread count cannot matter).
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p cali-cli --test check_golden
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

/// One fixture: the query file's stem, and the exit code `--check`
/// must produce (1 = errors, 2 = warnings only, 0 = clean).
struct Case {
    name: &'static str,
    exit: i32,
}

/// Every diagnostic family has at least one fixture here; `clean`
/// pins the zero-diagnostics path.
const CASES: &[Case] = &[
    Case { name: "unknown-attr", exit: 1 },          // E002 + suggestion
    Case { name: "sum-over-string", exit: 1 },       // E003
    Case { name: "bad-histogram-bounds", exit: 1 },  // E004
    Case { name: "percentile-range", exit: 1 },      // E004
    Case { name: "duplicate-alias", exit: 1 },       // E005
    Case { name: "order-by-unknown", exit: 1 },      // E006
    Case { name: "contradictory-where", exit: 1 },   // E007
    Case { name: "bad-format-option", exit: 1 },     // E008
    Case { name: "unused-let", exit: 2 },            // W001
    Case { name: "self-referential-let", exit: 2 },  // W002
    Case { name: "where-type-mismatch", exit: 2 },   // W004
    Case { name: "pushdown-ineligible", exit: 2 },   // W007
    Case { name: "clean", exit: 0 },
];

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn update_golden() -> bool {
    std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1")
}

fn input_files() -> Vec<PathBuf> {
    let paths: Vec<PathBuf> = (0..2)
        .map(|rank| golden_dir().join(format!("data/rank{rank}.cali")))
        .collect();
    for path in &paths {
        assert!(
            path.exists(),
            "golden input {} missing — run UPDATE_GOLDEN=1 cargo test -p cali-cli --test cli_golden",
            path.display()
        );
    }
    paths
}

/// The query text of a fixture, the same way `cali-lint` reads it
/// (comment and blank lines dropped, remaining lines joined).
fn fixture_query(name: &str) -> String {
    let path = golden_dir().join(format!("checks/{name}.calql"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect::<Vec<_>>()
        .join(" ")
}

fn check_golden(name: &str, actual: &str) {
    let expected_path = golden_dir().join(format!("expected/check/{name}.txt"));
    if update_golden() {
        std::fs::create_dir_all(expected_path.parent().unwrap()).unwrap();
        std::fs::write(&expected_path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&expected_path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}) — run UPDATE_GOLDEN=1 cargo test -p cali-cli --test check_golden",
            expected_path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "check output for '{name}' diverged from the golden file \
         (UPDATE_GOLDEN=1 regenerates expectations after intentional changes)"
    );
}

fn run_check(query: &str, extra: &[&str], inputs: &[PathBuf]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("-q")
        .arg(query)
        .arg("--check")
        .args(extra)
        .args(inputs)
        .output()
        .expect("run cali-query --check")
}

#[test]
fn check_diagnostics_are_stable() {
    let inputs = input_files();
    for case in CASES {
        let query = fixture_query(case.name);
        let out = run_check(&query, &[], &inputs);
        assert_eq!(
            out.status.code(),
            Some(case.exit),
            "case '{}': {}",
            case.name,
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout.clone()).expect("utf-8 output");
        if case.exit == 0 {
            assert!(stdout.is_empty(), "clean query still printed: {stdout}");
        }
        check_golden(case.name, &stdout);

        // Determinism: byte-identical on a second run and under a
        // different --threads (which --check must ignore).
        let again = run_check(&query, &[], &inputs);
        assert_eq!(out.stdout, again.stdout, "case '{}' not deterministic", case.name);
        let threaded = run_check(&query, &["--threads", "4"], &inputs);
        assert_eq!(
            out.stdout, threaded.stdout,
            "case '{}' varies with --threads",
            case.name
        );
        assert_eq!(threaded.status.code(), Some(case.exit));
    }
}

/// `--check=json`: every line of output must parse with the repo's own
/// JSON reader; the rendering is pinned as a golden file.
#[test]
fn check_json_is_valid_and_stable() {
    let inputs = input_files();
    let query = fixture_query("unknown-attr");
    let out = run_check(&query, &["--check=json"], &inputs);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    for line in stdout.lines() {
        caliper_format::parse_json(line).unwrap_or_else(|e| panic!("bad JSON '{line}': {e}"));
    }
    check_golden("unknown-attr-json", &stdout);
}

/// A clean check must not perturb the query result: running the same
/// clean query for real produces output identical to a `--no-lint` run.
#[test]
fn clean_check_leaves_results_unchanged() {
    let inputs = input_files();
    let query = fixture_query("clean");
    let run = |extra: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_cali-query"))
            .arg("-q")
            .arg(&query)
            .args(extra)
            .args(&inputs)
            .output()
            .expect("run cali-query");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        out
    };
    let linted = run(&[]);
    let unlinted = run(&["--no-lint"]);
    assert_eq!(linted.stdout, unlinted.stdout);
    // The advisory lint found nothing, so stderr is silent too.
    assert!(linted.stderr.is_empty(), "{}", String::from_utf8_lossy(&linted.stderr));
}

/// `cali-lint` over the fixture files themselves: file-path sources,
/// one combined run, deterministic aggregate exit code.
#[test]
fn cali_lint_checks_query_files() {
    input_files(); // ensure the data fixtures exist
    let out = Command::new(env!("CARGO_BIN_EXE_cali-lint"))
        .current_dir(golden_dir())
        .args(["-i", "data/rank0.cali", "-i", "data/rank1.cali"])
        .args(CASES.iter().map(|c| format!("checks/{}.calql", c.name)))
        .output()
        .expect("run cali-lint");
    // Errors dominate warnings across the whole batch.
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    // Sources are the file paths, so findings are attributable.
    assert!(stdout.contains("checks/unknown-attr.calql:1:"), "{stdout}");
    assert!(!stdout.contains("checks/clean.calql"), "{stdout}");
    check_golden("cali-lint-batch", &stdout);
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("in 13 queries"), "{stderr}");
}

/// The advisory lint on a normal run prints findings on stderr but
/// never changes the exit code or the result.
#[test]
fn advisory_lint_warns_without_failing() {
    let inputs = input_files();
    let query = fixture_query("where-type-mismatch");
    let out = Command::new(env!("CARGO_BIN_EXE_cali-query"))
        .arg("-q")
        .arg(&query)
        .args(&inputs)
        .output()
        .expect("run cali-query");
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("W004"), "{stderr}");
}
