//! # caliper-faults — seeded, deterministic failpoint registry
//!
//! The pipeline has several independent failure-handling mechanisms
//! (lenient read policies, journal torn-tail recovery, resilient tree
//! reduction in mpisim). This crate provides the one thing they share:
//! a way to *provoke* failures in the real code paths, deterministically,
//! so the failure behavior can be tested by injection instead of by
//! hand-built corrupt fixtures.
//!
//! ## Model
//!
//! Production code declares named **sites** (`io.read`, `journal.fsync`,
//! `v2.block`, `shard.merge`, …) by calling [`trigger`] or [`mutate`] at
//! the point where a fault could occur. A **spec string** — from the
//! `CALI_FAULTS` environment variable or a `--faults` CLI flag via
//! [`install_spec`] — arms some of those sites with actions:
//!
//! ```text
//! CALI_FAULTS="io.read=err(0.5,42);journal.fsync=fail(2);v2.block=corrupt(bitflip,7)"
//! ```
//!
//! When no spec is installed every site is a near-zero-cost no-op (one
//! relaxed atomic load).
//!
//! ## Determinism
//!
//! Every decision is a pure function of `(site, key, attempt, seed)`:
//!
//! * `key` is a **stable identifier** of the item at risk — a hashed
//!   file path, a block ordinal, a file index — never a global hit
//!   counter, so decisions do not depend on thread interleaving.
//! * `attempt` is a per-`(site, key)` counter, so retry loops observe a
//!   reproducible sequence of transient errors.
//! * `seed` comes from the spec.
//!
//! A run with a fixed spec therefore injects *the same* faults into *the
//! same* items regardless of `--threads`, which is what lets the chaos
//! suite assert byte-identical degraded output across shard counts.
//!
//! ## Spec grammar
//!
//! ```text
//! spec    := rule (';' rule)*
//! rule    := site ['~' filter] '=' action
//! action  := 'err(' p [',' seed] ')'        -- transient error w.p. p per attempt
//!          | 'fail(' n ')'                  -- first n attempts per key fail
//!          | 'delay(' ms ')'                -- sleep before proceeding
//!          | 'corrupt(' mode [',' seed] ')' -- mutate bytes: bitflip|truncate|garbage
//!          | 'at(' rank ',' op [',' ms] ')' -- mpisim: kill (2-arg) / delay (3-arg)
//! ```
//!
//! The optional `~filter` restricts a rule to triggers whose *label*
//! (usually a file path) contains the filter substring — this is what
//! keeps a globally-installed spec from bleeding into unrelated files
//! in the same process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Well-known failpoint site names.
///
/// Sites are plain strings — this module just centralizes the spelling
/// so call sites, specs, and docs cannot drift apart.
pub mod sites {
    /// Opening / initial read of an input file (format reader).
    pub const IO_OPEN: &str = "io.open";
    /// Post-read access to an input file's bytes (format reader).
    pub const IO_READ: &str = "io.read";
    /// Buffered journal write-out (`JournalWriter::flush`).
    pub const JOURNAL_WRITE: &str = "journal.write";
    /// Journal durability barrier (`File::sync_data`).
    pub const JOURNAL_FSYNC: &str = "journal.fsync";
    /// Runtime journal sink append (snapshot serialization).
    pub const RUNTIME_APPEND: &str = "runtime.append";
    /// CALB v2 per-block decode (key = block ordinal).
    pub const V2_BLOCK: &str = "v2.block";
    /// Parallel/serial query shard merge (key = file index).
    pub const SHARD_MERGE: &str = "shard.merge";
    /// mpisim rank kill (`at(rank, op)` rules).
    pub const MPI_KILL: &str = "mpi.kill";
    /// mpisim rank delay (`at(rank, op, ms)` rules).
    pub const MPI_DELAY: &str = "mpi.delay";
    /// `cali-served` connection accept (key = connection ordinal).
    pub const SERVED_ACCEPT: &str = "served.accept";
    /// `cali-served` ingest-worker batch processing (key = hashed
    /// stream name mixed with the batch ordinal). A `TransientErr`
    /// here kills the worker mid-batch — the supervisor restart path.
    pub const SERVED_INGEST: &str = "served.ingest";
    /// `cali-served` query evaluation (key = hashed query text).
    /// `delay(ms)` rules simulate slow queries against the deadline.
    pub const SERVED_QUERY: &str = "served.query";
}

/// What an armed [`trigger`] asks the call site to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injected {
    /// Fail this attempt with a *transient* error (callers surface it as
    /// `io::ErrorKind::Interrupted`, which the retry helpers recognize).
    TransientErr,
}

/// Byte-mutation modes for `corrupt(...)` rules and `cali-pack --mutate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptMode {
    /// Flip one seeded bit.
    Bitflip,
    /// Truncate to a seeded prefix length.
    Truncate,
    /// Overwrite a seeded run of bytes with seeded garbage.
    GarbageBlock,
}

impl CorruptMode {
    /// Parse a mode name (`bitflip` / `truncate` / `garbage` /
    /// `garbage-block`).
    pub fn parse(s: &str) -> Result<CorruptMode, SpecError> {
        match s {
            "bitflip" => Ok(CorruptMode::Bitflip),
            "truncate" => Ok(CorruptMode::Truncate),
            "garbage" | "garbage-block" => Ok(CorruptMode::GarbageBlock),
            other => Err(SpecError::new(format!("unknown corrupt mode `{other}`"))),
        }
    }
}

/// One armed action, parsed from a spec rule.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Fail each attempt independently with probability `p`.
    Err {
        /// Per-attempt failure probability in `[0, 1]`.
        p: f64,
        /// Decision seed.
        seed: u64,
    },
    /// Fail the first `n` attempts per key, then succeed.
    Fail {
        /// Number of leading attempts to fail.
        n: u32,
    },
    /// Sleep for `ms` milliseconds on every trigger.
    Delay {
        /// Sleep duration in milliseconds.
        ms: u64,
    },
    /// Deterministically mutate bytes passed to [`FaultSet::mutate`].
    Corrupt {
        /// Mutation mode.
        mode: CorruptMode,
        /// Mutation seed.
        seed: u64,
    },
    /// mpisim schedule entry: rank × op-counter, optional delay.
    At {
        /// Simulated rank the rule applies to.
        rank: usize,
        /// 0-based communication-op ordinal on that rank (the axis
        /// mpisim's `FaultPlan` schedules in).
        op: u64,
        /// Delay in milliseconds; `None` means kill.
        delay_ms: Option<u64>,
    },
}

/// A parsed spec rule: a site, an optional label filter, and an action.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Site name the rule arms.
    pub site: String,
    /// Optional substring filter matched against the trigger label.
    pub filter: Option<String>,
    /// The armed action.
    pub action: FaultAction,
}

/// Spec-string parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    msg: String,
}

impl SpecError {
    fn new(msg: impl Into<String>) -> SpecError {
        SpecError { msg: msg.into() }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid fault spec: {}", self.msg)
    }
}

impl std::error::Error for SpecError {}

/// A set of armed fault rules with per-`(site, key)` attempt state.
///
/// Most code uses the process-global set (installed from `CALI_FAULTS`
/// or [`install_spec`]) through the free functions [`trigger`] /
/// [`mutate`]; tests can build private sets with [`FaultSet::parse`]
/// and call the inherent methods.
#[derive(Debug)]
pub struct FaultSet {
    rules: Vec<FaultRule>,
    /// attempt counters keyed by mix(site, key) — independent of global
    /// hit order, so decisions are stable across thread interleavings.
    attempts: Mutex<HashMap<u64, u32>>,
}

impl FaultSet {
    /// Parse a spec string into a fault set.
    pub fn parse(spec: &str) -> Result<FaultSet, SpecError> {
        let mut rules = Vec::new();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            rules.push(parse_rule(part)?);
        }
        Ok(FaultSet {
            rules,
            attempts: Mutex::new(HashMap::new()),
        })
    }

    /// True if no rules are armed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The parsed rules (used by mpisim to lift `at(...)` schedules).
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Fire the failpoint `site` for the item identified by `key`
    /// (a stable identifier — path hash, block ordinal, file index).
    /// `label` is a human-readable identity (usually the file path)
    /// matched against `~filter` rules.
    ///
    /// Returns `Some(Injected::TransientErr)` if this attempt should
    /// fail; `delay(ms)` rules sleep internally and return `None`.
    pub fn trigger(&self, site: &str, key: u64, label: &str) -> Option<Injected> {
        let mut hit = false;
        let mut attempt = 0;
        let mut out = None;
        for rule in &self.rules {
            if rule.site != site || !filter_matches(rule, label) {
                continue;
            }
            match rule.action {
                FaultAction::Delay { ms } => {
                    std::thread::sleep(Duration::from_millis(ms));
                }
                FaultAction::Err { p, seed } => {
                    if !hit {
                        attempt = self.next_attempt(site, key);
                        hit = true;
                    }
                    if hash01(site, key, attempt, seed) < p {
                        out = Some(Injected::TransientErr);
                    }
                }
                FaultAction::Fail { n } => {
                    if !hit {
                        attempt = self.next_attempt(site, key);
                        hit = true;
                    }
                    if attempt < n {
                        out = Some(Injected::TransientErr);
                    }
                }
                FaultAction::Corrupt { .. } | FaultAction::At { .. } => {}
            }
        }
        out
    }

    /// Apply any `corrupt(...)` rules armed for `site` to `bytes`.
    /// Returns true if the bytes were mutated. The mutation is a pure
    /// function of `(site, key, seed)` and the input length.
    pub fn mutate(&self, site: &str, key: u64, label: &str, bytes: &mut Vec<u8>) -> bool {
        let mut mutated = false;
        for rule in &self.rules {
            if rule.site != site || !filter_matches(rule, label) {
                continue;
            }
            if let FaultAction::Corrupt { mode, seed } = rule.action {
                mutated |= corrupt_bytes(mode, mix(&[site_hash(site), key, seed]), bytes);
            }
        }
        mutated
    }

    fn next_attempt(&self, site: &str, key: u64) -> u32 {
        let slot = mix(&[site_hash(site), key]);
        let mut map = self
            .attempts
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let n = map.entry(slot).or_insert(0);
        let attempt = *n;
        *n += 1;
        attempt
    }
}

fn filter_matches(rule: &FaultRule, label: &str) -> bool {
    match &rule.filter {
        Some(f) => label.contains(f.as_str()),
        None => true,
    }
}

/// Deterministically corrupt `bytes` with `mode`, seeded by `seed`.
/// Shared by `corrupt(...)` rules and `cali-pack --mutate`. Returns
/// true if the buffer changed.
pub fn corrupt_bytes(mode: CorruptMode, seed: u64, bytes: &mut Vec<u8>) -> bool {
    if bytes.is_empty() {
        return false;
    }
    let len = bytes.len() as u64;
    match mode {
        CorruptMode::Bitflip => {
            let off = (mix(&[seed, 1]) % len) as usize;
            let bit = (mix(&[seed, 2]) % 8) as u8;
            bytes[off] ^= 1 << bit;
            true
        }
        CorruptMode::Truncate => {
            let new_len = (mix(&[seed, 3]) % len) as usize;
            bytes.truncate(new_len);
            true
        }
        CorruptMode::GarbageBlock => {
            let off = (mix(&[seed, 4]) % len) as usize;
            let run = ((mix(&[seed, 5]) % 64) + 1) as usize;
            let end = (off + run).min(bytes.len());
            for (i, b) in bytes[off..end].iter_mut().enumerate() {
                *b = (mix(&[seed, 6, i as u64]) & 0xff) as u8;
            }
            true
        }
    }
}

// ---------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------

fn parse_rule(part: &str) -> Result<FaultRule, SpecError> {
    let (lhs, rhs) = part
        .split_once('=')
        .ok_or_else(|| SpecError::new(format!("rule `{part}` is missing `=`")))?;
    let (site, filter) = match lhs.split_once('~') {
        Some((s, f)) => (s.trim(), Some(f.trim().to_string())),
        None => (lhs.trim(), None),
    };
    if site.is_empty() {
        return Err(SpecError::new(format!("rule `{part}` has an empty site")));
    }
    let action = parse_action(rhs.trim())?;
    Ok(FaultRule {
        site: site.to_string(),
        filter,
        action,
    })
}

fn parse_action(s: &str) -> Result<FaultAction, SpecError> {
    let (name, args) = match s.split_once('(') {
        Some((n, rest)) => {
            let rest = rest
                .strip_suffix(')')
                .ok_or_else(|| SpecError::new(format!("action `{s}` is missing `)`")))?;
            (n.trim(), rest)
        }
        None => return Err(SpecError::new(format!("action `{s}` has no `(args)`"))),
    };
    let args: Vec<&str> = if args.trim().is_empty() {
        Vec::new()
    } else {
        args.split(',').map(str::trim).collect()
    };
    let want = |lo: usize, hi: usize| -> Result<(), SpecError> {
        if args.len() < lo || args.len() > hi {
            return Err(SpecError::new(format!(
                "action `{name}` takes {lo}..={hi} args, got {}",
                args.len()
            )));
        }
        Ok(())
    };
    match name {
        "err" => {
            want(1, 2)?;
            let p: f64 = args[0]
                .parse()
                .map_err(|_| SpecError::new(format!("err probability `{}`", args[0])))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(SpecError::new(format!("err probability {p} outside [0,1]")));
            }
            let seed = parse_u64_arg(args.get(1).copied().unwrap_or("0"))?;
            Ok(FaultAction::Err { p, seed })
        }
        "fail" => {
            want(1, 1)?;
            Ok(FaultAction::Fail {
                n: args[0]
                    .parse()
                    .map_err(|_| SpecError::new(format!("fail count `{}`", args[0])))?,
            })
        }
        "delay" => {
            want(1, 1)?;
            Ok(FaultAction::Delay {
                ms: parse_u64_arg(args[0])?,
            })
        }
        "corrupt" => {
            want(1, 2)?;
            Ok(FaultAction::Corrupt {
                mode: CorruptMode::parse(args[0])?,
                seed: parse_u64_arg(args.get(1).copied().unwrap_or("0"))?,
            })
        }
        "at" => {
            want(2, 3)?;
            let rank: usize = args[0]
                .parse()
                .map_err(|_| SpecError::new(format!("at rank `{}`", args[0])))?;
            let op = parse_u64_arg(args[1])?;
            let delay_ms = match args.get(2) {
                Some(ms) => Some(parse_u64_arg(ms)?),
                None => None,
            };
            Ok(FaultAction::At { rank, op, delay_ms })
        }
        other => Err(SpecError::new(format!("unknown action `{other}`"))),
    }
}

fn parse_u64_arg(s: &str) -> Result<u64, SpecError> {
    s.parse()
        .map_err(|_| SpecError::new(format!("expected integer, got `{s}`")))
}

// ---------------------------------------------------------------------
// Global registry
// ---------------------------------------------------------------------

/// Environment variable holding the process-wide fault spec.
pub const ENV_VAR: &str = "CALI_FAULTS";

static GLOBAL: OnceLock<Option<FaultSet>> = OnceLock::new();
/// 0 = uninitialized, 1 = initialized-and-disarmed, 2 = armed.
static STATE: AtomicU8 = AtomicU8::new(0);

fn init_global() -> &'static Option<FaultSet> {
    let set = GLOBAL.get_or_init(|| match std::env::var(ENV_VAR) {
        Ok(spec) if !spec.trim().is_empty() => match FaultSet::parse(&spec) {
            Ok(set) if !set.is_empty() => Some(set),
            Ok(_) => None,
            Err(e) => {
                // A typo'd spec must not silently disarm a chaos run.
                eprintln!("caliper-faults: {ENV_VAR}: {e}");
                std::process::exit(1);
            }
        },
        _ => None,
    });
    STATE.store(if set.is_some() { 2 } else { 1 }, Ordering::Release);
    set
}

/// The process-global fault set, if one is armed.
///
/// First call initializes from [`ENV_VAR`]; later calls are a single
/// relaxed atomic load when no faults are armed.
pub fn global() -> Option<&'static FaultSet> {
    match STATE.load(Ordering::Relaxed) {
        1 => None,
        2 => GLOBAL.get().and_then(|s| s.as_ref()),
        _ => init_global().as_ref(),
    }
}

/// Install `spec` as the process-global fault set (the `--faults` CLI
/// path). Must run before the first [`trigger`]; once the registry has
/// initialized (from the environment or an earlier install) the spec is
/// frozen and a conflicting install is an error.
pub fn install_spec(spec: &str) -> Result<(), SpecError> {
    let parsed = FaultSet::parse(spec)?;
    let armed = !parsed.is_empty();
    let stored = GLOBAL.get_or_init(|| if armed { Some(parsed) } else { None });
    STATE.store(if stored.is_some() { 2 } else { 1 }, Ordering::Release);
    Ok(())
}

/// Fire a failpoint on the global set. No-op (one atomic load) when no
/// faults are armed. See [`FaultSet::trigger`].
#[inline]
pub fn trigger(site: &str, key: u64, label: &str) -> Option<Injected> {
    match global() {
        None => None,
        Some(set) => set.trigger(site, key, label),
    }
}

/// Apply global `corrupt(...)` rules for `site` to `bytes`. No-op when
/// no faults are armed. See [`FaultSet::mutate`].
#[inline]
pub fn mutate(site: &str, key: u64, label: &str, bytes: &mut Vec<u8>) -> bool {
    match global() {
        None => false,
        Some(set) => set.mutate(site, key, label, bytes),
    }
}

// ---------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------

/// FNV-1a over a string — the stable key for path-identified items.
pub fn stable_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn site_hash(site: &str) -> u64 {
    stable_hash(site)
}

/// splitmix64 finalizer — mixes a word list into one well-distributed
/// word. Deterministic across platforms and runs.
fn mix(words: &[u64]) -> u64 {
    let mut h: u64 = 0x9e3779b97f4a7c15;
    for w in words {
        h = h.wrapping_add(*w).wrapping_mul(0xbf58476d1ce4e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d049bb133111eb);
        h ^= h >> 31;
    }
    h
}

fn hash01(site: &str, key: u64, attempt: u32, seed: u64) -> f64 {
    let h = mix(&[site_hash(site), key, u64::from(attempt), seed]);
    // 53 high bits → uniform in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_multi_rule_spec() {
        let set = FaultSet::parse(
            "io.read=err(0.5,42); journal.fsync=fail(2);v2.block=corrupt(bitflip,7);\
             shard.merge~rank1=delay(3);mpi.kill=at(3,5);mpi.delay=at(1,2,40)",
        )
        .unwrap();
        assert_eq!(set.rules().len(), 6);
        assert_eq!(
            set.rules()[0].action,
            FaultAction::Err { p: 0.5, seed: 42 }
        );
        assert_eq!(set.rules()[1].action, FaultAction::Fail { n: 2 });
        assert_eq!(
            set.rules()[2].action,
            FaultAction::Corrupt {
                mode: CorruptMode::Bitflip,
                seed: 7
            }
        );
        assert_eq!(set.rules()[3].filter.as_deref(), Some("rank1"));
        assert_eq!(
            set.rules()[4].action,
            FaultAction::At {
                rank: 3,
                op: 5,
                delay_ms: None
            }
        );
        assert_eq!(
            set.rules()[5].action,
            FaultAction::At {
                rank: 1,
                op: 2,
                delay_ms: Some(40)
            }
        );
    }

    #[test]
    fn parse_errors() {
        assert!(FaultSet::parse("io.read").is_err());
        assert!(FaultSet::parse("io.read=boom(1)").is_err());
        assert!(FaultSet::parse("io.read=err(2.0)").is_err());
        assert!(FaultSet::parse("io.read=err(").is_err());
        assert!(FaultSet::parse("=err(0.1)").is_err());
        assert!(FaultSet::parse("io.read=fail(x)").is_err());
        assert!(FaultSet::parse("").unwrap().is_empty());
        assert!(FaultSet::parse(" ; ").unwrap().is_empty());
    }

    #[test]
    fn fail_n_fails_first_n_attempts_per_key() {
        let set = FaultSet::parse("io.read=fail(2)").unwrap();
        assert_eq!(set.trigger("io.read", 7, "a"), Some(Injected::TransientErr));
        assert_eq!(set.trigger("io.read", 7, "a"), Some(Injected::TransientErr));
        assert_eq!(set.trigger("io.read", 7, "a"), None);
        // Independent counter per key.
        assert_eq!(set.trigger("io.read", 8, "b"), Some(Injected::TransientErr));
        // Other sites are unarmed.
        assert_eq!(set.trigger("io.open", 7, "a"), None);
    }

    #[test]
    fn err_p_is_deterministic_and_key_local() {
        let a = FaultSet::parse("io.read=err(0.5,42)").unwrap();
        let b = FaultSet::parse("io.read=err(0.5,42)").unwrap();
        let seq_a: Vec<bool> = (0..64).map(|k| a.trigger("io.read", k, "x").is_some()).collect();
        let seq_b: Vec<bool> = (0..64).map(|k| b.trigger("io.read", k, "x").is_some()).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|&f| f));
        assert!(seq_a.iter().any(|&f| !f));
        // Interleaving order must not matter: trigger keys in reverse on
        // a fresh set and expect the same per-key first-attempt outcome.
        let c = FaultSet::parse("io.read=err(0.5,42)").unwrap();
        let mut seq_c: Vec<bool> = (0..64)
            .rev()
            .map(|k| c.trigger("io.read", k, "x").is_some())
            .collect();
        seq_c.reverse();
        assert_eq!(seq_a, seq_c);
    }

    #[test]
    fn err_probability_extremes() {
        let never = FaultSet::parse("io.read=err(0)").unwrap();
        let always = FaultSet::parse("io.read=err(1)").unwrap();
        for k in 0..32 {
            assert_eq!(never.trigger("io.read", k, "x"), None);
            assert_eq!(
                always.trigger("io.read", k, "x"),
                Some(Injected::TransientErr)
            );
        }
    }

    #[test]
    fn filter_restricts_by_label() {
        let set = FaultSet::parse("io.read~rank1=fail(1)").unwrap();
        assert_eq!(set.trigger("io.read", 1, "/tmp/rank0.cali"), None);
        assert_eq!(
            set.trigger("io.read", 2, "/tmp/rank1.cali"),
            Some(Injected::TransientErr)
        );
    }

    #[test]
    fn corrupt_is_deterministic() {
        let set = FaultSet::parse("v2.block=corrupt(bitflip,7)").unwrap();
        let orig: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let mut a = orig.clone();
        let mut b = orig.clone();
        assert!(set.mutate("v2.block", 3, "f", &mut a));
        assert!(set.mutate("v2.block", 3, "f", &mut b));
        assert_eq!(a, b);
        assert_ne!(a, orig);
        // Exactly one bit differs.
        let flipped: u32 = a
            .iter()
            .zip(&orig)
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert_eq!(flipped, 1);
        // Different key → (almost surely) different offset; still 1 bit.
        let mut c = orig.clone();
        assert!(set.mutate("v2.block", 4, "f", &mut c));
        let flipped_c: u32 = c
            .iter()
            .zip(&orig)
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert_eq!(flipped_c, 1);
    }

    #[test]
    fn corrupt_modes_cover_truncate_and_garbage() {
        let mut bytes: Vec<u8> = vec![0xAA; 300];
        assert!(corrupt_bytes(CorruptMode::Truncate, 9, &mut bytes));
        assert!(bytes.len() < 300);
        let mut bytes2: Vec<u8> = vec![0xAA; 300];
        assert!(corrupt_bytes(CorruptMode::GarbageBlock, 9, &mut bytes2));
        assert_eq!(bytes2.len(), 300);
        assert!(bytes2.iter().any(|&b| b != 0xAA));
        let mut empty: Vec<u8> = Vec::new();
        assert!(!corrupt_bytes(CorruptMode::Bitflip, 9, &mut empty));
    }

    #[test]
    fn unarmed_set_is_silent() {
        let set = FaultSet::parse("").unwrap();
        assert_eq!(set.trigger("io.read", 1, "x"), None);
        let mut b = vec![1, 2, 3];
        assert!(!set.mutate("io.read", 1, "x", &mut b));
        assert_eq!(b, vec![1, 2, 3]);
    }
}
