//! # mpisim — a simulated MPI substrate
//!
//! The paper evaluates cross-process aggregation with an MPI-based
//! parallel query application on LLNL's Quartz cluster. This crate is
//! the laptop-scale substitute (see DESIGN.md §3): ranks are OS threads,
//! links are crossbeam channels, and the collectives — most importantly
//! the binomial-tree reduction of §IV-C — are implemented verbatim on
//! top of point-to-point messages.
//!
//! Beyond the fault-free collectives, the crate models *failure*: a
//! [`FaultPlan`] scripts rank deaths and delays deterministically
//! (by communication-op index), [`run_with_faults`] executes a world
//! under such a plan, and [`reduce_tree_resilient`] is a reduction that
//! routes around dead subtrees, reporting exactly which ranks'
//! contributions the result covers ([`ReduceCoverage`]).
//!
//! ```
//! use mpisim::{run, reduce_tree};
//!
//! let results = run(8, |mut comm| {
//!     let local = (comm.rank() + 1) as u64;
//!     reduce_tree(&mut comm, local, |a, b| a + b).unwrap()
//! });
//! assert_eq!(results[0], Some(36)); // only the root holds the total
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collectives;
pub mod comm;
pub mod fault;
pub mod world;

pub use collectives::{
    allreduce, barrier, broadcast, gather, reduce_tree, reduce_tree_resilient, reduce_tree_timed,
    reduce_tree_timeout, ReduceCoverage, ResilienceOptions,
};
pub use comm::{Comm, CommError, Tag};
pub use fault::FaultPlan;
pub use world::{run, run_with_faults};
