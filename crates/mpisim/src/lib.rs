//! # mpisim — a simulated MPI substrate
//!
//! The paper evaluates cross-process aggregation with an MPI-based
//! parallel query application on LLNL's Quartz cluster. This crate is
//! the laptop-scale substitute (see DESIGN.md §3), with two execution
//! engines behind the [`Executor`] trait:
//!
//! * the **thread engine** ([`ThreadEngine`], and the [`run`] /
//!   [`run_with_faults`] closures API): ranks are OS threads, links are
//!   crossbeam channels, timeouts cost wall-clock time. Faithful, but
//!   capped at a few hundred ranks.
//! * the **event engine** ([`EventEngine`]): ranks are resumable state
//!   machines ([`RankTask`]) advanced by a deterministic virtual-clock
//!   event loop (see DESIGN.md §12), so timeouts and scripted delays
//!   cost zero wall-clock time and 16 000-rank reductions finish in
//!   seconds.
//!
//! The collectives — most importantly the binomial-tree reduction of
//! the paper's §IV-C — are implemented on top of point-to-point
//! messages; the fault-tolerant reduction exists exactly once, as the
//! [`ReduceTask`] state machine both engines drive.
//!
//! Beyond the fault-free collectives, the crate models *failure*: a
//! [`FaultPlan`] scripts rank deaths and delays deterministically
//! (by communication-op index), [`run_with_faults`] executes a world
//! under such a plan, and [`reduce_tree_resilient`] is a reduction that
//! routes around dead subtrees, reporting exactly which ranks'
//! contributions the result covers ([`ReduceCoverage`]).
//!
//! ```
//! use mpisim::{run, reduce_tree};
//!
//! let results = run(8, |mut comm| {
//!     let local = (comm.rank() + 1) as u64;
//!     reduce_tree(&mut comm, local, |a, b| a + b).unwrap()
//! });
//! assert_eq!(results[0], Some(36)); // only the root holds the total
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collectives;
pub mod comm;
pub mod fault;
pub mod hb;
pub mod sched;
pub mod task;
pub mod trace;
pub mod world;

pub use collectives::{
    allreduce, barrier, broadcast, gather, reduce_tree, reduce_tree_resilient, reduce_tree_timed,
    reduce_tree_timeout, ReduceCoverage, ResilienceOptions,
};
pub use comm::{Comm, CommError, Tag};
pub use fault::FaultPlan;
pub use hb::{analyze, Analysis, Diagnostic, Severity as HbSeverity, VClock};
pub use sched::{EventEngine, SchedConfig, SchedError, SchedStats};
pub use task::{Action, Executor, Msg, Payload, RankTask, ReduceTask, TaskCtx, Topology, Wake};
pub use trace::{HbTrace, TraceEvent, TraceKind, TracedRun};
pub use world::{drive_task, run, run_with_faults, ThreadEngine};
