//! # mpisim — a simulated MPI substrate
//!
//! The paper evaluates cross-process aggregation with an MPI-based
//! parallel query application on LLNL's Quartz cluster. This crate is
//! the laptop-scale substitute (see DESIGN.md §3): ranks are OS threads,
//! links are crossbeam channels, and the collectives — most importantly
//! the binomial-tree reduction of §IV-C — are implemented verbatim on
//! top of point-to-point messages.
//!
//! ```
//! use mpisim::{run, reduce_tree};
//!
//! let results = run(8, |mut comm| {
//!     let local = (comm.rank() + 1) as u64;
//!     reduce_tree(&mut comm, local, |a, b| a + b).unwrap()
//! });
//! assert_eq!(results[0], Some(36)); // only the root holds the total
//! ```

#![warn(missing_docs)]

pub mod collectives;
pub mod comm;
pub mod world;

pub use collectives::{allreduce, barrier, broadcast, gather, reduce_tree, reduce_tree_timed};
pub use comm::{Comm, CommError, Tag};
pub use world::run;
