//! Collective operations built on point-to-point messages.
//!
//! The centerpiece is [`reduce_tree`], the binomial-tree reduction the
//! paper's parallel query application uses (§IV-C): "'leaf' processes
//! send the local aggregation results to their parent, where the
//! partial results are aggregated again. The scheme continues on the
//! next level of the tree until we reach the root process." The timed
//! variant [`reduce_tree_timed`] additionally reports the wall-clock
//! time each rank spent per tree level, which the Figure 4 harness
//! reduces to critical-path times.

use std::time::{Duration, Instant};

use crate::comm::{Comm, CommError, Tag};

const TAG_BASE: Tag = 0xC0DE;
/// Base tag of the resilient reduction; each tree level uses its own
/// tag (`TAG_RESIL + level`) so a straggler's late message from one
/// level can never be mistaken for traffic of a later one.
pub(crate) const TAG_RESIL: Tag = 0xC0DE + 0x100;

/// Binomial-tree reduction toward rank 0. Every rank passes its `value`;
/// rank 0 returns `Some(combined)`, all other ranks `None`.
///
/// `merge(accumulator, incoming)` must be associative for the result to
/// be independent of the world size — the property the property-based
/// tests of `caliper-query` establish for aggregation databases.
pub fn reduce_tree<T, F>(comm: &mut Comm, value: T, mut merge: F) -> Result<Option<T>, CommError>
where
    T: Send + 'static,
    F: FnMut(T, T) -> T,
{
    let rank = comm.rank();
    let size = comm.size();
    let mut acc = value;
    let mut step = 1usize;
    while step < size {
        if rank.is_multiple_of(2 * step) {
            let partner = rank + step;
            if partner < size {
                let incoming: T = comm.recv(partner, TAG_BASE)?;
                acc = merge(acc, incoming);
            }
        } else {
            let parent = rank - step;
            comm.send(parent, TAG_BASE, acc)?;
            return Ok(None);
        }
        step *= 2;
    }
    Ok(Some(acc))
}

/// Like [`reduce_tree`], but also returns the time this rank spent in
/// each tree level (seconds), including levels where it only forwarded.
pub fn reduce_tree_timed<T, F>(
    comm: &mut Comm,
    value: T,
    mut merge: F,
) -> Result<(Option<T>, Vec<f64>), CommError>
where
    T: Send + 'static,
    F: FnMut(T, T) -> T,
{
    let rank = comm.rank();
    let size = comm.size();
    let mut acc = Some(value);
    let mut times = Vec::new();
    let mut step = 1usize;
    while step < size {
        let start = Instant::now();
        if rank.is_multiple_of(2 * step) {
            let partner = rank + step;
            if partner < size {
                let incoming: T = comm.recv(partner, TAG_BASE)?;
                let mine = acc.take().expect("non-leaf rank still holds a value");
                acc = Some(merge(mine, incoming));
            }
            times.push(start.elapsed().as_secs_f64());
        } else {
            let parent = rank - step;
            let mine = acc.take().expect("leaf rank sends once");
            comm.send(parent, TAG_BASE, mine)?;
            times.push(start.elapsed().as_secs_f64());
            return Ok((None, times));
        }
        step *= 2;
    }
    Ok((acc, times))
}

/// Like [`reduce_tree`], but every receive is bounded by `timeout`.
///
/// The deadlock-avoidance primitive: with a plain [`reduce_tree`], one
/// dead rank leaves its parent blocked forever (the parent's inbox
/// never disconnects — the parent itself keeps all senders alive). Here
/// the parent instead gets [`CommError::Timeout`] and can abort the
/// whole reduction cleanly. For degrading *gracefully* — salvaging the
/// surviving ranks' data instead of aborting — see
/// [`reduce_tree_resilient`].
pub fn reduce_tree_timeout<T, F>(
    comm: &mut Comm,
    value: T,
    mut merge: F,
    timeout: Duration,
) -> Result<Option<T>, CommError>
where
    T: Send + 'static,
    F: FnMut(T, T) -> T,
{
    let rank = comm.rank();
    let size = comm.size();
    let mut acc = value;
    let mut step = 1usize;
    while step < size {
        if rank.is_multiple_of(2 * step) {
            let partner = rank + step;
            if partner < size {
                let incoming: T = comm.recv_timeout(partner, TAG_BASE, timeout)?;
                acc = merge(acc, incoming);
            }
        } else {
            let parent = rank - step;
            comm.send(parent, TAG_BASE, acc)?;
            return Ok(None);
        }
        step *= 2;
    }
    Ok(Some(acc))
}

/// Tuning knobs for [`reduce_tree_resilient`].
///
/// `timeout` and `backoff` are *base* (tree level 0) values; the
/// reduction doubles them per level, because a partner at level *l* may
/// legitimately stall for its own full timeout budget at every level
/// below before it can forward. With doubling, the budget at level *l*
/// strictly exceeds the sum of all lower-level budgets, so cascaded
/// waits below a slow-but-alive partner never get misread as a death.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceOptions {
    /// Base wait per receive before suspecting the partner.
    pub timeout: Duration,
    /// Additional receive attempts after the first timeout. Retries
    /// exist for stragglers, not corpses: a delayed partner's message
    /// arrives during a retry, a dead partner's never does.
    pub retries: u32,
    /// Extra wait added per retry attempt (linear backoff): attempt
    /// *n* waits `timeout + n * backoff`.
    pub backoff: Duration,
}

impl Default for ResilienceOptions {
    fn default() -> ResilienceOptions {
        ResilienceOptions {
            timeout: Duration::from_millis(250),
            retries: 2,
            backoff: Duration::from_millis(100),
        }
    }
}

impl ResilienceOptions {
    /// Worst-case total wait for one level-0 partner before declaring
    /// it lost. (At level *l* the budget is this, times `2^l`.)
    pub fn total_wait(&self) -> Duration {
        let mut total = Duration::ZERO;
        for attempt in 0..=self.retries {
            total += self.timeout + self.backoff * attempt;
        }
        total
    }

    /// The options with timeout and backoff scaled for tree `level`.
    pub(crate) fn at_level(&self, level: u32) -> ResilienceOptions {
        let scale = 1u32 << level.min(20); // 2^20 × base ≫ any sane tree
        ResilienceOptions {
            timeout: self.timeout * scale,
            retries: self.retries,
            backoff: self.backoff * scale,
        }
    }
}

/// Which ranks' contributions made it into a resilient reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReduceCoverage {
    /// Ranks whose values are folded into the result, ascending.
    pub included: Vec<usize>,
    /// Ranks whose values were lost (dead, or stranded behind a dead
    /// ancestor), ascending. Complement of `included` in `0..size`.
    pub lost: Vec<usize>,
}

impl ReduceCoverage {
    /// True if every rank's contribution arrived.
    pub fn is_complete(&self) -> bool {
        self.lost.is_empty()
    }
}

/// Fault-tolerant binomial-tree reduction toward rank 0: dead subtrees
/// are routed around instead of deadlocking or aborting the survivors.
///
/// Same tree as [`reduce_tree`], with two changes:
///
/// * every internal receive is bounded ([`Comm::recv_timeout`]) and
///   retried per `opts`; a partner that stays silent is written off and
///   the reduction continues without its subtree;
/// * the payload carries, alongside the partial value, the list of
///   ranks folded into it, so the root knows *exactly* which
///   contributions the result covers — not just that "something" was
///   lost.
///
/// Rank 0 returns `Some((merged, coverage))`; all other ranks `None`.
/// When a partner dies *mid*-protocol (after receiving its children's
/// values, before forwarding), its whole subtree is lost with it — the
/// coverage report charges every rank of that subtree, which is exactly
/// the set of values the dead rank had already absorbed.
///
/// The result is deterministic in the fault pattern: merge order is the
/// tree order restricted to surviving subtrees, so for a fixed set of
/// lost ranks the merged value equals a serial reduction over
/// `coverage.included` in rank order (given associative `merge`).
///
/// The protocol itself lives in [`ReduceTask`](crate::task::ReduceTask)
/// — this function merely drives that state machine against the calling
/// rank's blocking [`Comm`], so the thread engine and the event engine
/// execute the exact same collective code.
pub fn reduce_tree_resilient<T, F>(
    comm: &mut Comm,
    value: T,
    merge: F,
    opts: &ResilienceOptions,
) -> Result<Option<(T, ReduceCoverage)>, CommError>
where
    T: Send + 'static,
    F: FnMut(T, T) -> T + Send + 'static,
{
    let task = crate::task::ReduceTask::new(
        comm.rank(),
        comm.size(),
        crate::task::Topology::Flat,
        move || value,
        merge,
        *opts,
    );
    Ok(crate::world::drive_task(comm, task))
}

/// Binomial-tree broadcast from rank 0.
pub fn broadcast<T>(comm: &mut Comm, value: Option<T>) -> Result<T, CommError>
where
    T: Clone + Send + 'static,
{
    let rank = comm.rank();
    let size = comm.size();
    // Highest power of two <= size.
    let mut top = 1usize;
    while top * 2 <= size.max(1) {
        top *= 2;
    }
    let mut acc = if rank == 0 {
        Some(value.expect("root must provide the broadcast value"))
    } else {
        None
    };
    let mut step = top;
    while step >= 1 {
        if rank.is_multiple_of(2 * step) {
            if let Some(v) = &acc {
                let partner = rank + step;
                if partner < size {
                    comm.send(partner, TAG_BASE + 1, v.clone())?;
                }
            }
        } else if rank % (2 * step) == step && acc.is_none() {
            let parent = rank - step;
            acc = Some(comm.recv(parent, TAG_BASE + 1)?);
        }
        if step == 1 {
            break;
        }
        step /= 2;
    }
    Ok(acc.expect("every rank receives the broadcast"))
}

/// Gather every rank's value at rank 0 (rank order preserved); others
/// get `None`.
pub fn gather<T>(comm: &mut Comm, value: T) -> Result<Option<Vec<T>>, CommError>
where
    T: Send + 'static,
{
    if comm.rank() == 0 {
        let size = comm.size();
        let mut out: Vec<Option<T>> = (0..size).map(|_| None).collect();
        out[0] = Some(value);
        for _ in 1..size {
            let (src, v) = comm.recv_any::<T>(TAG_BASE + 2)?;
            out[src] = Some(v);
        }
        Ok(Some(
            out.into_iter()
                .map(|v| v.expect("every rank contributes"))
                .collect(),
        ))
    } else {
        comm.send(0, TAG_BASE + 2, value)?;
        Ok(None)
    }
}

/// Reduce-then-broadcast: every rank receives the combined value.
pub fn allreduce<T, F>(comm: &mut Comm, value: T, merge: F) -> Result<T, CommError>
where
    T: Clone + Send + 'static,
    F: FnMut(T, T) -> T,
{
    let reduced = reduce_tree(comm, value, merge)?;
    broadcast(comm, reduced)
}

/// Synchronize all ranks (an allreduce over unit).
pub fn barrier(comm: &mut Comm) -> Result<(), CommError> {
    allreduce(comm, (), |(), ()| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::run;

    #[test]
    fn reduce_tree_sums() {
        for size in [1, 2, 3, 4, 5, 8, 13, 16] {
            let results = run(size, |mut comm| {
                let local = comm.rank() as u64;
                reduce_tree(&mut comm, local, |a, b| a + b).unwrap()
            });
            let expect: u64 = (0..size as u64).sum();
            assert_eq!(results[0], Some(expect), "size {size}");
            assert!(results[1..].iter().all(Option::is_none));
        }
    }

    #[test]
    fn reduce_tree_timed_levels() {
        let results = run(8, |mut comm| {
            reduce_tree_timed(&mut comm, 1u64, |a, b| a + b).unwrap()
        });
        assert_eq!(results[0].0, Some(8));
        // Root participates in all log2(8) = 3 levels.
        assert_eq!(results[0].1.len(), 3);
        // Rank 1 leaves after level 0.
        assert_eq!(results[1].1.len(), 1);
        // Rank 2 participates in level 0 (recv from 3) and leaves at level 1.
        assert_eq!(results[2].1.len(), 2);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        for size in [1, 2, 3, 5, 8, 11] {
            let results = run(size, |mut comm| {
                let value = if comm.rank() == 0 {
                    Some("payload".to_string())
                } else {
                    None
                };
                broadcast(&mut comm, value).unwrap()
            });
            assert!(results.iter().all(|r| r == "payload"), "size {size}");
        }
    }

    #[test]
    fn gather_preserves_rank_order() {
        let results = run(6, |mut comm| {
            let local = comm.rank() * 10;
            gather(&mut comm, local).unwrap()
        });
        assert_eq!(results[0], Some(vec![0, 10, 20, 30, 40, 50]));
        assert!(results[1..].iter().all(Option::is_none));
    }

    #[test]
    fn allreduce_gives_same_answer_everywhere() {
        for size in [1, 2, 3, 4, 7, 8] {
            let results = run(size, |mut comm| {
                let local = comm.rank() as u64 + 1;
                allreduce(&mut comm, local, |a, b| a.max(b)).unwrap()
            });
            assert!(
                results.iter().all(|&r| r == size as u64),
                "size {size}: {results:?}"
            );
        }
    }

    #[test]
    fn barrier_completes() {
        // All ranks must reach the barrier for any to pass.
        let results = run(5, |mut comm| {
            barrier(&mut comm).unwrap();
            true
        });
        assert_eq!(results.len(), 5);
    }

    #[test]
    fn reduce_is_deterministic_for_noncommutative_merge() {
        // Tree reduction applies merge in a fixed structure; with an
        // associative (but non-commutative) merge the result must be
        // the in-order concatenation.
        let results = run(8, |mut comm| {
            let local = comm.rank().to_string();
            reduce_tree(&mut comm, local, |a, b| a + &b).unwrap()
        });
        assert_eq!(results[0].as_deref(), Some("01234567"));
    }
}
