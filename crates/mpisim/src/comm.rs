//! Point-to-point communication between simulated ranks.
//!
//! Each rank owns one inbox (an MPMC channel); `send` deposits a tagged,
//! type-erased message into the destination's inbox, `recv` blocks until
//! a message matching `(source, tag)` arrives, buffering mismatched
//! messages — the standard MPI matching semantics, minus wildcards on
//! tags (a wildcard source is supported via [`Comm::recv_any`]).

use std::any::Any;
use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};

/// Message tag (as in MPI).
pub type Tag = u32;

pub(crate) struct Packet {
    pub src: usize,
    pub tag: Tag,
    pub payload: Box<dyn Any + Send>,
}

/// Communication error: peer disconnected (rank panicked or exited).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommError {
    /// Description of the failure.
    pub message: String,
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "communication error: {}", self.message)
    }
}

impl std::error::Error for CommError {}

/// A rank's communicator handle.
pub struct Comm {
    rank: usize,
    size: usize,
    inboxes: Arc<Vec<Sender<Packet>>>,
    inbox: Receiver<Packet>,
    /// Messages received but not yet matched.
    pending: Vec<Packet>,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        inboxes: Arc<Vec<Sender<Packet>>>,
        inbox: Receiver<Packet>,
    ) -> Comm {
        Comm {
            rank,
            size,
            inboxes,
            inbox,
            pending: Vec::new(),
        }
    }

    /// This rank's id, 0-based.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Send `value` to `dest` with `tag`. Non-blocking (buffered send).
    pub fn send<T: Send + 'static>(&self, dest: usize, tag: Tag, value: T) -> Result<(), CommError> {
        assert!(dest < self.size, "send to rank {dest} out of range");
        self.inboxes[dest]
            .send(Packet {
                src: self.rank,
                tag,
                payload: Box::new(value),
            })
            .map_err(|_| CommError {
                message: format!("rank {dest} has shut down"),
            })
    }

    fn take_pending(&mut self, src: Option<usize>, tag: Tag) -> Option<Packet> {
        let idx = self
            .pending
            .iter()
            .position(|p| p.tag == tag && src.map(|s| s == p.src).unwrap_or(true))?;
        Some(self.pending.remove(idx))
    }

    fn recv_packet(&mut self, src: Option<usize>, tag: Tag) -> Result<Packet, CommError> {
        if let Some(p) = self.take_pending(src, tag) {
            return Ok(p);
        }
        loop {
            let packet = self.inbox.recv().map_err(|_| CommError {
                message: "world has shut down".to_string(),
            })?;
            let matches = packet.tag == tag && src.map(|s| s == packet.src).unwrap_or(true);
            if matches {
                return Ok(packet);
            }
            self.pending.push(packet);
        }
    }

    /// Blocking receive of a `T` from `src` with `tag`. Panics if the
    /// matching message's payload has a different type — a type-level
    /// protocol mismatch is a bug, not a runtime condition.
    pub fn recv<T: Send + 'static>(&mut self, src: usize, tag: Tag) -> Result<T, CommError> {
        let packet = self.recv_packet(Some(src), tag)?;
        Ok(*packet
            .payload
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("type mismatch on recv(src={src}, tag={tag})")))
    }

    /// Blocking receive from any source; returns `(source, value)`.
    pub fn recv_any<T: Send + 'static>(&mut self, tag: Tag) -> Result<(usize, T), CommError> {
        let packet = self.recv_packet(None, tag)?;
        let src = packet.src;
        Ok((
            src,
            *packet
                .payload
                .downcast::<T>()
                .unwrap_or_else(|_| panic!("type mismatch on recv_any(tag={tag})")),
        ))
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Comm(rank {} of {})", self.rank, self.size)
    }
}
