//! Point-to-point communication between simulated ranks.
//!
//! Each rank owns one inbox (an MPMC channel); `send` deposits a tagged,
//! type-erased message into the destination's inbox, `recv` blocks until
//! a message matching `(source, tag)` arrives, buffering mismatched
//! messages — the standard MPI matching semantics, minus wildcards on
//! tags (a wildcard source is supported via [`Comm::recv_any`]).
//!
//! # Failure semantics
//!
//! A rank that dies (panics or is killed by a
//! [`FaultPlan`]) drops its inbox receiver while the
//! senders — shared from an `Arc` by every surviving rank — stay alive.
//! The consequences, which fault-tolerant collectives must handle, are:
//!
//! * **sends to a dead rank fail** with [`CommError::Disconnected`]
//!   (the channel sees zero receivers), *but only after the victim's
//!   thread has finished unwinding* — a send that races the death may
//!   still succeed and the message is simply lost;
//! * **receives from a dead rank hang forever** under plain
//!   [`recv`](Comm::recv): nothing will ever arrive, yet the channel
//!   never disconnects because the receiving rank itself keeps every
//!   sender alive. Bounded waiting therefore requires
//!   [`recv_timeout`](Comm::recv_timeout), which turns the silent peer
//!   into a [`CommError::Timeout`].

use std::cell::Cell;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use crate::fault::{FaultPlan, RankKilled};
use crate::task::{Msg, Payload};
use crate::trace::{SharedTrace, TraceKind};

/// Message tag (as in MPI).
pub type Tag = u32;

/// What travels over the channels: the same [`Msg`] the task layer
/// sees, so [`drive_task`](crate::world::drive_task) forwards payloads
/// without re-boxing.
pub(crate) type Packet = Msg;

/// A point-to-point communication failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The peer (or the whole world) has shut down: its channel
    /// endpoint is gone, so the operation can never complete.
    Disconnected {
        /// What was being attempted, e.g. `"send to rank 3"`.
        context: String,
    },
    /// No matching message arrived before the deadline. The peer may be
    /// dead, delayed, or deadlocked — from the caller's side these are
    /// indistinguishable, which is precisely why bounded waits exist.
    Timeout {
        /// What was being attempted, e.g. `"recv from rank 1, tag 5"`.
        context: String,
        /// How long the caller waited.
        after: Duration,
    },
}

impl CommError {
    pub(crate) fn disconnected(context: impl Into<String>) -> CommError {
        CommError::Disconnected {
            context: context.into(),
        }
    }

    pub(crate) fn timeout(context: impl Into<String>, after: Duration) -> CommError {
        CommError::Timeout {
            context: context.into(),
            after,
        }
    }

    /// True for [`CommError::Timeout`].
    pub fn is_timeout(&self) -> bool {
        matches!(self, CommError::Timeout { .. })
    }

    /// True for [`CommError::Disconnected`].
    pub fn is_disconnected(&self) -> bool {
        matches!(self, CommError::Disconnected { .. })
    }
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Disconnected { context } => {
                write!(f, "communication error: {context}: peer has shut down")
            }
            CommError::Timeout { context, after } => {
                write!(
                    f,
                    "communication error: {context}: timed out after {:.3}s",
                    after.as_secs_f64()
                )
            }
        }
    }
}

impl std::error::Error for CommError {}

/// A rank's communicator handle.
pub struct Comm {
    rank: usize,
    size: usize,
    inboxes: Arc<Vec<Sender<Packet>>>,
    inbox: Receiver<Packet>,
    /// Messages received but not yet matched.
    pending: Vec<Packet>,
    /// Faults scripted for this world, if any.
    faults: Option<Arc<FaultPlan>>,
    /// Happens-before trace collector, when the run is traced. `None`
    /// (the common case) costs one branch per communication op.
    trace: Option<Arc<SharedTrace>>,
    /// Number of communication operations this rank has issued; the
    /// fault plan's notion of time.
    ops: Cell<u64>,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        inboxes: Arc<Vec<Sender<Packet>>>,
        inbox: Receiver<Packet>,
        faults: Option<Arc<FaultPlan>>,
    ) -> Comm {
        Comm {
            rank,
            size,
            inboxes,
            inbox,
            pending: Vec::new(),
            faults,
            trace: None,
            ops: Cell::new(0),
        }
    }

    /// Arm the happens-before trace hook (world launcher only).
    pub(crate) fn set_trace(&mut self, trace: Arc<SharedTrace>) {
        self.trace = Some(trace);
    }

    /// Record `kind` into the trace, when armed.
    fn rec(&self, kind: TraceKind) {
        if let Some(trace) = &self.trace {
            trace.record(self.rank, kind);
        }
    }

    /// This rank's id, 0-based.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of communication operations this rank has issued so far —
    /// the time axis a [`FaultPlan`] is scripted in.
    pub fn ops(&self) -> u64 {
        self.ops.get()
    }

    /// Consults the fault plan before a communication operation: sleeps
    /// through any scripted delay, then unwinds if this is the op the
    /// rank is scripted to die at.
    fn fault_point(&self) {
        let op = self.ops.get();
        self.ops.set(op + 1);
        let Some(plan) = &self.faults else { return };
        if let Some(d) = plan.delay_at(self.rank, op) {
            std::thread::sleep(d);
        }
        if plan.kill_at(self.rank, op) {
            // The rank's clock freezes here: this is its last event.
            self.rec(TraceKind::Killed);
            std::panic::panic_any(RankKilled);
        }
    }

    /// Send `value` to `dest` with `tag`. Non-blocking (buffered send).
    /// Fails with [`CommError::Disconnected`] if `dest` has shut down.
    pub fn send<T: Send + 'static>(&self, dest: usize, tag: Tag, value: T) -> Result<(), CommError> {
        self.send_payload(dest, tag, Box::new(value))
    }

    /// Type-erased send — the form the task layer
    /// ([`TaskCtx`](crate::task::TaskCtx)) uses, so a payload boxed once
    /// by a state machine travels to the channel without re-boxing.
    /// Counts as one fault-plan op, like any other communication.
    pub fn send_payload(&self, dest: usize, tag: Tag, payload: Payload) -> Result<(), CommError> {
        assert!(dest < self.size, "send to rank {dest} out of range");
        self.fault_point();
        let sent = self.inboxes[dest]
            .send(Msg {
                src: self.rank,
                tag,
                payload,
            })
            .map_err(|_| CommError::disconnected(format!("send to rank {dest}")));
        self.rec(TraceKind::Send {
            dest,
            tag,
            ok: sent.is_ok(),
        });
        if sent.is_ok() {
            caliper_data::metrics::global()
                .counter_volatile("mpisim.comm.messages")
                .inc();
        }
        sent
    }

    /// Type-erased receive: blocks (bounded by `timeout` when given)
    /// until a message matching `(src, tag)` arrives and returns it
    /// whole. The task layer's receive path; typed wrappers below
    /// downcast on top of it.
    pub fn recv_msg(
        &mut self,
        src: Option<usize>,
        tag: Tag,
        timeout: Option<Duration>,
    ) -> Result<Msg, CommError> {
        self.recv_packet(src, tag, timeout)
    }

    fn take_pending(&mut self, src: Option<usize>, tag: Tag) -> Option<Packet> {
        let idx = self
            .pending
            .iter()
            .position(|p| p.tag == tag && src.map(|s| s == p.src).unwrap_or(true))?;
        Some(self.pending.remove(idx))
    }

    fn recv_context(src: Option<usize>, tag: Tag) -> String {
        match src {
            Some(s) => format!("recv from rank {s}, tag {tag}"),
            None => format!("recv from any rank, tag {tag}"),
        }
    }

    fn recv_packet(
        &mut self,
        src: Option<usize>,
        tag: Tag,
        timeout: Option<Duration>,
    ) -> Result<Packet, CommError> {
        self.fault_point();
        if let Some(p) = self.take_pending(src, tag) {
            self.rec(TraceKind::Match {
                src: p.src,
                tag: p.tag,
                wildcard: src.is_none(),
            });
            return Ok(p);
        }
        self.rec(TraceKind::WaitPost {
            src,
            tag,
            timeout_ns: timeout.map(|t| t.as_nanos().min(u128::from(u64::MAX)) as u64),
        });
        let deadline = timeout.map(|t| (Instant::now() + t, t));
        loop {
            let packet = match deadline {
                None => self
                    .inbox
                    .recv()
                    .map_err(|_| CommError::disconnected(Self::recv_context(src, tag)))?,
                Some((deadline, total)) => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    match self.inbox.recv_timeout(remaining) {
                        Ok(p) => p,
                        Err(RecvTimeoutError::Timeout) => {
                            caliper_data::metrics::global()
                                .counter_volatile("mpisim.comm.timeouts")
                                .inc();
                            self.rec(TraceKind::Timeout { src, tag });
                            return Err(CommError::timeout(Self::recv_context(src, tag), total));
                        }
                        Err(RecvTimeoutError::Disconnected) => {
                            return Err(CommError::disconnected(Self::recv_context(src, tag)));
                        }
                    }
                }
            };
            let matches = packet.tag == tag && src.map(|s| s == packet.src).unwrap_or(true);
            if matches {
                self.rec(TraceKind::Match {
                    src: packet.src,
                    tag: packet.tag,
                    wildcard: src.is_none(),
                });
                return Ok(packet);
            }
            self.pending.push(packet);
        }
    }

    fn downcast<T: Send + 'static>(packet: Packet, context: &str) -> T {
        *packet
            .payload
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("type mismatch on {context}"))
    }

    /// Blocking receive of a `T` from `src` with `tag`. Panics if the
    /// matching message's payload has a different type — a type-level
    /// protocol mismatch is a bug, not a runtime condition.
    pub fn recv<T: Send + 'static>(&mut self, src: usize, tag: Tag) -> Result<T, CommError> {
        let packet = self.recv_packet(Some(src), tag, None)?;
        Ok(Self::downcast(packet, &Self::recv_context(Some(src), tag)))
    }

    /// Like [`recv`](Comm::recv), but gives up with
    /// [`CommError::Timeout`] once `timeout` elapses without a matching
    /// message. The building block of fault-tolerant collectives: a dead
    /// peer never disconnects this rank's inbox (every surviving rank
    /// keeps all senders alive), it just goes silent.
    pub fn recv_timeout<T: Send + 'static>(
        &mut self,
        src: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<T, CommError> {
        let packet = self.recv_packet(Some(src), tag, Some(timeout))?;
        Ok(Self::downcast(packet, &Self::recv_context(Some(src), tag)))
    }

    /// Blocking receive from any source; returns `(source, value)`.
    pub fn recv_any<T: Send + 'static>(&mut self, tag: Tag) -> Result<(usize, T), CommError> {
        let packet = self.recv_packet(None, tag, None)?;
        let src = packet.src;
        Ok((src, Self::downcast(packet, &Self::recv_context(None, tag))))
    }

    /// Bounded-wait variant of [`recv_any`](Comm::recv_any).
    pub fn recv_any_timeout<T: Send + 'static>(
        &mut self,
        tag: Tag,
        timeout: Duration,
    ) -> Result<(usize, T), CommError> {
        let packet = self.recv_packet(None, tag, Some(timeout))?;
        let src = packet.src;
        Ok((src, Self::downcast(packet, &Self::recv_context(None, tag))))
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Comm(rank {} of {})", self.rank, self.size)
    }
}
