//! Deterministic fault injection for the simulated world.
//!
//! A [`FaultPlan`] describes, ahead of a run, which ranks misbehave and
//! when. "When" is measured in **communication operations**: every
//! `send`/`recv`/`recv_any` (and their timeout variants) a rank issues
//! counts as one step, starting from 0. Pinning faults to the op counter
//! rather than wall-clock time makes failure tests reproducible: killing
//! rank 2 at op 1 kills it *after* it received its child's contribution
//! and *before* it forwarded the merged value, every single run.
//!
//! Faults are injected *at* the fault point, before the operation takes
//! effect:
//!
//! * a **kill** unwinds the rank's thread (its inbox is dropped, so
//!   later sends to it fail with
//!   [`CommError::Disconnected`](crate::CommError::Disconnected) and
//!   pending receives from it time out);
//! * a **delay** sleeps the rank before the operation proceeds,
//!   modelling a straggler rather than a crash.
//!
//! Plans are executed by [`crate::world::run_with_faults`]; the plain
//! [`crate::world::run`] never injects anything.

use std::time::Duration;

/// Scripted faults for one simulated world run.
///
/// Build with the fluent constructors and hand to
/// [`run_with_faults`](crate::world::run_with_faults):
///
/// ```
/// use std::time::Duration;
/// use mpisim::FaultPlan;
///
/// let plan = FaultPlan::new()
///     .kill(3, 0)                                  // rank 3 dies at its first comm op
///     .delay(1, 0, Duration::from_millis(20));     // rank 1 stalls before its first op
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    kills: Vec<(usize, u64)>,
    delays: Vec<(usize, u64, Duration)>,
}

impl FaultPlan {
    /// An empty plan: no faults.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Kill `rank` when it reaches communication operation `at_op`
    /// (0-based). The rank's thread unwinds at that point; its return
    /// value in the run's output is `None`.
    pub fn kill(mut self, rank: usize, at_op: u64) -> FaultPlan {
        self.kills.push((rank, at_op));
        self
    }

    /// Delay `rank` by `by` immediately before its communication
    /// operation `at_op` (0-based). The rank survives; it is merely a
    /// straggler.
    pub fn delay(mut self, rank: usize, at_op: u64, by: Duration) -> FaultPlan {
        self.delays.push((rank, at_op, by));
        self
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.delays.is_empty()
    }

    /// True if the plan kills any rank anywhere.
    pub fn has_kills(&self) -> bool {
        !self.kills.is_empty()
    }

    pub(crate) fn kill_at(&self, rank: usize, op: u64) -> bool {
        self.kills.iter().any(|&(r, o)| r == rank && o == op)
    }

    pub(crate) fn delay_at(&self, rank: usize, op: u64) -> Option<Duration> {
        self.delays
            .iter()
            .filter(|&&(r, o, _)| r == rank && o == op)
            .map(|&(_, _, d)| d)
            .reduce(|a, b| a + b)
    }
}

/// Panic payload used to unwind a rank scheduled for death. The world
/// launcher downcasts for it to tell an injected kill (expected, maps to
/// `None`) from a genuine bug in rank code (propagated).
pub(crate) struct RankKilled;
