//! Deterministic fault injection for the simulated world.
//!
//! A [`FaultPlan`] describes, ahead of a run, which ranks misbehave and
//! when. "When" is measured in **communication operations**: every
//! `send`/`recv`/`recv_any` (and their timeout variants) a rank issues
//! counts as one step, starting from 0. Pinning faults to the op counter
//! rather than wall-clock time makes failure tests reproducible: killing
//! rank 2 at op 1 kills it *after* it received its child's contribution
//! and *before* it forwarded the merged value, every single run.
//!
//! Faults are injected *at* the fault point, before the operation takes
//! effect:
//!
//! * a **kill** unwinds the rank's thread (its inbox is dropped, so
//!   later sends to it fail with
//!   [`CommError::Disconnected`](crate::CommError::Disconnected) and
//!   pending receives from it time out);
//! * a **delay** sleeps the rank before the operation proceeds,
//!   modelling a straggler rather than a crash.
//!
//! Plans are executed by [`crate::world::run_with_faults`]; the plain
//! [`crate::world::run`] never injects anything.
//!
//! Plans share the workspace fault-spec grammar (`caliper-faults`):
//! [`FaultPlan::from_spec`] lifts `mpi.kill=at(rank,op)` and
//! `mpi.delay=at(rank,op,ms)` rules from a spec string, and
//! [`FaultPlan::from_global`] from the process-wide `CALI_FAULTS`
//! registry, so one `CALI_FAULTS` setting can script I/O faults and
//! simulated rank deaths together.

use std::time::Duration;

use caliper_faults::{sites, FaultAction, FaultRule, SpecError};

/// Scripted faults for one simulated world run.
///
/// Build with the fluent constructors and hand to
/// [`run_with_faults`](crate::world::run_with_faults):
///
/// ```
/// use std::time::Duration;
/// use mpisim::FaultPlan;
///
/// let plan = FaultPlan::new()
///     .kill(3, 0)                                  // rank 3 dies at its first comm op
///     .delay(1, 0, Duration::from_millis(20));     // rank 1 stalls before its first op
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    kills: Vec<(usize, u64)>,
    delays: Vec<(usize, u64, Duration)>,
}

impl FaultPlan {
    /// An empty plan: no faults.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Build a plan from a `caliper-faults` spec string, lifting the
    /// `at(...)` schedules armed on the [`sites::MPI_KILL`] and
    /// [`sites::MPI_DELAY`] sites:
    ///
    /// ```
    /// use mpisim::FaultPlan;
    ///
    /// let plan = FaultPlan::from_spec("mpi.kill=at(2,0);mpi.delay=at(1,0,20)").unwrap();
    /// assert!(plan.has_kills());
    /// ```
    ///
    /// Rules on other sites are ignored here (they arm I/O failpoints
    /// elsewhere in the workspace). A kill rule's optional third
    /// argument is ignored; a delay rule without one delays by 0 ms.
    pub fn from_spec(spec: &str) -> Result<FaultPlan, SpecError> {
        let set = caliper_faults::FaultSet::parse(spec)?;
        Ok(FaultPlan::from_rules(set.rules()))
    }

    /// Build a plan from the process-global `CALI_FAULTS` registry.
    /// Empty when no spec is installed or it schedules no MPI faults.
    pub fn from_global() -> FaultPlan {
        match caliper_faults::global() {
            Some(set) => FaultPlan::from_rules(set.rules()),
            None => FaultPlan::new(),
        }
    }

    fn from_rules(rules: &[FaultRule]) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for rule in rules {
            let FaultAction::At { rank, op, delay_ms } = rule.action else {
                continue;
            };
            match rule.site.as_str() {
                sites::MPI_KILL => plan = plan.kill(rank, op),
                sites::MPI_DELAY => {
                    plan = plan.delay(rank, op, Duration::from_millis(delay_ms.unwrap_or(0)));
                }
                _ => {}
            }
        }
        plan
    }

    /// Kill `rank` when it reaches communication operation `at_op`
    /// (0-based). The rank's thread unwinds at that point; its return
    /// value in the run's output is `None`.
    pub fn kill(mut self, rank: usize, at_op: u64) -> FaultPlan {
        self.kills.push((rank, at_op));
        self
    }

    /// Delay `rank` by `by` immediately before its communication
    /// operation `at_op` (0-based). The rank survives; it is merely a
    /// straggler.
    pub fn delay(mut self, rank: usize, at_op: u64, by: Duration) -> FaultPlan {
        self.delays.push((rank, at_op, by));
        self
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.delays.is_empty()
    }

    /// True if the plan kills any rank anywhere.
    pub fn has_kills(&self) -> bool {
        !self.kills.is_empty()
    }

    /// A reproducible plan of `kills` distinct victims for a world of
    /// `size` ranks, derived from `seed` with a splitmix64 stream.
    /// Victims are drawn from `1..size` (never the root, whose death
    /// would make a root-reduction vacuous) and each dies within its
    /// first three communication ops. Same `(seed, kills, size)` →
    /// same plan, on every platform — the seed the scaled determinism
    /// smokes and the fig4 `--kill-seed` flag build on.
    pub fn seeded_kills(seed: u64, kills: usize, size: usize) -> FaultPlan {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let mut plan = FaultPlan::new();
        if size < 2 {
            return plan;
        }
        let mut state = seed;
        let mut victims = Vec::new();
        // Bounded draw loop: at most size-1 distinct victims exist.
        while victims.len() < kills.min(size - 1) {
            let rank = 1 + (splitmix64(&mut state) % (size as u64 - 1)) as usize;
            if !victims.contains(&rank) {
                victims.push(rank);
            }
        }
        for rank in victims {
            let op = splitmix64(&mut state) % 3;
            plan = plan.kill(rank, op);
        }
        plan
    }

    pub(crate) fn kill_at(&self, rank: usize, op: u64) -> bool {
        self.kills.iter().any(|&(r, o)| r == rank && o == op)
    }

    pub(crate) fn delay_at(&self, rank: usize, op: u64) -> Option<Duration> {
        self.delays
            .iter()
            .filter(|&&(r, o, _)| r == rank && o == op)
            .map(|&(_, _, d)| d)
            .reduce(|a, b| a + b)
    }
}

/// Panic payload used to unwind a rank scheduled for death. The world
/// launcher downcasts for it to tell an injected kill (expected, maps to
/// `None`) from a genuine bug in rank code (propagated).
pub(crate) struct RankKilled;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_spec_lifts_mpi_sites() {
        let plan =
            FaultPlan::from_spec("mpi.kill=at(2,0);mpi.delay=at(1,3,40);io.read=fail(1)").unwrap();
        assert!(plan.has_kills());
        assert!(plan.kill_at(2, 0));
        assert!(!plan.kill_at(1, 3));
        assert_eq!(plan.delay_at(1, 3), Some(Duration::from_millis(40)));
        assert_eq!(plan.delay_at(2, 0), None);
    }

    #[test]
    fn from_spec_ignores_non_mpi_rules() {
        let plan = FaultPlan::from_spec("io.read=err(0.5);v2.block=corrupt(bitflip)").unwrap();
        assert!(plan.is_empty());
    }

    #[test]
    fn from_spec_rejects_bad_grammar() {
        assert!(FaultPlan::from_spec("mpi.kill=at(x,0)").is_err());
    }

    #[test]
    fn seeded_kills_is_reproducible_and_spares_the_root() {
        let a = FaultPlan::seeded_kills(7, 5, 1024);
        let b = FaultPlan::seeded_kills(7, 5, 1024);
        assert_eq!(a.kills, b.kills);
        assert_eq!(a.kills.len(), 5);
        assert!(a.kills.iter().all(|&(r, op)| (1..1024).contains(&r) && op < 3));
        let mut victims: Vec<usize> = a.kills.iter().map(|&(r, _)| r).collect();
        victims.sort_unstable();
        victims.dedup();
        assert_eq!(victims.len(), 5, "victims are distinct");
        let c = FaultPlan::seeded_kills(8, 5, 1024);
        assert_ne!(a.kills, c.kills, "different seed, different plan");
    }

    #[test]
    fn seeded_kills_caps_at_world_size() {
        let plan = FaultPlan::seeded_kills(1, 100, 4);
        assert_eq!(plan.kills.len(), 3, "at most size-1 victims");
        assert!(FaultPlan::seeded_kills(1, 3, 1).is_empty());
    }
}
