//! The world launcher: runs N ranks as OS threads.

use std::sync::Arc;

use crossbeam::channel::unbounded;

use crate::comm::{Comm, Packet};

/// Run `body` on `size` simulated ranks, each on its own thread, and
/// collect the per-rank return values in rank order.
///
/// Panics in any rank propagate (the world aborts with that panic), so
/// test assertions inside ranks behave as expected.
pub fn run<R, F>(size: usize, body: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(Comm) -> R + Send + Sync + 'static,
{
    assert!(size > 0, "world size must be positive");
    let mut senders = Vec::with_capacity(size);
    let mut receivers = Vec::with_capacity(size);
    for _ in 0..size {
        let (tx, rx) = unbounded::<Packet>();
        senders.push(tx);
        receivers.push(rx);
    }
    let inboxes = Arc::new(senders);
    let body = Arc::new(body);

    let mut handles = Vec::with_capacity(size);
    for (rank, inbox) in receivers.into_iter().enumerate() {
        let inboxes = Arc::clone(&inboxes);
        let body = Arc::clone(&body);
        handles.push(
            std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .spawn(move || {
                    let comm = Comm::new(rank, size, inboxes, inbox);
                    body(comm)
                })
                .expect("spawn rank thread"),
        );
    }
    handles
        .into_iter()
        .enumerate()
        .map(|(rank, h)| match h.join() {
            Ok(r) => r,
            Err(e) => std::panic::resume_unwind(Box::new(format!(
                "rank {rank} panicked: {:?}",
                e.downcast_ref::<String>()
                    .cloned()
                    .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
            ))),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_ids() {
        let ids = run(4, |comm| (comm.rank(), comm.size()));
        assert_eq!(ids, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn ring_pass() {
        let sums = run(4, |mut comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 0, comm.rank() as u64).unwrap();
            let from_prev: u64 = comm.recv(prev, 0).unwrap();
            from_prev + comm.rank() as u64
        });
        assert_eq!(sums, vec![3, 1, 3, 5]);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let results = run(2, |mut comm| {
            if comm.rank() == 0 {
                // Send tag 1 first, then tag 0.
                comm.send(1, 1, "second".to_string()).unwrap();
                comm.send(1, 0, "first".to_string()).unwrap();
                Vec::new()
            } else {
                // Receive in the opposite order.
                let a: String = comm.recv(0, 0).unwrap();
                let b: String = comm.recv(0, 1).unwrap();
                vec![a, b]
            }
        });
        assert_eq!(results[1], vec!["first", "second"]);
    }

    #[test]
    fn recv_any_matches_any_source() {
        let totals = run(4, |mut comm| {
            if comm.rank() == 0 {
                let mut total = 0u64;
                for _ in 1..comm.size() {
                    let (_, v): (usize, u64) = comm.recv_any(7).unwrap();
                    total += v;
                }
                total
            } else {
                comm.send(0, 7, comm.rank() as u64).unwrap();
                0
            }
        });
        assert_eq!(totals[0], 6);
    }

    #[test]
    fn single_rank_world() {
        let out = run(1, |comm| comm.size());
        assert_eq!(out, vec![1]);
    }
}
