//! The world launcher: runs N ranks as OS threads.
//!
//! This is the original execution model, kept as the reference engine:
//! every rank is an OS thread, receives block on channels, and timeouts
//! cost real wall-clock time. [`ThreadEngine`] exposes it behind the
//! [`Executor`] trait so the same [`RankTask`] state machines run here
//! and on the virtual-clock [`EventEngine`](crate::sched::EventEngine);
//! [`drive_task`] is the blocking driver that adapts a task to a
//! [`Comm`].

use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Once};

use crossbeam::channel::unbounded;

use crate::comm::{Comm, CommError, Packet, Tag};
use crate::fault::{FaultPlan, RankKilled};
use crate::task::{Action, Executor, Payload, RankTask, TaskCtx, Wake};
use crate::trace::{SharedTrace, TraceKind, TracedRun};

/// Run `body` on `size` simulated ranks, each on its own thread, and
/// collect the per-rank return values in rank order.
///
/// Panics in any rank propagate (the world aborts with that panic), so
/// test assertions inside ranks behave as expected.
pub fn run<R, F>(size: usize, body: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(Comm) -> R + Send + Sync + 'static,
{
    launch(size, None, None, body)
        .into_iter()
        .enumerate()
        .map(|(rank, r)| match r {
            Ok(r) => r,
            Err(e) => resume_rank_panic(rank, e),
        })
        .collect()
}

/// Run `body` on `size` simulated ranks under a scripted [`FaultPlan`].
///
/// Ranks the plan kills unwind at their scripted communication op and
/// contribute `None`; every surviving rank's return value comes back as
/// `Some(..)`, in rank order. A rank that panics for any *other* reason
/// still propagates — fault injection must not swallow genuine bugs in
/// rank code (including test assertions).
///
/// ```
/// use mpisim::{run_with_faults, FaultPlan};
///
/// let out = run_with_faults(3, FaultPlan::new().kill(1, 0), |mut comm| {
///     if comm.rank() == 1 {
///         // First comm op: scripted death, never returns.
///         let _ = comm.send(0, 0, ());
///     }
///     comm.rank()
/// });
/// assert_eq!(out, vec![Some(0), None, Some(2)]);
/// ```
pub fn run_with_faults<R, F>(size: usize, plan: FaultPlan, body: F) -> Vec<Option<R>>
where
    R: Send + 'static,
    F: Fn(Comm) -> R + Send + Sync + 'static,
{
    run_with_faults_inner(size, plan, None, body)
}

/// [`run_with_faults`] with an optional armed trace collector.
fn run_with_faults_inner<R, F>(
    size: usize,
    plan: FaultPlan,
    trace: Option<Arc<SharedTrace>>,
    body: F,
) -> Vec<Option<R>>
where
    R: Send + 'static,
    F: Fn(Comm) -> R + Send + Sync + 'static,
{
    if plan.has_kills() {
        silence_injected_kill_panics();
    }
    let faults = if plan.is_empty() {
        None
    } else {
        Some(Arc::new(plan))
    };
    launch(size, faults, trace, body)
        .into_iter()
        .enumerate()
        .map(|(rank, r)| match r {
            Ok(r) => Some(r),
            Err(e) if e.is::<RankKilled>() => {
                caliper_data::metrics::global()
                    .counter_volatile("mpisim.ranks_lost")
                    .inc();
                None
            }
            Err(e) => resume_rank_panic(rank, e),
        })
        .collect()
}

/// Spawns the rank threads and joins them, returning each rank's
/// outcome: its return value, or the panic payload it unwound with.
fn launch<R, F>(
    size: usize,
    faults: Option<Arc<FaultPlan>>,
    trace: Option<Arc<SharedTrace>>,
    body: F,
) -> Vec<Result<R, Box<dyn std::any::Any + Send>>>
where
    R: Send + 'static,
    F: Fn(Comm) -> R + Send + Sync + 'static,
{
    assert!(size > 0, "world size must be positive");
    let mut senders = Vec::with_capacity(size);
    let mut receivers = Vec::with_capacity(size);
    for _ in 0..size {
        let (tx, rx) = unbounded::<Packet>();
        senders.push(tx);
        receivers.push(rx);
    }
    let inboxes = Arc::new(senders);
    let body = Arc::new(body);

    let mut handles = Vec::with_capacity(size);
    for (rank, inbox) in receivers.into_iter().enumerate() {
        let inboxes = Arc::clone(&inboxes);
        let body = Arc::clone(&body);
        let faults = faults.clone();
        let trace = trace.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .spawn(move || {
                    let mut comm = Comm::new(rank, size, inboxes, inbox, faults);
                    if let Some(t) = &trace {
                        comm.set_trace(Arc::clone(t));
                        t.record(rank, TraceKind::Start);
                    }
                    // Catch the unwind here so the Comm (and with it the
                    // rank's inbox receiver) is dropped the moment the
                    // rank dies — that drop is what lets survivors see
                    // sends to this rank fail.
                    let out = std::panic::catch_unwind(AssertUnwindSafe(|| body(comm)));
                    if let (Some(t), Ok(_)) = (&trace, &out) {
                        t.record(rank, TraceKind::Done);
                    }
                    out
                })
                .expect("spawn rank thread"),
        );
    }
    handles
        .into_iter()
        .map(|h| h.join().unwrap_or_else(|e| Err(e)))
        .collect()
}

/// Drives a [`RankTask`] to completion against a blocking [`Comm`] —
/// the thread engine's half of the shared-collectives contract. Every
/// [`Action::Recv`] becomes one (bounded or unbounded) blocking receive
/// and counts one communication op, every [`TaskCtx::send`] one send
/// op, so [`FaultPlan`] schedules mean the same thing here as on the
/// event engine.
pub fn drive_task<T: RankTask>(comm: &mut Comm, mut task: T) -> T::Out {
    let mut wake = Wake::Start;
    loop {
        let action = {
            let mut ctx = CommTaskCtx { comm };
            task.step(&mut ctx, wake)
        };
        match action {
            Action::Done => return task.into_output(),
            Action::Recv { src, tag, timeout } => {
                wake = match comm.recv_msg(src, tag, timeout) {
                    Ok(msg) => Wake::Message(msg),
                    Err(e) if e.is_timeout() => Wake::Timeout,
                    // The inbox cannot disconnect while this rank lives
                    // (it holds every sender, its own included); a
                    // shutdown race is indistinguishable from silence.
                    Err(_) => Wake::Timeout,
                };
            }
        }
    }
}

struct CommTaskCtx<'a> {
    comm: &'a mut Comm,
}

impl TaskCtx for CommTaskCtx<'_> {
    fn rank(&self) -> usize {
        self.comm.rank()
    }

    fn size(&self) -> usize {
        self.comm.size()
    }

    fn send(&mut self, dest: usize, tag: Tag, payload: Payload) -> Result<(), CommError> {
        self.comm.send_payload(dest, tag, payload)
    }
}

/// The thread-per-rank engine behind the [`Executor`] trait: one OS
/// thread per rank, blocking receives, wall-clock timeouts. Accurate to
/// real concurrency (including races) but capped at a few hundred
/// ranks; use [`EventEngine`](crate::sched::EventEngine) beyond that.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadEngine;

impl Executor for ThreadEngine {
    fn name(&self) -> &'static str {
        "threads"
    }

    fn run_tasks<T, F>(&self, size: usize, plan: FaultPlan, make: F) -> Vec<Option<T::Out>>
    where
        T: RankTask + Send,
        T::Out: Send + 'static,
        F: Fn(usize, usize) -> T + Send + Sync + 'static,
    {
        run_with_faults(size, plan, move |mut comm| {
            let task = make(comm.rank(), comm.size());
            drive_task(&mut comm, task)
        })
    }

    fn run_tasks_traced<T, F>(&self, size: usize, plan: FaultPlan, make: F) -> TracedRun<T::Out>
    where
        T: RankTask + Send,
        T::Out: Send + 'static,
        F: Fn(usize, usize) -> T + Send + Sync + 'static,
    {
        let shared = Arc::new(SharedTrace::new(size));
        let outputs = run_with_faults_inner(size, plan, Some(Arc::clone(&shared)), move |mut comm| {
            let task = make(comm.rank(), comm.size());
            drive_task(&mut comm, task)
        });
        let trace = Arc::try_unwrap(shared)
            .expect("all rank threads joined, no collector clones remain")
            .into_trace();
        TracedRun {
            outputs: Ok(outputs),
            stats: None,
            trace,
        }
    }
}

fn resume_rank_panic(rank: usize, e: Box<dyn std::any::Any + Send>) -> ! {
    std::panic::resume_unwind(Box::new(format!(
        "rank {rank} panicked: {:?}",
        e.downcast_ref::<String>()
            .cloned()
            .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
    )))
}

/// Installs (once per process) a panic hook that suppresses the default
/// "thread panicked" stderr message for [`RankKilled`] unwinds — those
/// are scripted, expected deaths, not noise-worthy failures. All other
/// panics go to the previously installed hook untouched.
pub(crate) fn silence_injected_kill_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<RankKilled>() {
                return;
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Current value of a named counter in the process-global registry.
    fn global_counter(name: &str) -> u64 {
        caliper_data::metrics::global()
            .snapshot()
            .into_iter()
            .find(|s| s.name == name)
            .map(|s| s.value)
            .unwrap_or(0)
    }

    #[test]
    fn faults_and_messages_feed_the_metrics_registry() {
        // Other tests in this process also send messages and kill
        // ranks, so assert on deltas, not absolute values.
        let msgs_before = global_counter("mpisim.comm.messages");
        let lost_before = global_counter("mpisim.ranks_lost");
        let out = run_with_faults(3, FaultPlan::new().kill(2, 0), |mut comm| {
            match comm.rank() {
                0 => {
                    let v: u64 = comm.recv(1, 0).unwrap();
                    v
                }
                1 => {
                    comm.send(0, 0, 17u64).unwrap();
                    0
                }
                _ => {
                    let _ = comm.send(0, 0, 0u64); // scripted death here
                    0
                }
            }
        });
        assert_eq!(out, vec![Some(17), Some(0), None]);
        assert!(global_counter("mpisim.comm.messages") > msgs_before);
        assert!(global_counter("mpisim.ranks_lost") > lost_before);
    }

    #[test]
    fn ranks_see_their_ids() {
        let ids = run(4, |comm| (comm.rank(), comm.size()));
        assert_eq!(ids, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn ring_pass() {
        let sums = run(4, |mut comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 0, comm.rank() as u64).unwrap();
            let from_prev: u64 = comm.recv(prev, 0).unwrap();
            from_prev + comm.rank() as u64
        });
        assert_eq!(sums, vec![3, 1, 3, 5]);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let results = run(2, |mut comm| {
            if comm.rank() == 0 {
                // Send tag 1 first, then tag 0.
                comm.send(1, 1, "second".to_string()).unwrap();
                comm.send(1, 0, "first".to_string()).unwrap();
                Vec::new()
            } else {
                // Receive in the opposite order.
                let a: String = comm.recv(0, 0).unwrap();
                let b: String = comm.recv(0, 1).unwrap();
                vec![a, b]
            }
        });
        assert_eq!(results[1], vec!["first", "second"]);
    }

    #[test]
    fn recv_any_matches_any_source() {
        let totals = run(4, |mut comm| {
            if comm.rank() == 0 {
                let mut total = 0u64;
                for _ in 1..comm.size() {
                    let (_, v): (usize, u64) = comm.recv_any(7).unwrap();
                    total += v;
                }
                total
            } else {
                comm.send(0, 7, comm.rank() as u64).unwrap();
                0
            }
        });
        assert_eq!(totals[0], 6);
    }

    #[test]
    fn single_rank_world() {
        let out = run(1, |comm| comm.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn recv_timeout_bounds_the_wait() {
        let out = run(2, |mut comm| {
            if comm.rank() == 0 {
                // Rank 1 never sends: the wait must end in a timeout.
                let err = comm
                    .recv_timeout::<u64>(1, 9, Duration::from_millis(40))
                    .unwrap_err();
                assert!(err.is_timeout(), "{err}");
                true
            } else {
                true
            }
        });
        assert_eq!(out, vec![true, true]);
    }

    #[test]
    fn killed_rank_maps_to_none_and_faults_dont_leak() {
        let out = run_with_faults(3, FaultPlan::new().kill(2, 0), |mut comm| {
            match comm.rank() {
                0 => {
                    let v: u64 = comm.recv(1, 0).unwrap();
                    v
                }
                1 => {
                    comm.send(0, 0, 41u64).unwrap();
                    1
                }
                _ => {
                    // First op is the scripted death.
                    let _ = comm.send(0, 0, 99u64);
                    unreachable!("rank 2 is killed at op 0")
                }
            }
        });
        assert_eq!(out, vec![Some(41), Some(1), None]);
    }

    #[test]
    fn delays_make_stragglers_not_corpses() {
        let t0 = std::time::Instant::now();
        let out = run_with_faults(
            2,
            FaultPlan::new().delay(1, 0, Duration::from_millis(50)),
            |mut comm| {
                if comm.rank() == 0 {
                    comm.recv::<u64>(1, 0).unwrap()
                } else {
                    comm.send(0, 0, 7u64).unwrap();
                    7
                }
            },
        );
        assert_eq!(out, vec![Some(7), Some(7)]);
        assert!(t0.elapsed() >= Duration::from_millis(50));
    }

    #[test]
    fn sends_to_a_dead_rank_eventually_disconnect() {
        let out = run_with_faults(2, FaultPlan::new().kill(1, 0), |mut comm| {
            if comm.rank() == 0 {
                // Rank 1 dies on its first op; once its inbox is gone our
                // sends fail. Retry until the death becomes observable.
                loop {
                    if comm.send(1, 0, 1u64).is_err() {
                        return true;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            } else {
                let _ = comm.recv::<u64>(0, 0);
                unreachable!("rank 1 is killed at op 0")
            }
        });
        assert_eq!(out, vec![Some(true), None]);
    }
}
