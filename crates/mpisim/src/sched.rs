//! The event-driven world: a deterministic virtual-clock scheduler.
//!
//! Where the thread engine gives every rank an OS thread and pays wall
//! clock for every timeout, the [`EventEngine`] runs all ranks inside
//! one event loop on a **virtual clock**:
//!
//! * virtual time is a `u64` nanosecond counter that only ever jumps to
//!   the timestamp of the next scheduled event — nothing sleeps;
//! * a send is stamped at the sender's local virtual time and delivered
//!   `latency` later as a heap event;
//! * a bounded receive registers a **timer event** at its virtual
//!   deadline — timeouts are first-class events, so a reduction that
//!   waits out seconds of (virtual) timeout budget for dead partners
//!   completes in microseconds of wall-clock time, with zero spinning;
//! * scripted [`FaultPlan`] delays advance the rank's local clock
//!   instead of sleeping, and kills drop the rank's task at exactly the
//!   scripted communication op.
//!
//! # Determinism
//!
//! Events are ordered by `(virtual time, sequence number)`; sequence
//! numbers are assigned in deterministic (rank-ascending) order when
//! effects are applied. All events sharing the minimal timestamp form a
//! **batch**: their tasks are stepped — possibly in parallel on a
//! bounded worker pool — against an immutable snapshot of the batch
//! start state, and their effects (sends, timers, deaths) are applied
//! in rank order afterwards. Worker-pool size therefore cannot change
//! any outcome: runs are byte-identical for 1, 2, or N workers, and the
//! event count and final virtual time are identical too (pinned by the
//! determinism tests).
//!
//! # Virtual deadlock
//!
//! If the event heap drains while live tasks still wait without a
//! timeout, no message can ever arrive: the scheduler reports a
//! structured [`SchedError::Deadlock`] naming the blocked ranks and any
//! wait cycles among them (via
//! [`EventEngine::try_run_tasks_with_stats`]; the panicking
//! [`run_tasks`](Executor::run_tasks) entry point panics with the
//! error's message) — the event-loop analogue of the thread engine's
//! watchdog-guarded deadlock tests.
//!
//! # Tracing
//!
//! [`EventEngine::run_tasks_traced`] records a structured
//! happens-before trace ([`HbTrace`]) of the run for the offline
//! analyzer in [`crate::hb`]. The hook is a per-batch boolean: when
//! tracing is off (every other entry point), the only cost is testing
//! that flag, and the recorded trace — timestamps included, since the
//! clock is virtual — is byte-identical for any worker-pool size.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::panic::AssertUnwindSafe;

use crate::comm::{CommError, Tag};
use crate::fault::{FaultPlan, RankKilled};
use crate::task::{Action, Executor, Msg, Payload, RankTask, TaskCtx, Wake};
use crate::trace::{HbTrace, TraceEvent, TraceKind, TracedRun};

/// Virtual time, in nanoseconds since the start of the run.
pub type SimTime = u64;

/// Tuning knobs for the [`EventEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Worker threads stepping ready tasks within one batch. `0` and
    /// `1` both mean the single-threaded core. Pool size never changes
    /// results — only wall-clock time.
    pub workers: usize,
    /// Virtual delivery latency per message, in nanoseconds (≥ 1 so a
    /// message can never arrive in the batch that sent it).
    pub latency_ns: u64,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig {
            workers: 1,
            latency_ns: 1_000,
        }
    }
}

/// What one event-engine run did, in virtual-clock terms. Everything
/// here is deterministic for a fixed (size, plan, tasks, latency)
/// tuple, independent of the worker-pool size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Events processed (messages delivered, timers fired, rank
    /// starts), including stale timers skipped after their receive was
    /// satisfied.
    pub events: u64,
    /// Virtual timestamp of the last *acted-upon* event — the virtual
    /// makespan of the run (stale timers do not extend it).
    pub virtual_time_ns: SimTime,
    /// High-water mark of the event heap.
    pub max_queue_depth: usize,
    /// Messages sent (and accepted for delivery).
    pub messages: u64,
    /// Messages dropped because the destination died before delivery.
    pub dropped: u64,
    /// Timer events that woke a task with [`Wake::Timeout`].
    pub timeouts: u64,
    /// Timer events skipped because their receive had been satisfied.
    pub stale_timers: u64,
    /// Ranks killed by the fault plan.
    pub ranks_lost: u64,
}

/// Outputs plus scheduler statistics of a fallible engine run.
pub type SchedOutcome<Out> = Result<(Vec<Option<Out>>, SchedStats), SchedError>;

/// Everything `run_core` produces: the run outcome, the scheduler
/// statistics, and the (possibly empty) happens-before trace.
type CoreRun<Out> = (Result<Vec<Option<Out>>, SchedError>, SchedStats, HbTrace);

/// A structured scheduler failure — the event engine's replacement for
/// the former bare "virtual deadlock" panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The event heap drained while live ranks still waited on messages
    /// that can never arrive.
    Deadlock {
        /// Wait cycles among the blocked ranks, each listed in wait
        /// order and rotated to start at its smallest member (a rank in
        /// a cycle waits on the next; the last waits on the first).
        /// Empty when every blocked rank waits on something outside any
        /// cycle — a dead, finished, or wildcard peer.
        cycles: Vec<Vec<usize>>,
        /// Every blocked rank, ascending.
        blocked: Vec<usize>,
        /// Virtual time at which the heap drained.
        at_ns: SimTime,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::Deadlock {
                cycles,
                blocked,
                at_ns,
            } => {
                write!(
                    f,
                    "virtual deadlock: ranks {blocked:?} wait on messages that can never \
                     arrive (no events left at virtual time {at_ns} ns)"
                )?;
                for cycle in cycles {
                    let chain: Vec<String> = cycle
                        .iter()
                        .chain(cycle.first())
                        .map(|r| r.to_string())
                        .collect();
                    write!(f, "; wait cycle: {}", chain.join(" -> "))?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SchedError {}

/// The event-driven executor. See the module docs for semantics.
#[derive(Debug, Clone, Copy, Default)]
pub struct EventEngine {
    /// Scheduler configuration.
    pub config: SchedConfig,
}

impl EventEngine {
    /// Engine with the default configuration (single-threaded core,
    /// 1 µs message latency).
    pub fn new() -> EventEngine {
        EventEngine::default()
    }

    /// Engine with a bounded worker pool of `workers` threads.
    pub fn with_workers(workers: usize) -> EventEngine {
        EventEngine {
            config: SchedConfig {
                workers,
                ..SchedConfig::default()
            },
        }
    }
}

/// A scheduled event. Ordered by `(time, seq)` — `seq` makes the order
/// total and deterministic.
struct Ev {
    time: SimTime,
    seq: u64,
    kind: EvKind,
}

enum EvKind {
    /// Initial wake of `rank` at time 0.
    Start { rank: usize },
    /// Deliver a message to `dest`.
    Deliver { dest: usize, msg: Msg },
    /// A receive deadline for `rank`; stale if `gen` no longer matches.
    Timer { rank: usize, gen: u64 },
}

impl EvKind {
    fn rank(&self) -> usize {
        match *self {
            EvKind::Start { rank } | EvKind::Timer { rank, .. } => rank,
            EvKind::Deliver { dest, .. } => dest,
        }
    }
}

impl PartialEq for Ev {
    fn eq(&self, other: &Ev) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Ev) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    /// Reversed so the `BinaryHeap` pops the *earliest* event.
    fn cmp(&self, other: &Ev) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// An active bounded or unbounded receive.
struct Wait {
    src: Option<usize>,
    tag: Tag,
}

impl Wait {
    fn matches(&self, msg: &Msg) -> bool {
        msg.tag == self.tag && self.src.map(|s| s == msg.src).unwrap_or(true)
    }
}

/// Everything the scheduler tracks per rank.
struct RankState<T: RankTask> {
    task: Option<T>,
    out: Option<T::Out>,
    /// Delivered but unmatched messages, in delivery order.
    buffer: Vec<Msg>,
    wait: Option<Wait>,
    /// Bumped on every new registered wait; timers carry the
    /// generation they were armed for, so satisfied waits make their
    /// timers stale instead of firing.
    wait_gen: u64,
    /// The rank's local virtual clock: max of the global clock and any
    /// scripted delays it has served. Sends and deadlines are stamped
    /// with this, so a delayed rank's messages arrive late — exactly
    /// like a straggler thread, minus the wall-clock sleep.
    local_now: SimTime,
    /// Communication ops issued — the [`FaultPlan`] time axis.
    ops: u64,
    alive: bool,
    done: bool,
}

impl<T: RankTask> RankState<T> {
    fn new(task: T) -> RankState<T> {
        RankState {
            task: Some(task),
            out: None,
            buffer: Vec::new(),
            wait: None,
            wait_gen: 0,
            local_now: 0,
            ops: 0,
            alive: true,
            done: false,
        }
    }

    /// Placeholder used to move a state into a worker and back.
    fn vacant() -> RankState<T> {
        RankState {
            task: None,
            out: None,
            buffer: Vec::new(),
            wait: None,
            wait_gen: 0,
            local_now: 0,
            ops: 0,
            alive: false,
            done: false,
        }
    }
}

/// An outgoing message buffered during a step, stamped with the
/// sender's local virtual time.
struct OutMsg {
    at: SimTime,
    dest: usize,
    src: usize,
    tag: Tag,
    payload: Payload,
}

/// Deterministically ordered side effects of stepping one rank.
#[derive(Default)]
struct Effects {
    sends: Vec<OutMsg>,
    /// `(deadline, generation)` timers to arm.
    timers: Vec<(SimTime, u64)>,
    /// Local tallies folded into [`SchedStats`] at apply time.
    dropped: u64,
    timeouts: u64,
    stale_timers: u64,
    died: bool,
    /// Happens-before events recorded during the step, appended to the
    /// rank's trace lane at apply time. Only populated when `tracing`.
    trace: Vec<TraceEvent>,
    /// The trace hook: when false (the default), recording is a single
    /// branch per call site and nothing allocates.
    tracing: bool,
}

impl Effects {
    fn armed(tracing: bool) -> Effects {
        Effects {
            tracing,
            ..Effects::default()
        }
    }

    /// Record `kind` at virtual time `at` — a no-op unless tracing.
    fn rec(&mut self, at: SimTime, kind: TraceKind) {
        if self.tracing {
            self.trace.push(TraceEvent { kind, at_ns: at });
        }
    }
}

/// The [`TaskCtx`] a task sees while stepped by the event engine.
struct EventCtx<'a> {
    rank: usize,
    size: usize,
    ops: &'a mut u64,
    local_now: &'a mut SimTime,
    plan: &'a FaultPlan,
    /// Liveness snapshot at batch start: sends observe it, so results
    /// are independent of intra-batch stepping order.
    alive: &'a [bool],
    effects: &'a mut Effects,
}

impl TaskCtx for EventCtx<'_> {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&mut self, dest: usize, tag: Tag, payload: Payload) -> Result<(), CommError> {
        assert!(dest < self.size, "send to rank {dest} out of range");
        let op = *self.ops;
        *self.ops += 1;
        if let Some(d) = self.plan.delay_at(self.rank, op) {
            *self.local_now += d.as_nanos() as SimTime;
        }
        if self.plan.kill_at(self.rank, op) {
            std::panic::panic_any(RankKilled);
        }
        let ok = self.alive[dest];
        self.effects
            .rec(*self.local_now, TraceKind::Send { dest, tag, ok });
        if !ok {
            return Err(CommError::disconnected(format!("send to rank {dest}")));
        }
        self.effects.sends.push(OutMsg {
            at: *self.local_now,
            dest,
            src: self.rank,
            tag,
            payload,
        });
        Ok(())
    }
}

/// Steps `state`'s task until it blocks (registering a wait and
/// possibly a timer in `effects`), finishes, or dies.
fn feed<T: RankTask>(
    state: &mut RankState<T>,
    mut wake: Wake,
    size: usize,
    plan: &FaultPlan,
    alive: &[bool],
    effects: &mut Effects,
    rank: usize,
) {
    loop {
        let RankState {
            task,
            ops,
            local_now,
            ..
        } = &mut *state;
        let Some(task) = task.as_mut() else { return };
        let mut ctx = EventCtx {
            rank,
            size,
            ops,
            local_now,
            plan,
            alive,
            effects,
        };
        let action = match std::panic::catch_unwind(AssertUnwindSafe(|| task.step(&mut ctx, wake)))
        {
            Ok(action) => action,
            Err(payload) if payload.is::<RankKilled>() => {
                state.task = None;
                state.alive = false;
                state.wait = None;
                state.buffer.clear();
                effects.died = true;
                effects.rec(state.local_now, TraceKind::Killed);
                return;
            }
            // A genuine bug in task code: propagate, as the thread
            // engine does — fault injection must not swallow it.
            Err(payload) => std::panic::resume_unwind(payload),
        };
        match action {
            Action::Done => {
                let task = state.task.take().expect("task present");
                state.out = Some(task.into_output());
                state.done = true;
                effects.rec(state.local_now, TraceKind::Done);
                return;
            }
            Action::Recv { src, tag, timeout } => {
                // The receive is a communication op: the fault point
                // fires before any matching, like `Comm::recv*`.
                let op = state.ops;
                state.ops += 1;
                if let Some(d) = plan.delay_at(rank, op) {
                    state.local_now += d.as_nanos() as SimTime;
                }
                if plan.kill_at(rank, op) {
                    state.task = None;
                    state.alive = false;
                    state.wait = None;
                    state.buffer.clear();
                    effects.died = true;
                    effects.rec(state.local_now, TraceKind::Killed);
                    return;
                }
                let wait = Wait { src, tag };
                if let Some(i) = state.buffer.iter().position(|m| wait.matches(m)) {
                    let msg = state.buffer.remove(i);
                    effects.rec(
                        state.local_now,
                        TraceKind::Match {
                            src: msg.src,
                            tag: msg.tag,
                            wildcard: wait.src.is_none(),
                        },
                    );
                    wake = Wake::Message(msg);
                    continue;
                }
                state.wait_gen += 1;
                if let Some(t) = timeout {
                    let deadline = state
                        .local_now
                        .saturating_add(t.as_nanos().min(u128::from(u64::MAX)) as SimTime);
                    effects.timers.push((deadline, state.wait_gen));
                }
                effects.rec(
                    state.local_now,
                    TraceKind::WaitPost {
                        src: wait.src,
                        tag,
                        timeout_ns: timeout
                            .map(|t| t.as_nanos().min(u128::from(u64::MAX)) as u64),
                    },
                );
                state.wait = Some(wait);
                return;
            }
        }
    }
}

/// Routes one popped event into the rank's state, stepping the task as
/// far as it will go. The rank's local clock first catches up to the
/// event's timestamp, so sends it performs are stamped no earlier than
/// the wake that caused them and timer deadlines are always in the
/// future — which also makes the final virtual time a true makespan
/// (one latency per tree level, plus any timeout budgets waited out).
fn process_event<T: RankTask>(
    state: &mut RankState<T>,
    now: SimTime,
    kind: EvKind,
    size: usize,
    plan: &FaultPlan,
    alive: &[bool],
    effects: &mut Effects,
) {
    state.local_now = state.local_now.max(now);
    let rank = kind.rank();
    match kind {
        EvKind::Start { .. } => {
            effects.rec(state.local_now, TraceKind::Start);
            feed(state, Wake::Start, size, plan, alive, effects, rank)
        }
        EvKind::Deliver { msg, .. } => {
            if !state.alive || state.done {
                // The thread-engine analogue: a send that raced the
                // destination's death succeeded, and the message is
                // simply lost.
                effects.dropped += 1;
                return;
            }
            match &state.wait {
                Some(w) if w.matches(&msg) => {
                    let wildcard = w.src.is_none();
                    state.wait = None;
                    effects.rec(
                        state.local_now,
                        TraceKind::Match {
                            src: msg.src,
                            tag: msg.tag,
                            wildcard,
                        },
                    );
                    feed(state, Wake::Message(msg), size, plan, alive, effects, rank);
                }
                _ => state.buffer.push(msg),
            }
        }
        EvKind::Timer { gen, .. } => {
            if state.alive && !state.done && state.wait.is_some() && gen == state.wait_gen {
                let w = state.wait.take().expect("checked above");
                effects.timeouts += 1;
                effects.rec(
                    state.local_now,
                    TraceKind::Timeout {
                        src: w.src,
                        tag: w.tag,
                    },
                );
                feed(state, Wake::Timeout, size, plan, alive, effects, rank);
            } else {
                effects.stale_timers += 1;
            }
        }
    }
}

impl EventEngine {
    /// Like [`Executor::run_tasks`], but also returns the run's
    /// [`SchedStats`]. Panics with the [`SchedError`] message on a
    /// virtual deadlock; use
    /// [`try_run_tasks_with_stats`](EventEngine::try_run_tasks_with_stats)
    /// for the structured error.
    pub fn run_tasks_with_stats<T, F>(
        &self,
        size: usize,
        plan: FaultPlan,
        make: F,
    ) -> (Vec<Option<T::Out>>, SchedStats)
    where
        T: RankTask + Send,
        T::Out: Send + 'static,
        F: Fn(usize, usize) -> T,
    {
        match self.try_run_tasks_with_stats(size, plan, make) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`run_tasks_with_stats`](EventEngine::run_tasks_with_stats),
    /// but a virtual deadlock is a structured [`SchedError::Deadlock`]
    /// naming the blocked ranks and their wait cycles, instead of a
    /// panic.
    pub fn try_run_tasks_with_stats<T, F>(
        &self,
        size: usize,
        plan: FaultPlan,
        make: F,
    ) -> SchedOutcome<T::Out>
    where
        T: RankTask + Send,
        T::Out: Send + 'static,
        F: Fn(usize, usize) -> T,
    {
        let (outputs, stats, _) = self.run_core(size, plan, make, false);
        outputs.map(|outs| (outs, stats))
    }

    /// Run with the happens-before trace hook armed. The trace (and
    /// everything else) is byte-identical across worker-pool sizes, and
    /// is returned even when the run deadlocks — so the analyzer can
    /// name the wait cycle.
    pub fn run_tasks_traced<T, F>(&self, size: usize, plan: FaultPlan, make: F) -> TracedRun<T::Out>
    where
        T: RankTask + Send,
        T::Out: Send + 'static,
        F: Fn(usize, usize) -> T,
    {
        let (outputs, stats, trace) = self.run_core(size, plan, make, true);
        TracedRun {
            outputs,
            stats: Some(stats),
            trace,
        }
    }

    fn run_core<T, F>(&self, size: usize, plan: FaultPlan, make: F, tracing: bool) -> CoreRun<T::Out>
    where
        T: RankTask + Send,
        T::Out: Send + 'static,
        F: Fn(usize, usize) -> T,
    {
        assert!(size > 0, "world size must be positive");
        crate::world::silence_injected_kill_panics();
        let latency = self.config.latency_ns.max(1);
        let workers = self.config.workers.max(1);
        let mut stats = SchedStats::default();
        let mut trace = if tracing {
            HbTrace::new(size)
        } else {
            HbTrace::default()
        };

        let mut states: Vec<RankState<T>> =
            (0..size).map(|rank| RankState::new(make(rank, size))).collect();
        let mut heap: BinaryHeap<Ev> = BinaryHeap::with_capacity(size * 2);
        let mut next_seq: u64 = 0;
        for rank in 0..size {
            heap.push(Ev {
                time: 0,
                seq: next_seq,
                kind: EvKind::Start { rank },
            });
            next_seq += 1;
        }
        stats.max_queue_depth = heap.len();

        while let Some(first) = heap.pop() {
            // --- collect the batch: every event at the minimal time ---
            let now = first.time;
            let mut batch = vec![first];
            while heap.peek().map(|ev| ev.time == now).unwrap_or(false) {
                batch.push(heap.pop().expect("peeked"));
            }
            let batch_len = batch.len() as u64;
            stats.events += batch_len;

            // --- group per rank, preserving (time, seq) order ---
            let mut work: Vec<(usize, Vec<EvKind>)> = Vec::new();
            for ev in batch {
                let rank = ev.kind.rank();
                match work.iter_mut().find(|(r, _)| *r == rank) {
                    Some((_, kinds)) => kinds.push(ev.kind),
                    None => work.push((rank, vec![ev.kind])),
                }
            }
            work.sort_by_key(|&(rank, _)| rank);

            // --- snapshot liveness; step the batch's ranks ---
            let alive: Vec<bool> = states.iter().map(|s| s.alive).collect();
            let mut stepped: Vec<(usize, RankState<T>, Effects)> =
                if workers <= 1 || work.len() <= 1 {
                    work.into_iter()
                        .map(|(rank, kinds)| {
                            let mut state =
                                std::mem::replace(&mut states[rank], RankState::vacant());
                            let mut effects = Effects::armed(tracing);
                            for kind in kinds {
                                process_event(
                                    &mut state, now, kind, size, &plan, &alive, &mut effects,
                                );
                            }
                            (rank, state, effects)
                        })
                        .collect()
                } else {
                    let mut taken: Vec<(usize, RankState<T>, Vec<EvKind>)> = work
                        .into_iter()
                        .map(|(rank, kinds)| {
                            let state = std::mem::replace(&mut states[rank], RankState::vacant());
                            (rank, state, kinds)
                        })
                        .collect();
                    let chunk = taken.len().div_ceil(workers);
                    let plan = &plan;
                    let alive = &alive[..];
                    let results: Vec<Vec<(usize, RankState<T>, Effects)>> =
                        std::thread::scope(|scope| {
                            let mut handles = Vec::new();
                            while !taken.is_empty() {
                                let rest = taken.split_off(chunk.min(taken.len()));
                                let mine = std::mem::replace(&mut taken, rest);
                                handles.push(scope.spawn(move || {
                                    mine.into_iter()
                                        .map(|(rank, mut state, kinds)| {
                                            let mut effects = Effects::armed(tracing);
                                            for kind in kinds {
                                                process_event(
                                                    &mut state, now, kind, size, plan, alive,
                                                    &mut effects,
                                                );
                                            }
                                            (rank, state, effects)
                                        })
                                        .collect()
                                }));
                            }
                            handles
                                .into_iter()
                                .map(|h| match h.join() {
                                    Ok(v) => v,
                                    Err(e) => std::panic::resume_unwind(e),
                                })
                                .collect()
                        });
                    results.into_iter().flatten().collect()
                };

            // --- apply effects in rank order: deterministic seqs ---
            stepped.sort_by_key(|&(rank, _, _)| rank);
            let mut stale_in_batch = 0u64;
            for (rank, state, effects) in stepped {
                stale_in_batch += effects.stale_timers;
                stats.dropped += effects.dropped;
                stats.timeouts += effects.timeouts;
                stats.stale_timers += effects.stale_timers;
                if effects.died {
                    stats.ranks_lost += 1;
                }
                if tracing {
                    trace.events[rank].extend(effects.trace);
                }
                for out in effects.sends {
                    stats.messages += 1;
                    heap.push(Ev {
                        time: out.at + latency,
                        seq: next_seq,
                        kind: EvKind::Deliver {
                            dest: out.dest,
                            msg: Msg {
                                src: out.src,
                                tag: out.tag,
                                payload: out.payload,
                            },
                        },
                    });
                    next_seq += 1;
                }
                for (deadline, gen) in effects.timers {
                    heap.push(Ev {
                        time: deadline,
                        seq: next_seq,
                        kind: EvKind::Timer { rank, gen },
                    });
                    next_seq += 1;
                }
                states[rank] = state;
            }
            // Stale timers fire after their receive was satisfied;
            // a batch of nothing else must not stretch the makespan.
            if stale_in_batch < batch_len {
                stats.virtual_time_ns = stats.virtual_time_ns.max(now);
            }
            stats.max_queue_depth = stats.max_queue_depth.max(heap.len());
        }

        // --- heap drained: every live task must have finished ---
        let blocked_waits: Vec<(usize, Option<usize>, Tag)> = states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive && !s.done)
            .map(|(r, s)| match &s.wait {
                Some(w) => (r, w.src, w.tag),
                None => (r, None, 0),
            })
            .collect();
        let outcome = if blocked_waits.is_empty() {
            Ok(states.into_iter().map(|s| s.out).collect())
        } else {
            Err(SchedError::Deadlock {
                cycles: crate::hb::find_wait_cycles(&blocked_waits).cycles,
                blocked: blocked_waits.iter().map(|&(r, _, _)| r).collect(),
                at_ns: stats.virtual_time_ns,
            })
        };

        let metrics = caliper_data::metrics::global();
        metrics.counter_volatile("mpisim.sched.events").add(stats.events);
        metrics
            .gauge_volatile("mpisim.sched.virtual_time_ns")
            .set(stats.virtual_time_ns);
        metrics
            .gauge_volatile("mpisim.sched.max_queue_depth")
            .set_max(stats.max_queue_depth as u64);
        metrics
            .counter_volatile("mpisim.comm.messages")
            .add(stats.messages);
        metrics
            .counter_volatile("mpisim.comm.timeouts")
            .add(stats.timeouts);
        metrics
            .counter_volatile("mpisim.ranks_lost")
            .add(stats.ranks_lost);

        (outcome, stats, trace)
    }
}

impl Executor for EventEngine {
    fn name(&self) -> &'static str {
        "event"
    }

    fn run_tasks<T, F>(&self, size: usize, plan: FaultPlan, make: F) -> Vec<Option<T::Out>>
    where
        T: RankTask + Send,
        T::Out: Send + 'static,
        F: Fn(usize, usize) -> T + Send + Sync + 'static,
    {
        self.run_tasks_with_stats(size, plan, make).0
    }

    fn try_run_tasks<T, F>(
        &self,
        size: usize,
        plan: FaultPlan,
        make: F,
    ) -> Result<Vec<Option<T::Out>>, SchedError>
    where
        T: RankTask + Send,
        T::Out: Send + 'static,
        F: Fn(usize, usize) -> T + Send + Sync + 'static,
    {
        self.try_run_tasks_with_stats(size, plan, make)
            .map(|(outs, _)| outs)
    }

    fn run_tasks_traced<T, F>(&self, size: usize, plan: FaultPlan, make: F) -> TracedRun<T::Out>
    where
        T: RankTask + Send,
        T::Out: Send + 'static,
        F: Fn(usize, usize) -> T + Send + Sync + 'static,
    {
        EventEngine::run_tasks_traced(self, size, plan, make)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::ResilienceOptions;
    use crate::task::{ReduceTask, Topology};
    use std::time::Duration;

    type SumOutputs = Vec<Option<Option<(u64, crate::ReduceCoverage)>>>;

    fn sum_reduce(
        engine: &EventEngine,
        size: usize,
        plan: FaultPlan,
        topology: Topology,
        opts: ResilienceOptions,
    ) -> (SumOutputs, SchedStats) {
        engine.run_tasks_with_stats(size, plan, move |rank, size| {
            ReduceTask::new(
                rank,
                size,
                topology,
                move || rank as u64,
                |a: u64, b: u64| a + b,
                opts,
            )
        })
    }

    #[test]
    fn clean_reduction_sums_every_rank() {
        for size in [1usize, 2, 3, 5, 8, 13, 64, 100] {
            let (outs, stats) = sum_reduce(
                &EventEngine::new(),
                size,
                FaultPlan::new(),
                Topology::Flat,
                ResilienceOptions::default(),
            );
            let (total, coverage) = outs[0].as_ref().unwrap().as_ref().unwrap().clone();
            assert_eq!(total, (0..size as u64).sum::<u64>(), "size {size}");
            assert!(coverage.is_complete());
            assert!(outs[1..].iter().all(|o| o.as_ref().unwrap().is_none()));
            assert_eq!(stats.messages, size as u64 - 1);
            assert_eq!(stats.ranks_lost, 0);
        }
    }

    #[test]
    fn killed_subtree_is_charged_exactly() {
        // Rank 4 of 8 dies before doing anything: its subtree {4..8}
        // never reaches the root.
        let (outs, stats) = sum_reduce(
            &EventEngine::new(),
            8,
            FaultPlan::new().kill(4, 0),
            Topology::Flat,
            ResilienceOptions::default(),
        );
        let (total, coverage) = outs[0].as_ref().unwrap().as_ref().unwrap().clone();
        assert_eq!(coverage.included, vec![0, 1, 2, 3]);
        assert_eq!(coverage.lost, vec![4, 5, 6, 7]);
        assert_eq!(total, 6, "sum of the surviving ranks 0..4");
        assert!(outs[4].is_none(), "killed rank yields None");
        assert_eq!(stats.ranks_lost, 1);
        assert!(stats.timeouts > 0, "the root must wait out virtual timeouts");
    }

    #[test]
    fn virtual_delays_cost_no_wall_clock() {
        // A 90-second (virtual) straggler: the run must still finish
        // promptly in wall-clock terms and with full coverage.
        let wall = std::time::Instant::now();
        let opts = ResilienceOptions {
            timeout: Duration::from_secs(300),
            retries: 1,
            backoff: Duration::from_secs(10),
        };
        let (outs, stats) = sum_reduce(
            &EventEngine::new(),
            2,
            FaultPlan::new().delay(1, 0, Duration::from_secs(90)),
            Topology::Flat,
            opts,
        );
        let (total, coverage) = outs[0].as_ref().unwrap().as_ref().unwrap().clone();
        assert_eq!(total, 1);
        assert!(coverage.is_complete());
        assert!(stats.virtual_time_ns >= 90_000_000_000);
        assert!(
            wall.elapsed() < Duration::from_secs(5),
            "virtual waits must not spin wall-clock time"
        );
    }

    #[test]
    fn two_level_topology_reduces_everything() {
        for (size, nodes) in [(8, 2), (13, 4), (64, 8), (100, 7)] {
            let topo = Topology::two_level_for(size, nodes);
            let (outs, _) = sum_reduce(
                &EventEngine::new(),
                size,
                FaultPlan::new(),
                topo,
                ResilienceOptions::default(),
            );
            let (total, coverage) = outs[0].as_ref().unwrap().as_ref().unwrap().clone();
            assert_eq!(total, (0..size as u64).sum::<u64>(), "size {size}");
            assert!(coverage.is_complete(), "size {size} nodes {nodes}");
        }
    }

    #[test]
    fn worker_pool_size_changes_nothing() {
        let run = |workers: usize| {
            let (outs, stats) = sum_reduce(
                &EventEngine::with_workers(workers),
                64,
                FaultPlan::new().kill(9, 1).delay(3, 0, Duration::from_millis(2)),
                Topology::TwoLevel { ranks_per_node: 8 },
                ResilienceOptions::default(),
            );
            (format!("{outs:?}"), stats)
        };
        let (base_out, base_stats) = run(1);
        for workers in [2, 4] {
            let (out, stats) = run(workers);
            assert_eq!(out, base_out, "workers {workers}");
            assert_eq!(stats, base_stats, "workers {workers}");
        }
    }

    #[test]
    fn unbounded_wait_with_no_sender_is_a_structured_deadlock() {
        struct WaitForever;
        impl RankTask for WaitForever {
            type Out = ();
            fn step(&mut self, _ctx: &mut dyn TaskCtx, _wake: Wake) -> Action {
                Action::Recv {
                    src: None,
                    tag: 7,
                    timeout: None,
                }
            }
            fn into_output(self) {}
        }
        let err = EventEngine::new()
            .try_run_tasks_with_stats(1, FaultPlan::new(), |_, _| WaitForever)
            .unwrap_err();
        let SchedError::Deadlock {
            cycles, blocked, ..
        } = &err;
        assert_eq!(blocked, &vec![0]);
        assert!(cycles.is_empty(), "a wildcard wait is not a cycle");
        let msg = err.to_string();
        assert!(msg.contains("virtual deadlock"), "{msg}");
        assert!(msg.contains("[0]"), "{msg}");
    }

    #[test]
    fn mutual_waits_name_the_exact_cycle() {
        /// Waits forever on a specific peer; never sends.
        struct WaitOn(usize);
        impl RankTask for WaitOn {
            type Out = ();
            fn step(&mut self, _ctx: &mut dyn TaskCtx, _wake: Wake) -> Action {
                Action::Recv {
                    src: Some(self.0),
                    tag: 1,
                    timeout: None,
                }
            }
            fn into_output(self) {}
        }
        // A 3-cycle: 0 waits on 1 waits on 2 waits on 0.
        let err = EventEngine::new()
            .try_run_tasks_with_stats(3, FaultPlan::new(), |rank, size| WaitOn((rank + 1) % size))
            .unwrap_err();
        let SchedError::Deadlock {
            cycles, blocked, ..
        } = &err;
        assert_eq!(blocked, &vec![0, 1, 2]);
        assert_eq!(cycles, &vec![vec![0, 1, 2]]);
        assert!(
            err.to_string().contains("wait cycle: 0 -> 1 -> 2 -> 0"),
            "{err}"
        );
    }

    #[test]
    fn traced_run_matches_untraced_and_is_worker_invariant() {
        let plan = || {
            FaultPlan::new()
                .kill(9, 1)
                .delay(3, 0, Duration::from_millis(2))
        };
        let run = |workers: usize| {
            let engine = EventEngine::with_workers(workers);
            engine.run_tasks_traced(64, plan(), move |rank, size| {
                ReduceTask::new(
                    rank,
                    size,
                    Topology::TwoLevel { ranks_per_node: 8 },
                    move || rank as u64,
                    |a: u64, b: u64| a + b,
                    ResilienceOptions::default(),
                )
            })
        };
        let base = run(1);
        let (outs, stats) = sum_reduce(
            &EventEngine::new(),
            64,
            plan(),
            Topology::TwoLevel { ranks_per_node: 8 },
            ResilienceOptions::default(),
        );
        // Tracing must not perturb the run itself.
        assert_eq!(
            format!("{:?}", base.outputs.as_ref().unwrap()),
            format!("{outs:?}")
        );
        assert_eq!(base.stats, Some(stats));
        assert!(!base.trace.is_empty());
        for workers in [2, 4] {
            let other = run(workers);
            assert_eq!(base.trace, other.trace, "workers {workers}");
        }
    }
}
