//! Offline happens-before analysis of communication traces.
//!
//! This module turns an [`HbTrace`] (recorded by either engine; see
//! [`crate::trace`]) into a *proof-shaped* report about the
//! communication schedule, extending the workspace's static-analysis
//! story (`cali-query --check` / `cali-lint` over queries) to the
//! simulated MPI layer. Where the determinism tests *sample* schedules
//! (run twice, byte-compare), the analyzer *derives* the
//! happens-before partial order with per-rank **vector clocks**
//! ([`VClock`]) and checks properties of every schedule consistent
//! with the recorded causality:
//!
//! * **message races** — a wildcard receive for which two or more
//!   HB-concurrent in-flight sends were candidates: which one matches
//!   is schedule-dependent (`M001`; `N002` when the candidates are
//!   HB-ordered and only causal delivery order protects the match);
//! * **wait-cycle deadlocks** — ranks blocked in unbounded receives
//!   forming a cycle (`M002`) or waiting on peers that can never send
//!   (`M003`), reported as a structured diagnostic naming the exact
//!   cycle;
//! * **timeout hazards** — a receive that gave up at its deadline while
//!   its only matching send was still in flight (the send HB-follows
//!   the timeout): under the given fault plan the data silently turns
//!   into a lost subtree (`N001`);
//! * **dead letters** — messages sent to a rank that finished without
//!   consuming them (`N003`).
//!
//! The happens-before relation is the transitive closure of per-rank
//! program order, send→match edges, and kill-propagation edges (a
//! refused send joins the dead peer's frozen clock — the observer
//! learned of the death). Clocks are *sparse*: a rank's clock carries
//! entries only for ranks in its causal past, so a 2048-rank binomial
//! reduction costs O(size · log²size) clock entries, not O(size²).
//!
//! Diagnostics carry `M00x` (error) / `N00x` (warning) codes and render
//! in the sema pass's `severity[CODE]: message` format; see
//! `docs/ANALYSIS.md` for the full table.

use std::collections::HashMap;

use crate::comm::Tag;
use crate::trace::{HbTrace, TraceKind};

/// A sparse vector clock: `(rank, count)` entries sorted by rank, with
/// absent ranks implicitly zero. The clock of an event includes the
/// event's own tick, so `e` happens-before `f` iff
/// `clock(e) ≤ clock(f)` componentwise (and the events differ).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock {
    entries: Vec<(u32, u64)>,
}

impl VClock {
    /// The zero clock.
    pub fn new() -> VClock {
        VClock::default()
    }

    /// The component for `rank` (zero when absent).
    pub fn get(&self, rank: usize) -> u64 {
        let rank = rank as u32;
        match self.entries.binary_search_by_key(&rank, |&(r, _)| r) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0,
        }
    }

    /// Number of non-zero components.
    pub fn width(&self) -> usize {
        self.entries.len()
    }

    /// Advance `rank`'s own component by one.
    pub fn tick(&mut self, rank: usize) {
        let rank = rank as u32;
        match self.entries.binary_search_by_key(&rank, |&(r, _)| r) {
            Ok(i) => self.entries[i].1 += 1,
            Err(i) => self.entries.insert(i, (rank, 1)),
        }
    }

    /// Componentwise maximum: after the call `self` is the least upper
    /// bound (join) of the two clocks.
    pub fn join(&mut self, other: &VClock) {
        let mut merged = Vec::with_capacity(self.entries.len().max(other.entries.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let (ra, ca) = self.entries[i];
            let (rb, cb) = other.entries[j];
            match ra.cmp(&rb) {
                std::cmp::Ordering::Less => {
                    merged.push((ra, ca));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push((rb, cb));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push((ra, ca.max(cb)));
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.entries[i..]);
        merged.extend_from_slice(&other.entries[j..]);
        self.entries = merged;
    }

    /// True when every component of `self` is ≤ the corresponding
    /// component of `other` — i.e. the event `self` stamps happens
    /// before (or is) the event `other` stamps.
    pub fn leq(&self, other: &VClock) -> bool {
        self.entries.iter().all(|&(r, c)| c <= other.get(r as usize))
    }

    /// The happens-before comparison: `Less`/`Greater` when one clock
    /// dominates, `Equal` when identical, `None` when the two events
    /// are concurrent (causally incomparable).
    pub fn partial_cmp_hb(&self, other: &VClock) -> Option<std::cmp::Ordering> {
        match (self.leq(other), other.leq(self)) {
            (true, true) => Some(std::cmp::Ordering::Equal),
            (true, false) => Some(std::cmp::Ordering::Less),
            (false, true) => Some(std::cmp::Ordering::Greater),
            (false, false) => None,
        }
    }

    /// True when neither clock dominates: the stamped events are
    /// causally concurrent.
    pub fn concurrent(&self, other: &VClock) -> bool {
        self.partial_cmp_hb(other).is_none()
    }
}

/// Diagnostic severity: `M00x` codes are errors, `N00x` warnings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but survivable (`N…` codes).
    Warning,
    /// The schedule is broken or nondeterministic (`M…` codes).
    Error,
}

impl Severity {
    /// Lowercase name as rendered (`error` / `warning`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One analyzer finding, rendered `severity[CODE]: message` like the
/// CalQL sema pass's diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`M001`…/`N001`…).
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Ranks involved, ascending — the cycle ranks for `M002`, the
    /// receiver and senders for `M001`, and so on.
    pub ranks: Vec<usize>,
    /// Human-readable finding.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]: {}", self.severity.name(), self.code, self.message)
    }
}

/// Aggregate facts about the analyzed trace, printed in the
/// certificate. Deterministic for a deterministic trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Total recorded events.
    pub events: u64,
    /// Sends accepted for delivery.
    pub sends: u64,
    /// Send→receive match edges.
    pub match_edges: u64,
    /// Kill-propagation edges (sends refused by a dead peer).
    pub kill_edges: u64,
    /// Matches whose receive was posted with a wildcard source.
    pub wildcard_matches: u64,
    /// Receive deadlines that fired.
    pub timeouts: u64,
    /// Ranks the fault plan killed.
    pub kills: u64,
    /// Ranks that completed their task.
    pub finished: u64,
    /// Messages that died with their killed destination (accounted by
    /// coverage reporting, hence informational, not a diagnostic).
    pub lost_to_kills: u64,
    /// Widest vector clock the run produced (the root's, normally).
    pub max_clock_width: usize,
}

/// The result of [`analyze`]: diagnostics plus certificate stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// World size of the analyzed trace.
    pub size: usize,
    /// Findings, deterministically ordered (errors first, then by
    /// code, ranks, message).
    pub diagnostics: Vec<Diagnostic>,
    /// Certificate statistics.
    pub stats: AnalysisStats,
}

impl Analysis {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics.len() - self.errors()
    }

    /// True when the schedule certified clean: no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The pinned CI exit code: `0` clean (or warnings tolerated),
    /// `1` warnings present and denied, `2` errors present.
    pub fn exit_code(&self, deny_warnings: bool) -> u8 {
        if self.errors() > 0 {
            2
        } else if deny_warnings && self.warnings() > 0 {
            1
        } else {
            0
        }
    }

    /// Render the full certificate: stats block, findings, verdict.
    /// Byte-identical across runs whenever the trace is.
    pub fn render(&self) -> String {
        let s = &self.stats;
        let mut out = String::new();
        out.push_str(&format!("happens-before analysis: {} ranks\n", self.size));
        out.push_str(&format!("  events:                 {}\n", s.events));
        out.push_str(&format!(
            "  sends:                  {} (match edges {}, kill edges {})\n",
            s.sends, s.match_edges, s.kill_edges
        ));
        out.push_str(&format!("  wildcard matches:       {}\n", s.wildcard_matches));
        out.push_str(&format!("  timeouts fired:         {}\n", s.timeouts));
        out.push_str(&format!(
            "  ranks killed/finished:  {}/{}\n",
            s.kills, s.finished
        ));
        out.push_str(&format!("  messages lost to kills: {}\n", s.lost_to_kills));
        out.push_str(&format!("  max clock width:        {}\n", s.max_clock_width));
        for d in &self.diagnostics {
            out.push_str(&format!("{d}\n"));
        }
        if self.is_clean() {
            out.push_str("verdict: CLEAN (race-free, deadlock-free)\n");
        } else {
            out.push_str(&format!(
                "verdict: {} error(s), {} warning(s)\n",
                self.errors(),
                self.warnings()
            ));
        }
        out
    }
}

/// At most this many findings are reported per diagnostic code; the
/// remainder collapse into one summary finding so a pathological trace
/// cannot explode the report (the counts stay exact and deterministic).
const MAX_PER_CODE: usize = 16;

/// One send occurrence, reconstructed from the trace.
struct SendRec {
    src: usize,
    /// Index of the send event in `src`'s program order.
    ev: usize,
    dest: usize,
    tag: Tag,
    ok: bool,
    /// `(rank, event index)` of the match that consumed it, if any.
    consumed_by: Option<(usize, usize)>,
}

/// Wait-for structure of a set of blocked receives: cycles (each a
/// rank list in wait order, rotated to start at its smallest member)
/// and the blocked ranks not part of any cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WaitCycles {
    /// Each cycle of mutually waiting ranks.
    pub cycles: Vec<Vec<usize>>,
    /// Blocked ranks not on any cycle (orphan waits).
    pub orphans: Vec<usize>,
}

/// Find wait cycles in a set of blocked receives, given as
/// `(rank, required source, tag)` triples (`None` source = wildcard,
/// which can never be on a specific cycle). Used both by the offline
/// analyzer and by the event engine to build its structured
/// [`SchedError::Deadlock`](crate::sched::SchedError) diagnostic.
pub fn find_wait_cycles(blocked: &[(usize, Option<usize>, Tag)]) -> WaitCycles {
    let successor: HashMap<usize, Option<usize>> = blocked
        .iter()
        .map(|&(rank, src, _)| {
            let next = src.filter(|s| blocked.iter().any(|&(r, _, _)| r == *s));
            (rank, next)
        })
        .collect();
    // Functional-graph cycle finding: walk each unvisited rank's
    // successor chain; a node revisited within the current walk closes
    // a cycle.
    let mut state: HashMap<usize, u8> = HashMap::new(); // 1 = on path, 2 = done
    let mut cycles = Vec::new();
    let mut on_cycle: Vec<usize> = Vec::new();
    for &(start, _, _) in blocked {
        if state.get(&start).copied() == Some(2) {
            continue;
        }
        let mut path = Vec::new();
        let mut cur = start;
        loop {
            match state.get(&cur).copied() {
                Some(2) => break,
                Some(1) => {
                    // `cur` is on the current path: everything from its
                    // first occurrence onwards is a cycle.
                    let pos = path.iter().position(|&r| r == cur).expect("on path");
                    let mut cycle: Vec<usize> = path[pos..].to_vec();
                    // Canonical rotation: start at the smallest rank.
                    let min = cycle
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, r)| *r)
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    cycle.rotate_left(min);
                    on_cycle.extend(&cycle);
                    cycles.push(cycle);
                    break;
                }
                _ => {
                    state.insert(cur, 1);
                    path.push(cur);
                    match successor.get(&cur).copied().flatten() {
                        Some(next) => cur = next,
                        None => break,
                    }
                }
            }
        }
        for r in path {
            state.insert(r, 2);
        }
    }
    cycles.sort();
    let mut orphans: Vec<usize> = blocked
        .iter()
        .map(|&(r, _, _)| r)
        .filter(|r| !on_cycle.contains(r))
        .collect();
    orphans.sort_unstable();
    WaitCycles { cycles, orphans }
}

/// Compute the vector clock of every event in the trace, in the
/// trace's own layout: `clocks(t)[rank][i]` stamps `t.events[rank][i]`.
/// Exposed for the clock-law tests; [`analyze`] uses the same pass.
pub fn clocks(trace: &HbTrace) -> Vec<Vec<VClock>> {
    Replay::build(trace).clocks
}

/// Everything the replay pass reconstructs from a trace.
struct Replay {
    sends: Vec<SendRec>,
    /// `(rank, match event index)` → index into `sends`.
    match_send: HashMap<(usize, usize), usize>,
    clocks: Vec<Vec<VClock>>,
    /// Event index of the rank's `Killed` event, if killed.
    killed_ev: Vec<Option<usize>>,
    /// Event index of the rank's `Done` event, if finished.
    done_ev: Vec<Option<usize>>,
    /// True when the trace was internally inconsistent (a match with
    /// no send, or an unresolvable dependency) — reported as `M004`.
    inconsistent: bool,
}

impl Replay {
    fn build(trace: &HbTrace) -> Replay {
        let size = trace.size();
        // --- pass 1: index sends, FIFO per (src, dest, tag) ---
        let mut sends: Vec<SendRec> = Vec::new();
        let mut fifo: HashMap<(usize, usize, Tag), Vec<usize>> = HashMap::new();
        for (rank, events) in trace.events.iter().enumerate() {
            for (i, ev) in events.iter().enumerate() {
                if let TraceKind::Send { dest, tag, ok } = ev.kind {
                    let id = sends.len();
                    sends.push(SendRec {
                        src: rank,
                        ev: i,
                        dest,
                        tag,
                        ok,
                        consumed_by: None,
                    });
                    if ok {
                        fifo.entry((rank, dest, tag)).or_default().push(id);
                    }
                }
            }
        }
        // --- pass 2: resolve matches against the per-channel FIFOs ---
        // Channel order is FIFO on both engines (same-source sends to
        // the same destination and tag are delivered in send order), so
        // the k-th match from (src, tag) at a rank consumed the k-th
        // such send.
        let mut inconsistent = false;
        let mut match_send: HashMap<(usize, usize), usize> = HashMap::new();
        let mut taken: HashMap<(usize, usize, Tag), usize> = HashMap::new();
        for (rank, events) in trace.events.iter().enumerate() {
            for (i, ev) in events.iter().enumerate() {
                if let TraceKind::Match { src, tag, .. } = ev.kind {
                    let key = (src, rank, tag);
                    let k = taken.entry(key).or_insert(0);
                    match fifo.get(&key).and_then(|q| q.get(*k)).copied() {
                        Some(id) => {
                            sends[id].consumed_by = Some((rank, i));
                            match_send.insert((rank, i), id);
                            *k += 1;
                        }
                        None => inconsistent = true,
                    }
                }
            }
        }
        // --- pass 3: kill/done markers ---
        let mut killed_ev = vec![None; size];
        let mut done_ev = vec![None; size];
        for (rank, events) in trace.events.iter().enumerate() {
            for (i, ev) in events.iter().enumerate() {
                match ev.kind {
                    TraceKind::Killed => killed_ev[rank] = Some(i),
                    TraceKind::Done => done_ev[rank] = Some(i),
                    _ => {}
                }
            }
        }
        // --- pass 4: clocks, via a deterministic worklist ---
        // An event is ready when its cross-rank dependencies (the
        // matched send's clock; the dead peer's final clock for a
        // refused send) are already stamped. Ranks are advanced
        // smallest-first, each as far as it will go.
        let mut clocks: Vec<Vec<VClock>> = trace
            .events
            .iter()
            .map(|evs| vec![VClock::new(); evs.len()])
            .collect();
        let mut cur: Vec<VClock> = vec![VClock::new(); size];
        let mut ptr = vec![0usize; size];
        let stamped = |ptr: &[usize], rank: usize, ev: usize| ptr[rank] > ev;
        loop {
            let mut progressed = false;
            for rank in 0..size {
                while ptr[rank] < trace.events[rank].len() {
                    let i = ptr[rank];
                    let ev = &trace.events[rank][i];
                    // Dependency check.
                    let dep = match ev.kind {
                        TraceKind::Match { .. } => match match_send.get(&(rank, i)) {
                            Some(&id) => {
                                let s = &sends[id];
                                if stamped(&ptr, s.src, s.ev) {
                                    Some(clocks[s.src][s.ev].clone())
                                } else {
                                    break; // not ready yet
                                }
                            }
                            None => None, // inconsistent match: no edge
                        },
                        TraceKind::Send { dest, ok: false, .. } => {
                            // Kill propagation: the sender observed the
                            // destination's death (or completion).
                            let terminal = killed_ev[dest].or(done_ev[dest]);
                            match terminal {
                                Some(t) if stamped(&ptr, dest, t) => {
                                    Some(clocks[dest][t].clone())
                                }
                                Some(_) => break, // not ready yet
                                None => None,
                            }
                        }
                        _ => None,
                    };
                    cur[rank].tick(rank);
                    if let Some(dep) = dep {
                        cur[rank].join(&dep);
                    }
                    clocks[rank][i] = cur[rank].clone();
                    ptr[rank] = i + 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        if (0..size).any(|r| ptr[r] < trace.events[r].len()) {
            // A dependency cycle in what should be a causal order:
            // stamp the stragglers with their running clocks so the
            // scans below stay total, and flag the trace.
            inconsistent = true;
            for rank in 0..size {
                let first_unstamped = ptr[rank];
                for slot in clocks[rank].iter_mut().skip(first_unstamped) {
                    cur[rank].tick(rank);
                    *slot = cur[rank].clone();
                }
            }
        }
        Replay {
            sends,
            match_send,
            clocks,
            killed_ev,
            done_ev,
            inconsistent,
        }
    }
}

/// Bounded per-code diagnostic collector (see [`MAX_PER_CODE`]).
#[derive(Default)]
struct Findings {
    diags: Vec<Diagnostic>,
    suppressed: HashMap<&'static str, u64>,
}

impl Findings {
    fn push(&mut self, code: &'static str, severity: Severity, ranks: Vec<usize>, message: String) {
        let shown = self.diags.iter().filter(|d| d.code == code).count();
        if shown < MAX_PER_CODE {
            self.diags.push(Diagnostic {
                code,
                severity,
                ranks,
                message,
            });
        } else {
            *self.suppressed.entry(code).or_insert(0) += 1;
        }
    }

    fn finish(mut self) -> Vec<Diagnostic> {
        let mut extra: Vec<(&'static str, u64)> = self.suppressed.into_iter().collect();
        extra.sort();
        for (code, n) in extra {
            let severity = self
                .diags
                .iter()
                .find(|d| d.code == code)
                .map(|d| d.severity)
                .unwrap_or(Severity::Warning);
            self.diags.push(Diagnostic {
                code,
                severity,
                ranks: Vec::new(),
                message: format!("{n} further {code} finding(s) suppressed"),
            });
        }
        self.diags.sort_by(|a, b| {
            (std::cmp::Reverse(a.severity), a.code, &a.ranks, &a.message).cmp(&(
                std::cmp::Reverse(b.severity),
                b.code,
                &b.ranks,
                &b.message,
            ))
        });
        self.diags
    }
}

/// Analyze a recorded trace: compute the happens-before relation and
/// report races, deadlocks, and determinism hazards. Deterministic:
/// the same trace always yields the same [`Analysis`].
pub fn analyze(trace: &HbTrace) -> Analysis {
    let size = trace.size();
    let replay = Replay::build(trace);
    let mut findings = Findings::default();
    let mut stats = AnalysisStats {
        events: trace.len() as u64,
        ..AnalysisStats::default()
    };
    stats.kills = replay.killed_ev.iter().filter(|k| k.is_some()).count() as u64;
    stats.finished = replay.done_ev.iter().filter(|d| d.is_some()).count() as u64;
    stats.max_clock_width = replay
        .clocks
        .iter()
        .flatten()
        .map(VClock::width)
        .max()
        .unwrap_or(0);
    for s in &replay.sends {
        if s.ok {
            stats.sends += 1;
        } else {
            stats.kill_edges += 1;
        }
        if s.consumed_by.is_some() {
            stats.match_edges += 1;
        }
    }

    if replay.inconsistent {
        findings.push(
            "M004",
            Severity::Error,
            Vec::new(),
            "trace is internally inconsistent (a receive matched a message no send produced, \
             or the event dependencies are cyclic); analysis results are unreliable"
                .to_string(),
        );
    }

    // --- (a) message races: wildcard matches with alternative senders ---
    for (rank, events) in trace.events.iter().enumerate() {
        for (i, ev) in events.iter().enumerate() {
            let TraceKind::Match { src, tag, wildcard } = ev.kind else {
                continue;
            };
            if wildcard {
                stats.wildcard_matches += 1;
            } else {
                // A source-specific receive can only be matched by
                // same-source sends, which the channel FIFO orders
                // deterministically: no race is possible.
                continue;
            }
            let Some(&sid) = replay.match_send.get(&(rank, i)) else {
                continue;
            };
            let s_clock = &replay.clocks[replay.sends[sid].src][replay.sends[sid].ev];
            let m_clock = &replay.clocks[rank][i];
            let mut concurrent_alts: Vec<usize> = Vec::new();
            let mut ordered_alts: Vec<usize> = Vec::new();
            for (aid, alt) in replay.sends.iter().enumerate() {
                if aid == sid
                    || !alt.ok
                    || alt.dest != rank
                    || alt.tag != tag
                    || alt.src == replay.sends[sid].src
                {
                    continue;
                }
                let a_clock = &replay.clocks[alt.src][alt.ev];
                // Feasible alternative: not caused by this match, and
                // not already consumed strictly before it.
                if m_clock.leq(a_clock) {
                    continue;
                }
                if let Some((cr, ci)) = alt.consumed_by {
                    let c_clock = &replay.clocks[cr][ci];
                    if c_clock.leq(m_clock) && c_clock != m_clock {
                        continue;
                    }
                }
                if a_clock.concurrent(s_clock) {
                    concurrent_alts.push(alt.src);
                } else {
                    ordered_alts.push(alt.src);
                }
            }
            concurrent_alts.sort_unstable();
            concurrent_alts.dedup();
            ordered_alts.sort_unstable();
            ordered_alts.dedup();
            let matched_src = src;
            if !concurrent_alts.is_empty() {
                let mut ranks = vec![rank, matched_src];
                ranks.extend(&concurrent_alts);
                ranks.sort_unstable();
                ranks.dedup();
                findings.push(
                    "M001",
                    Severity::Error,
                    ranks,
                    format!(
                        "message race: rank {rank}'s wildcard receive (tag {tag}) matched rank \
                         {matched_src}, but HB-concurrent send(s) from rank(s) {concurrent_alts:?} \
                         could match instead — the result is schedule-dependent"
                    ),
                );
            } else if !ordered_alts.is_empty() {
                let mut ranks = vec![rank, matched_src];
                ranks.extend(&ordered_alts);
                ranks.sort_unstable();
                ranks.dedup();
                findings.push(
                    "N002",
                    Severity::Warning,
                    ranks,
                    format!(
                        "rank {rank}'s wildcard receive (tag {tag}) matched rank {matched_src} \
                         while in-flight send(s) from rank(s) {ordered_alts:?} were HB-ordered \
                         alternatives — the match relies on causal delivery order"
                    ),
                );
            }
        }
    }

    // --- (b) deadlocks: blocked ranks and their wait-for structure ---
    let mut blocked: Vec<(usize, Option<usize>, Tag)> = Vec::new();
    for rank in 0..size {
        if replay.killed_ev[rank].is_some() || replay.done_ev[rank].is_some() {
            continue;
        }
        if let Some(ev) = trace.events[rank].last() {
            if let TraceKind::WaitPost { src, tag, .. } = ev.kind {
                blocked.push((rank, src, tag));
            }
        }
    }
    let waits = find_wait_cycles(&blocked);
    for cycle in &waits.cycles {
        let chain: Vec<String> = cycle
            .iter()
            .chain(cycle.first())
            .map(|r| r.to_string())
            .collect();
        let mut ranks = cycle.clone();
        ranks.sort_unstable();
        findings.push(
            "M002",
            Severity::Error,
            ranks,
            format!(
                "wait-cycle deadlock: ranks {} each wait on the next — no message can ever arrive",
                chain.join(" -> ")
            ),
        );
    }
    for &rank in &waits.orphans {
        let (_, src, tag) = blocked
            .iter()
            .find(|&&(r, _, _)| r == rank)
            .copied()
            .expect("orphan came from blocked set");
        let why = match src {
            None => "no live rank can satisfy a wildcard receive".to_string(),
            Some(s) if replay.killed_ev.get(s).map(|k| k.is_some()).unwrap_or(false) => {
                format!("rank {s} was killed and will never send")
            }
            Some(s) if replay.done_ev.get(s).map(|d| d.is_some()).unwrap_or(false) => {
                format!("rank {s} finished without sending")
            }
            Some(s) => format!("rank {s} is itself blocked"),
        };
        findings.push(
            "M003",
            Severity::Error,
            vec![rank],
            format!("orphan wait: rank {rank} blocks forever on a receive (tag {tag}) — {why}"),
        );
    }

    // --- (c) timeout hazards and dead letters: unconsumed sends ---
    for s in &replay.sends {
        if !s.ok || s.consumed_by.is_some() {
            continue;
        }
        if replay.killed_ev[s.dest].is_some() {
            // The destination died; the loss is charged to the kill and
            // shows up in the coverage report — accounted, not silent.
            stats.lost_to_kills += 1;
            continue;
        }
        // Did the destination give up a matching bounded receive?
        let timed_out = trace.events[s.dest].iter().any(|ev| {
            matches!(ev.kind, TraceKind::Timeout { src, tag }
                if tag == s.tag && src.map(|x| x == s.src).unwrap_or(true))
        });
        if timed_out {
            findings.push(
                "N001",
                Severity::Warning,
                vec![s.src, s.dest],
                format!(
                    "timeout hazard: rank {}'s receive (tag {}) gave up at its deadline while \
                     rank {}'s matching send was still in flight — under this fault plan the \
                     data silently became a lost subtree",
                    s.dest, s.tag, s.src
                ),
            );
        } else if replay.done_ev[s.dest].is_some() {
            findings.push(
                "N003",
                Severity::Warning,
                vec![s.src, s.dest],
                format!(
                    "dead letter: rank {} sent tag {} to rank {}, which finished without \
                     consuming it",
                    s.src, s.tag, s.dest
                ),
            );
        }
        // Otherwise the destination is blocked: M002/M003 cover it.
    }

    for ev in trace.events.iter().flatten() {
        if matches!(ev.kind, TraceKind::Timeout { .. }) {
            stats.timeouts += 1;
        }
    }

    Analysis {
        size,
        diagnostics: findings.finish(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn ev(kind: TraceKind, at_ns: u64) -> TraceEvent {
        TraceEvent { kind, at_ns }
    }

    fn send(dest: usize, tag: Tag) -> TraceKind {
        TraceKind::Send {
            dest,
            tag,
            ok: true,
        }
    }

    #[test]
    fn clock_laws_on_small_examples() {
        let mut a = VClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::new();
        b.tick(3);
        assert!(a.concurrent(&b));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.leq(&j) && b.leq(&j));
        assert_eq!(j.get(0), 2);
        assert_eq!(j.get(3), 1);
        assert_eq!(j.width(), 2);
        assert_eq!(a.partial_cmp_hb(&j), Some(std::cmp::Ordering::Less));
        assert_eq!(j.partial_cmp_hb(&a), Some(std::cmp::Ordering::Greater));
        assert_eq!(a.partial_cmp_hb(&a.clone()), Some(std::cmp::Ordering::Equal));
    }

    #[test]
    fn ordered_pipeline_is_clean() {
        // 0 sends to 1, 1 receives (named source) and finishes.
        let mut t = HbTrace::new(2);
        t.events[0] = vec![
            ev(TraceKind::Start, 0),
            ev(send(1, 5), 0),
            ev(TraceKind::Done, 0),
        ];
        t.events[1] = vec![
            ev(TraceKind::Start, 0),
            ev(
                TraceKind::Match {
                    src: 0,
                    tag: 5,
                    wildcard: false,
                },
                1000,
            ),
            ev(TraceKind::Done, 1000),
        ];
        let a = analyze(&t);
        assert!(a.is_clean(), "{:?}", a.diagnostics);
        assert_eq!(a.stats.match_edges, 1);
        // The match's clock dominates the send's.
        let c = clocks(&t);
        assert!(c[0][1].leq(&c[1][1]));
        assert!(!c[1][1].leq(&c[0][1]));
    }

    #[test]
    fn concurrent_wildcard_senders_race() {
        // Ranks 1 and 2 both send tag 7; rank 0 wildcard-receives both.
        let mut t = HbTrace::new(3);
        t.events[0] = vec![
            ev(TraceKind::Start, 0),
            ev(
                TraceKind::Match {
                    src: 1,
                    tag: 7,
                    wildcard: true,
                },
                1000,
            ),
            ev(
                TraceKind::Match {
                    src: 2,
                    tag: 7,
                    wildcard: true,
                },
                1000,
            ),
            ev(TraceKind::Done, 1000),
        ];
        for r in [1usize, 2] {
            t.events[r] = vec![
                ev(TraceKind::Start, 0),
                ev(send(0, 7), 0),
                ev(TraceKind::Done, 0),
            ];
        }
        let a = analyze(&t);
        assert!(a.diagnostics.iter().any(|d| d.code == "M001"), "{a:?}");
        assert_eq!(a.exit_code(false), 2);
    }

    #[test]
    fn hb_ordered_alternatives_warn_not_error() {
        // 1 sends to 0, then (causally after) tells 2 to send to 0;
        // rank 0 wildcard-receives both: alternatives are HB-ordered.
        let mut t = HbTrace::new(3);
        t.events[0] = vec![
            ev(TraceKind::Start, 0),
            ev(
                TraceKind::Match {
                    src: 1,
                    tag: 7,
                    wildcard: true,
                },
                1,
            ),
            ev(
                TraceKind::Match {
                    src: 2,
                    tag: 7,
                    wildcard: true,
                },
                2,
            ),
            ev(TraceKind::Done, 2),
        ];
        t.events[1] = vec![
            ev(TraceKind::Start, 0),
            ev(send(0, 7), 0),
            ev(send(2, 9), 0),
            ev(TraceKind::Done, 0),
        ];
        t.events[2] = vec![
            ev(TraceKind::Start, 0),
            ev(
                TraceKind::Match {
                    src: 1,
                    tag: 9,
                    wildcard: false,
                },
                1,
            ),
            ev(send(0, 7), 1),
            ev(TraceKind::Done, 1),
        ];
        let a = analyze(&t);
        assert!(
            a.diagnostics.iter().any(|d| d.code == "N002"),
            "{:?}",
            a.diagnostics
        );
        assert!(a.diagnostics.iter().all(|d| d.code != "M001"));
        assert_eq!(a.exit_code(false), 0);
        assert_eq!(a.exit_code(true), 1);
    }

    #[test]
    fn wait_cycle_is_named_exactly() {
        let mut t = HbTrace::new(3);
        for r in 0..3 {
            t.events[r] = vec![
                ev(TraceKind::Start, 0),
                ev(
                    TraceKind::WaitPost {
                        src: Some((r + 1) % 3),
                        tag: 1,
                        timeout_ns: None,
                    },
                    0,
                ),
            ];
        }
        let a = analyze(&t);
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == "M002")
            .expect("cycle found");
        assert_eq!(d.ranks, vec![0, 1, 2]);
        assert!(d.message.contains("0 -> 1 -> 2 -> 0"), "{}", d.message);
    }

    #[test]
    fn timeout_hazard_flags_the_late_send() {
        let mut t = HbTrace::new(2);
        t.events[0] = vec![
            ev(TraceKind::Start, 0),
            ev(
                TraceKind::WaitPost {
                    src: Some(1),
                    tag: 3,
                    timeout_ns: Some(10),
                },
                0,
            ),
            ev(TraceKind::Timeout { src: Some(1), tag: 3 }, 10),
            ev(TraceKind::Done, 10),
        ];
        t.events[1] = vec![
            ev(TraceKind::Start, 0),
            ev(send(0, 3), 500),
            ev(TraceKind::Done, 500),
        ];
        let a = analyze(&t);
        assert!(a.diagnostics.iter().any(|d| d.code == "N001"), "{a:?}");
        // The N001 supersedes a plain dead-letter report.
        assert!(a.diagnostics.iter().all(|d| d.code != "N003"));
    }

    #[test]
    fn kill_losses_are_informational() {
        let mut t = HbTrace::new(2);
        t.events[0] = vec![
            ev(TraceKind::Start, 0),
            ev(send(1, 3), 0),
            ev(TraceKind::Done, 0),
        ];
        t.events[1] = vec![ev(TraceKind::Start, 0), ev(TraceKind::Killed, 0)];
        let a = analyze(&t);
        assert!(a.is_clean(), "{:?}", a.diagnostics);
        assert_eq!(a.stats.lost_to_kills, 1);
        assert_eq!(a.stats.kills, 1);
    }

    #[test]
    fn orphan_wait_names_the_dead_peer() {
        let mut t = HbTrace::new(2);
        t.events[0] = vec![
            ev(TraceKind::Start, 0),
            ev(
                TraceKind::WaitPost {
                    src: Some(1),
                    tag: 2,
                    timeout_ns: None,
                },
                0,
            ),
        ];
        t.events[1] = vec![ev(TraceKind::Start, 0), ev(TraceKind::Killed, 0)];
        let a = analyze(&t);
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == "M003")
            .expect("orphan");
        assert!(d.message.contains("rank 1 was killed"), "{}", d.message);
    }

    #[test]
    fn find_wait_cycles_splits_cycles_and_orphans() {
        // 1 -> 2 -> 1 is a cycle; 5 waits on 1 (orphan); 6 waits on a
        // rank that is not blocked at all (orphan).
        let blocked = vec![
            (1, Some(2), 0),
            (2, Some(1), 0),
            (5, Some(1), 0),
            (6, Some(9), 0),
        ];
        let w = find_wait_cycles(&blocked);
        assert_eq!(w.cycles, vec![vec![1, 2]]);
        assert_eq!(w.orphans, vec![5, 6]);
    }
}
