//! Ranks as resumable state machines.
//!
//! The thread-per-rank world (`world.rs`) caps realistic runs at a few
//! hundred ranks: every simulated rank costs an OS thread, a stack, and
//! real wall-clock time for every timeout it waits out. To reach the
//! cluster-scale rank counts the paper measures (1 000–16 000), ranks
//! must instead be *resumable state machines*: a [`RankTask`] owns its
//! protocol state, is advanced one communication event at a time, and
//! between events occupies nothing but its own struct.
//!
//! The same task runs on two engines behind the [`Executor`] trait:
//!
//! * [`ThreadEngine`](crate::world::ThreadEngine) — one OS thread per
//!   rank, blocking channel receives, wall-clock timeouts. The original
//!   execution model; still the reference for equivalence tests.
//! * [`EventEngine`](crate::sched::EventEngine) — a deterministic
//!   virtual-clock event loop (see `sched.rs`): timeouts and delays are
//!   heap events costing zero wall-clock time, and 16k ranks fit in one
//!   process comfortably.
//!
//! The centerpiece task is [`ReduceTask`]: the paper's binomial-tree
//! reduction (§IV-C) with the fault-tolerant coverage semantics of
//! [`reduce_tree_resilient`](crate::collectives::reduce_tree_resilient),
//! generalized over a [`Topology`] — flat, or node-local two-level
//! pre-reduction (intra-node merge, then a cross-node binomial tree, as
//! in the Caliper/Benchpark MPI-communication-patterns study). Both the
//! blocking function and the event engine drive *this* state machine,
//! so there is exactly one implementation of the collective to trust.

use std::any::Any;
use std::time::Duration;

use crate::collectives::{ReduceCoverage, ResilienceOptions, TAG_RESIL};
use crate::comm::{CommError, Tag};
use crate::fault::FaultPlan;
use crate::sched::SchedError;
use crate::trace::TracedRun;

/// A type-erased message payload, exactly what the thread engine's
/// channels carry.
pub type Payload = Box<dyn Any + Send>;

/// One delivered message: source rank, tag, and the payload.
pub struct Msg {
    /// Sending rank.
    pub src: usize,
    /// Message tag.
    pub tag: Tag,
    /// Type-erased payload; the task downcasts to its protocol type.
    pub payload: Payload,
}

impl std::fmt::Debug for Msg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Msg(src {}, tag {:#x})", self.src, self.tag)
    }
}

/// What woke the task up: the reason [`RankTask::step`] is being called.
#[derive(Debug)]
pub enum Wake {
    /// First call; no receive is pending yet.
    Start,
    /// The pending receive matched this message.
    Message(Msg),
    /// The pending receive's timeout elapsed with no matching message.
    Timeout,
}

/// What the task wants next: returned from [`RankTask::step`].
#[derive(Debug)]
pub enum Action {
    /// Wait for a message matching `(src, tag)`; `src == None` matches
    /// any source. With a `timeout`, the engine wakes the task with
    /// [`Wake::Timeout`] if nothing matches in time — on the event
    /// engine that deadline is a virtual-clock event and costs no
    /// wall-clock time at all.
    Recv {
        /// Required source rank, or `None` for any.
        src: Option<usize>,
        /// Required tag.
        tag: Tag,
        /// Bound on the wait; `None` waits forever (the event engine
        /// reports a virtual deadlock if nothing can ever arrive).
        timeout: Option<Duration>,
    },
    /// The task is finished; the engine collects
    /// [`RankTask::into_output`].
    Done,
}

/// Engine services available to a task during a step.
///
/// Sends are non-blocking (buffered) on both engines and count as
/// communication ops for [`FaultPlan`] scripting, exactly like
/// [`Comm::send`](crate::Comm::send).
pub trait TaskCtx {
    /// This rank's id.
    fn rank(&self) -> usize;
    /// World size.
    fn size(&self) -> usize;
    /// Send `payload` to `dest`. Fails with
    /// [`CommError::Disconnected`] if `dest` is already dead.
    fn send(&mut self, dest: usize, tag: Tag, payload: Payload) -> Result<(), CommError>;
}

/// A rank as a resumable state machine.
///
/// The engine calls [`step`](RankTask::step) with the [`Wake`] that
/// resumed the task; the task performs any number of non-blocking sends
/// through the [`TaskCtx`] and returns the next [`Action`]. A task
/// must be driven by exactly one engine at a time; it never blocks.
pub trait RankTask: 'static {
    /// The per-rank result collected by [`Executor::run_tasks`].
    type Out;

    /// Advance the state machine by one event.
    fn step(&mut self, ctx: &mut dyn TaskCtx, wake: Wake) -> Action;

    /// Consume the task after it returned [`Action::Done`].
    fn into_output(self) -> Self::Out;
}

/// An execution engine: runs one [`RankTask`] per rank under a
/// [`FaultPlan`] and collects the outputs in rank order (`None` for
/// ranks the plan killed).
///
/// Both engines run the *same* task code; for any plan whose delays are
/// decisively smaller than the tasks' timeout budgets, their outputs
/// are byte-identical (pinned by the engine-equivalence proptests).
pub trait Executor {
    /// Engine name, for logs and CLI output.
    fn name(&self) -> &'static str;

    /// Run `make(rank, size)` tasks on all `size` ranks under `plan`.
    fn run_tasks<T, F>(&self, size: usize, plan: FaultPlan, make: F) -> Vec<Option<T::Out>>
    where
        T: RankTask + Send,
        T::Out: Send + 'static,
        F: Fn(usize, usize) -> T + Send + Sync + 'static;

    /// Like [`run_tasks`](Executor::run_tasks), but a detected
    /// scheduling failure is a structured [`SchedError`] instead of a
    /// panic. Only the event engine can *detect* a virtual deadlock
    /// (the thread engine's blocked ranks simply block); the default
    /// implementation therefore just delegates.
    fn try_run_tasks<T, F>(
        &self,
        size: usize,
        plan: FaultPlan,
        make: F,
    ) -> Result<Vec<Option<T::Out>>, SchedError>
    where
        T: RankTask + Send,
        T::Out: Send + 'static,
        F: Fn(usize, usize) -> T + Send + Sync + 'static,
    {
        Ok(self.run_tasks(size, plan, make))
    }

    /// Run with the happens-before trace hook armed (see
    /// [`crate::trace`]): returns the outputs *and* the recorded
    /// [`HbTrace`](crate::trace::HbTrace) for offline analysis. On the
    /// event engine the trace is deterministic (virtual timestamps,
    /// worker-pool invariant) and survives a deadlock; on the thread
    /// engine timestamps are wall-clock but the happens-before
    /// structure is faithful.
    fn run_tasks_traced<T, F>(&self, size: usize, plan: FaultPlan, make: F) -> TracedRun<T::Out>
    where
        T: RankTask + Send,
        T::Out: Send + 'static,
        F: Fn(usize, usize) -> T + Send + Sync + 'static;
}

/// Reduction tree shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// One binomial tree over all ranks (the paper's §IV-C scheme).
    Flat,
    /// Node-local two-level pre-reduction: ranks are grouped into nodes
    /// of `ranks_per_node` consecutive ranks; each node reduces to its
    /// first rank (the node leader) over an intra-node binomial tree,
    /// then the leaders reduce over a cross-node binomial tree. Models
    /// the intra-node shared-memory merge + inter-node network phase of
    /// real clusters; `ranks_per_node: 1` degenerates to
    /// [`Flat`](Topology::Flat).
    TwoLevel {
        /// Ranks per node; clamped to at least 1.
        ranks_per_node: usize,
    },
}

impl Topology {
    /// Parse `"flat"` or a node count into a topology for `size` ranks:
    /// `nodes` evenly divides ranks into that many nodes (rounding the
    /// per-node count up).
    pub fn two_level_for(size: usize, nodes: usize) -> Topology {
        let nodes = nodes.max(1);
        Topology::TwoLevel {
            ranks_per_node: size.div_ceil(nodes).max(1),
        }
    }
}

/// One round of a rank's reduction schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Round {
    /// Receive a partial result from `from` (tag `TAG_RESIL + level`).
    Recv { from: usize, level: u32 },
    /// Send the accumulated partial to `to` and retire.
    Send { to: usize, level: u32 },
}

fn ceil_log2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Binomial-tree rounds for participant `idx` of `n`, with tree levels
/// starting at `level_base` and participant indices mapped to global
/// ranks through `map`.
fn binomial_rounds(
    idx: usize,
    n: usize,
    level_base: u32,
    map: impl Fn(usize) -> usize,
) -> Vec<Round> {
    let mut rounds = Vec::new();
    let mut step = 1usize;
    let mut level = level_base;
    while step < n {
        if idx.is_multiple_of(2 * step) {
            if idx + step < n {
                rounds.push(Round::Recv {
                    from: map(idx + step),
                    level,
                });
            }
        } else {
            rounds.push(Round::Send {
                to: map(idx - step),
                level,
            });
            break;
        }
        step *= 2;
        level += 1;
    }
    rounds
}

/// The complete, deterministic reduction schedule of `rank` in a world
/// of `size` under `topology`. Every non-root rank's schedule ends in
/// exactly one `Send`; rank 0's never sends (it is the root).
///
/// Level numbers are globally consistent — a `Recv { from, level }`
/// pairs with `from`'s `Send { level }` on tag `TAG_RESIL + level` —
/// and strictly increase along every rank's schedule, so the per-level
/// timeout doubling of [`ResilienceOptions`] stays sound: the budget at
/// a level strictly exceeds the sum of all lower-level budgets.
pub(crate) fn reduce_schedule(rank: usize, size: usize, topology: Topology) -> Vec<Round> {
    match topology {
        Topology::Flat => binomial_rounds(rank, size, 0, |r| r),
        Topology::TwoLevel { ranks_per_node } => {
            let rpn = ranks_per_node.max(1);
            let node = rank / rpn;
            let local = rank % rpn;
            let base = node * rpn;
            let node_size = rpn.min(size - base);
            // All nodes share one level numbering sized for the largest
            // node, so intra- and cross-node tags can never collide.
            let intra_levels = ceil_log2(rpn);
            let mut rounds = binomial_rounds(local, node_size, 0, |i| base + i);
            if local == 0 {
                let nnodes = size.div_ceil(rpn);
                rounds.extend(binomial_rounds(node, nnodes, intra_levels, |n| n * rpn));
            }
            rounds
        }
    }
}

/// The fault-tolerant tree reduction as a [`RankTask`] — the single
/// implementation behind
/// [`reduce_tree_resilient`](crate::collectives::reduce_tree_resilient)
/// (blocking, thread engine) and every event-engine reduction.
///
/// Semantics are those documented on `reduce_tree_resilient`: bounded,
/// retried receives with per-level budget doubling; silent partners are
/// written off with their whole subtree; the payload carries the set of
/// ranks folded in, so the root's [`ReduceCoverage`] is exact. `init`
/// produces the rank's local value lazily on the first step, so on the
/// event engine the (possibly expensive) local phase runs inside the
/// scheduler's worker pool.
pub struct ReduceTask<T, F, I> {
    rank: usize,
    size: usize,
    schedule: Vec<Round>,
    next_round: usize,
    init: Option<I>,
    merge: F,
    opts: ResilienceOptions,
    attempt: u32,
    acc: Option<T>,
    included: Vec<usize>,
    out: Option<Option<(T, ReduceCoverage)>>,
}

impl<T, F, I> ReduceTask<T, F, I>
where
    T: Send + 'static,
    F: FnMut(T, T) -> T + Send + 'static,
    I: FnOnce() -> T + Send + 'static,
{
    /// Build the task for `rank` of `size` under `topology`.
    pub fn new(
        rank: usize,
        size: usize,
        topology: Topology,
        init: I,
        merge: F,
        opts: ResilienceOptions,
    ) -> ReduceTask<T, F, I> {
        assert!(size > 0, "world size must be positive");
        assert!(rank < size, "rank {rank} out of range for size {size}");
        ReduceTask {
            rank,
            size,
            schedule: reduce_schedule(rank, size, topology),
            next_round: 0,
            init: Some(init),
            merge,
            opts,
            attempt: 0,
            acc: None,
            included: Vec::new(),
            out: None,
        }
    }

    /// The bounded wait for the current attempt at `level` (linear
    /// backoff, scaled by the per-level doubling).
    fn wait_for(&self, level: u32) -> Duration {
        let level_opts = self.opts.at_level(level);
        level_opts.timeout + level_opts.backoff * self.attempt
    }

    /// Move to the next blocking receive, retirement, or completion.
    fn advance(&mut self, ctx: &mut dyn TaskCtx) -> Action {
        if let Some(&round) = self.schedule.get(self.next_round) {
            match round {
                Round::Recv { from, level } => {
                    self.attempt = 0;
                    return Action::Recv {
                        src: Some(from),
                        tag: TAG_RESIL + level,
                        timeout: Some(self.wait_for(level)),
                    };
                }
                Round::Send { to, level } => {
                    let acc = self.acc.take().expect("sender holds a value");
                    let included = std::mem::take(&mut self.included);
                    // A failed send means the parent is already dead:
                    // this subtree is stranded and shows up in the
                    // root's lost set — exactly the wanted semantics,
                    // so the error is swallowed and the rank retires.
                    let _ = ctx.send(to, TAG_RESIL + level, Box::new((acc, included)));
                    self.next_round = self.schedule.len();
                    self.out = Some(None);
                    return Action::Done;
                }
            }
        }
        // Schedule exhausted without a Send: this rank is the root.
        let acc = self.acc.take().expect("root holds the merged value");
        let mut included = std::mem::take(&mut self.included);
        included.sort_unstable();
        included.dedup();
        let lost = (0..self.size).filter(|r| !included.contains(r)).collect();
        self.out = Some(Some((acc, ReduceCoverage { included, lost })));
        Action::Done
    }
}

impl<T, F, I> RankTask for ReduceTask<T, F, I>
where
    T: Send + 'static,
    F: FnMut(T, T) -> T + Send + 'static,
    I: FnOnce() -> T + Send + 'static,
{
    type Out = Option<(T, ReduceCoverage)>;

    fn step(&mut self, ctx: &mut dyn TaskCtx, wake: Wake) -> Action {
        match wake {
            Wake::Start => {
                let init = self.init.take().expect("start wake arrives once");
                self.acc = Some(init());
                self.included.push(self.rank);
                self.advance(ctx)
            }
            Wake::Message(msg) => {
                let (theirs, their_ranks) = *msg
                    .payload
                    .downcast::<(T, Vec<usize>)>()
                    .unwrap_or_else(|_| {
                        panic!("type mismatch on reduce payload from rank {}", msg.src)
                    });
                let mine = self.acc.take().expect("receiver holds a value");
                self.acc = Some((self.merge)(mine, theirs));
                self.included.extend(their_ranks);
                self.next_round += 1;
                self.advance(ctx)
            }
            Wake::Timeout => {
                let Some(&Round::Recv { from, level }) = self.schedule.get(self.next_round) else {
                    panic!("timeout wake outside a receive round");
                };
                self.attempt += 1;
                if self.attempt <= self.opts.retries {
                    // Retries exist for stragglers, not corpses: a
                    // delayed partner's message arrives during a retry.
                    Action::Recv {
                        src: Some(from),
                        tag: TAG_RESIL + level,
                        timeout: Some(self.wait_for(level)),
                    }
                } else {
                    // Partner presumed dead; continue without its
                    // subtree — its ranks never reach any included
                    // list, so the root charges the loss exactly.
                    self.next_round += 1;
                    self.advance(ctx)
                }
            }
        }
    }

    fn into_output(self) -> Self::Out {
        self.out.expect("task is done")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recv_from(rounds: &[Round]) -> Vec<usize> {
        rounds
            .iter()
            .filter_map(|r| match r {
                Round::Recv { from, .. } => Some(*from),
                Round::Send { .. } => None,
            })
            .collect()
    }

    #[test]
    fn flat_schedule_is_the_binomial_tree() {
        assert_eq!(recv_from(&reduce_schedule(0, 8, Topology::Flat)), vec![1, 2, 4]);
        assert_eq!(
            reduce_schedule(3, 8, Topology::Flat),
            vec![Round::Send { to: 2, level: 0 }]
        );
        assert_eq!(
            reduce_schedule(2, 8, Topology::Flat),
            vec![
                Round::Recv { from: 3, level: 0 },
                Round::Send { to: 0, level: 1 }
            ]
        );
        assert!(reduce_schedule(0, 1, Topology::Flat).is_empty());
    }

    #[test]
    fn two_level_with_rpn_one_degenerates_to_flat() {
        for size in [1, 2, 3, 8, 13] {
            for rank in 0..size {
                assert_eq!(
                    reduce_schedule(rank, size, Topology::TwoLevel { ranks_per_node: 1 }),
                    reduce_schedule(rank, size, Topology::Flat),
                    "rank {rank} of {size}"
                );
            }
        }
    }

    #[test]
    fn two_level_schedules_pair_up() {
        // Every Send must have exactly one matching Recv on the same
        // (level, peer) pair, for several sizes and node widths.
        for (size, rpn) in [(8, 4), (13, 4), (16, 3), (9, 2), (5, 8), (64, 8)] {
            let topo = Topology::TwoLevel { ranks_per_node: rpn };
            let mut sends = Vec::new();
            let mut recvs = Vec::new();
            for rank in 0..size {
                for round in reduce_schedule(rank, size, topo) {
                    match round {
                        Round::Send { to, level } => sends.push((rank, to, level)),
                        Round::Recv { from, level } => recvs.push((from, rank, level)),
                    }
                }
            }
            sends.sort_unstable();
            recvs.sort_unstable();
            assert_eq!(sends, recvs, "size {size}, rpn {rpn}");
            // Exactly one sender per non-root rank.
            let mut senders: Vec<usize> = sends.iter().map(|&(s, _, _)| s).collect();
            senders.sort_unstable();
            senders.dedup();
            assert_eq!(senders, (1..size).collect::<Vec<_>>());
        }
    }

    #[test]
    fn two_level_levels_increase_along_every_schedule() {
        for (size, rpn) in [(16, 4), (13, 4), (64, 8)] {
            let topo = Topology::TwoLevel { ranks_per_node: rpn };
            for rank in 0..size {
                let rounds = reduce_schedule(rank, size, topo);
                let levels: Vec<u32> = rounds
                    .iter()
                    .map(|r| match r {
                        Round::Recv { level, .. } | Round::Send { level, .. } => *level,
                    })
                    .collect();
                assert!(
                    levels.windows(2).all(|w| w[0] < w[1]),
                    "rank {rank} of {size} rpn {rpn}: {levels:?}"
                );
            }
        }
    }
}
