//! Structured happens-before communication traces.
//!
//! Both execution engines can record, behind a hook that costs nothing
//! when disarmed, every communication-relevant event a rank performs:
//! sends (including refused sends to dead peers), receive posts,
//! matches, timeout firings, scripted kills, and task completion. The
//! result is an [`HbTrace`]: one event list per rank, in that rank's
//! program order, which is exactly the input the offline
//! happens-before analyzer ([`crate::hb`]) needs — program order plus
//! the match/kill edges recoverable from the events themselves.
//!
//! On the [`EventEngine`](crate::sched::EventEngine) the trace is
//! **deterministic**: events are recorded while effects are applied in
//! rank order, timestamps are virtual nanoseconds, and the whole trace
//! is byte-identical for any worker-pool size (pinned by tests). On the
//! [`ThreadEngine`](crate::world::ThreadEngine) per-rank order is exact
//! but timestamps are wall-clock nanoseconds and therefore vary run to
//! run; the happens-before *structure* (which the analyzer consumes) is
//! still faithful.
//!
//! The trace doubles as a dataset: [`HbTrace::write_cali`] renders it
//! as text `.cali` records (`mpisim.rank`, `hb.event`, `hb.time.ns`,
//! `hb.clock`, `hb.peer`, `hb.tag`) so `cali-query` can aggregate a
//! communication schedule like any other profile.

use std::io::{self, Write};
use std::sync::Mutex;
use std::time::Instant;

use crate::comm::Tag;

/// What one recorded communication event was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// The rank's first wake.
    Start,
    /// A send to `dest` with `tag`; `ok` is false when the send was
    /// refused because `dest` was already observably dead (the refusal
    /// is how a kill propagates into the sender's timeline).
    Send {
        /// Destination rank.
        dest: usize,
        /// Message tag.
        tag: Tag,
        /// False when the destination was already dead.
        ok: bool,
    },
    /// A receive was posted and did not match a buffered message: the
    /// rank blocked waiting for `(src, tag)` (`src == None` is a
    /// wildcard), bounded by `timeout_ns` when given.
    WaitPost {
        /// Required source, or `None` for a wildcard receive.
        src: Option<usize>,
        /// Required tag.
        tag: Tag,
        /// Virtual-nanosecond bound on the wait, if any.
        timeout_ns: Option<u64>,
    },
    /// A receive completed by consuming a message from `src` with
    /// `tag`. `wildcard` records whether the posted receive named its
    /// source (`false`) or matched any source (`true`) — the property
    /// that decides whether alternative matches are a schedule hazard.
    Match {
        /// Actual source of the consumed message.
        src: usize,
        /// Message tag.
        tag: Tag,
        /// True when the receive was posted with a wildcard source.
        wildcard: bool,
    },
    /// A bounded receive for `(src, tag)` gave up at its deadline.
    Timeout {
        /// Required source, or `None` for a wildcard receive.
        src: Option<usize>,
        /// Required tag.
        tag: Tag,
    },
    /// The fault plan killed the rank at this point; its clock freezes
    /// here — no later event can ever belong to this rank.
    Killed,
    /// The rank's task completed normally.
    Done,
}

impl TraceKind {
    /// Short stable name, used by the `.cali` dump and reports.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::Start => "start",
            TraceKind::Send { ok: true, .. } => "send",
            TraceKind::Send { ok: false, .. } => "send-refused",
            TraceKind::WaitPost { .. } => "wait",
            TraceKind::Match { .. } => "match",
            TraceKind::Timeout { .. } => "timeout",
            TraceKind::Killed => "killed",
            TraceKind::Done => "done",
        }
    }

    /// The peer rank this event names, if any (send destination, match
    /// source, or a named wait/timeout source).
    pub fn peer(&self) -> Option<usize> {
        match *self {
            TraceKind::Send { dest, .. } => Some(dest),
            TraceKind::Match { src, .. } => Some(src),
            TraceKind::WaitPost { src, .. } | TraceKind::Timeout { src, .. } => src,
            _ => None,
        }
    }

    /// The message tag this event names, if any.
    pub fn tag(&self) -> Option<Tag> {
        match *self {
            TraceKind::Send { tag, .. }
            | TraceKind::WaitPost { tag, .. }
            | TraceKind::Match { tag, .. }
            | TraceKind::Timeout { tag, .. } => Some(tag),
            _ => None,
        }
    }
}

/// One recorded event: what happened and when (virtual nanoseconds on
/// the event engine, wall-clock nanoseconds since run start on the
/// thread engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The event.
    pub kind: TraceKind,
    /// Timestamp in nanoseconds (virtual or wall-clock; see module docs).
    pub at_ns: u64,
}

/// A complete happens-before trace of one run: per-rank event lists in
/// program order. Build one with the engines' `run_tasks_traced`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HbTrace {
    /// One event list per rank, in that rank's program order.
    pub events: Vec<Vec<TraceEvent>>,
}

impl HbTrace {
    /// An empty trace for `size` ranks.
    pub fn new(size: usize) -> HbTrace {
        HbTrace {
            events: (0..size).map(|_| Vec::new()).collect(),
        }
    }

    /// Number of ranks in the traced world.
    pub fn size(&self) -> usize {
        self.events.len()
    }

    /// Total number of recorded events.
    pub fn len(&self) -> usize {
        self.events.iter().map(Vec::len).sum()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Publish `mpisim.hb.*` event/edge counters for this trace into
    /// the process-global metrics registry (volatile class: counts
    /// depend on world size and faults, not on thread/worker counts —
    /// but not on anything stable across different runs either).
    pub fn record_metrics(&self) {
        let mut events = 0u64;
        let mut matches = 0u64;
        let mut timeouts = 0u64;
        let mut kill_edges = 0u64;
        for ev in self.events.iter().flatten() {
            events += 1;
            match ev.kind {
                TraceKind::Match { .. } => matches += 1,
                TraceKind::Timeout { .. } => timeouts += 1,
                TraceKind::Send { ok: false, .. } => kill_edges += 1,
                _ => {}
            }
        }
        let m = caliper_data::metrics::global();
        m.counter_volatile("mpisim.hb.events").add(events);
        m.counter_volatile("mpisim.hb.edges.match").add(matches);
        m.counter_volatile("mpisim.hb.edges.wake")
            .add(matches + timeouts);
        m.counter_volatile("mpisim.hb.edges.kill").add(kill_edges);
    }

    /// Render the trace as text `.cali` records: one snapshot per
    /// event carrying `mpisim.rank`, `hb.event`, `hb.time.ns`,
    /// `hb.clock` (the rank's own clock component, i.e. the event's
    /// 1-based position in its rank's program order), and — when the
    /// event names them — `hb.peer` and `hb.tag`. The output is a
    /// well-formed `.cali` stream `cali-query` aggregates directly.
    pub fn write_cali(&self, mut out: impl Write) -> io::Result<()> {
        writeln!(
            out,
            "__rec=attr,id=0,name=mpisim.rank,type=int,prop=asvalue"
        )?;
        writeln!(out, "__rec=attr,id=1,name=hb.event,type=string,prop=asvalue")?;
        writeln!(
            out,
            "__rec=attr,id=2,name=hb.time.ns,type=uint,prop=asvalue\\,aggregatable"
        )?;
        writeln!(
            out,
            "__rec=attr,id=3,name=hb.clock,type=uint,prop=asvalue\\,aggregatable"
        )?;
        writeln!(out, "__rec=attr,id=4,name=hb.peer,type=int,prop=asvalue")?;
        writeln!(out, "__rec=attr,id=5,name=hb.tag,type=uint,prop=asvalue")?;
        for (rank, events) in self.events.iter().enumerate() {
            for (i, ev) in events.iter().enumerate() {
                write!(
                    out,
                    "__rec=ctx,attr=0,data={rank},attr=1,data={},attr=2,data={},attr=3,data={}",
                    ev.kind.name(),
                    ev.at_ns,
                    i + 1
                )?;
                if let Some(peer) = ev.kind.peer() {
                    write!(out, ",attr=4,data={peer}")?;
                }
                if let Some(tag) = ev.kind.tag() {
                    write!(out, ",attr=5,data={tag}")?;
                }
                writeln!(out)?;
            }
        }
        Ok(())
    }

    /// [`write_cali`](HbTrace::write_cali) into a fresh string.
    pub fn to_cali_string(&self) -> String {
        let mut buf = Vec::new();
        self.write_cali(&mut buf).expect("write to Vec cannot fail");
        String::from_utf8(buf).expect("trace dump is ASCII")
    }
}

/// The outcome of a traced run: the per-rank outputs (or the structured
/// scheduler error a deadlocked event-engine run ends in), the
/// scheduler stats when the engine has them, and the recorded trace —
/// which is present *even when the run deadlocked*, so the analyzer can
/// name the wait cycle.
#[derive(Debug)]
pub struct TracedRun<Out> {
    /// Per-rank outputs in rank order (`None` for killed ranks), or
    /// the scheduler error that ended the run.
    pub outputs: Result<Vec<Option<Out>>, crate::sched::SchedError>,
    /// Event-engine scheduler stats; `None` on the thread engine.
    pub stats: Option<crate::sched::SchedStats>,
    /// The recorded happens-before trace.
    pub trace: HbTrace,
}

/// Shared trace collector for the thread engine: one mutex-guarded
/// event list per rank, so recording never contends across ranks, and a
/// common clock origin for wall-clock timestamps.
#[derive(Debug)]
pub(crate) struct SharedTrace {
    lanes: Vec<Mutex<Vec<TraceEvent>>>,
    t0: Instant,
}

impl SharedTrace {
    pub(crate) fn new(size: usize) -> SharedTrace {
        SharedTrace {
            lanes: (0..size).map(|_| Mutex::new(Vec::new())).collect(),
            t0: Instant::now(),
        }
    }

    /// Record `kind` for `rank`, stamped with wall-clock nanoseconds
    /// since the collector was created.
    pub(crate) fn record(&self, rank: usize, kind: TraceKind) {
        let at_ns = self.t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut lane = match self.lanes[rank].lock() {
            Ok(lane) => lane,
            Err(poisoned) => poisoned.into_inner(),
        };
        lane.push(TraceEvent { kind, at_ns });
    }

    /// Consume the collector into an [`HbTrace`].
    pub(crate) fn into_trace(self) -> HbTrace {
        HbTrace {
            events: self
                .lanes
                .into_iter()
                .map(|lane| match lane.into_inner() {
                    Ok(events) => events,
                    Err(poisoned) => poisoned.into_inner(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cali_dump_is_wellformed_and_readable() {
        let mut trace = HbTrace::new(2);
        trace.events[0].push(TraceEvent {
            kind: TraceKind::Start,
            at_ns: 0,
        });
        trace.events[0].push(TraceEvent {
            kind: TraceKind::Send {
                dest: 1,
                tag: 7,
                ok: true,
            },
            at_ns: 10,
        });
        trace.events[1].push(TraceEvent {
            kind: TraceKind::Match {
                src: 0,
                tag: 7,
                wildcard: false,
            },
            at_ns: 1_010,
        });
        let text = trace.to_cali_string();
        let ds = caliper_format::cali::from_bytes(text.as_bytes()).expect("dump parses");
        assert_eq!(ds.len(), 3);
        assert!(text.contains("attr=1,data=send,"));
        assert!(text.contains("attr=4,data=1"));
    }

    #[test]
    fn shared_trace_collects_per_rank_in_order() {
        let shared = SharedTrace::new(2);
        shared.record(1, TraceKind::Start);
        shared.record(0, TraceKind::Start);
        shared.record(1, TraceKind::Done);
        let trace = shared.into_trace();
        assert_eq!(trace.events[1].len(), 2);
        assert_eq!(trace.events[1][0].kind, TraceKind::Start);
        assert_eq!(trace.events[1][1].kind, TraceKind::Done);
        assert_eq!(trace.len(), 3);
    }
}
