//! Failure injection for the simulated MPI world: scripted rank deaths
//! and delays against the tree reduction.
//!
//! The deadlock regression and lost-set tests here pin the failure
//! model documented in DESIGN.md: a dead rank makes its parent's
//! bounded receive time out (never hang), and the resilient reduction
//! reports *exactly* which ranks' contributions the merged result
//! covers.

use std::time::{Duration, Instant};

use mpisim::{
    reduce_tree, reduce_tree_resilient, reduce_tree_timeout, FaultPlan, ReduceCoverage,
    ResilienceOptions, run, run_with_faults,
};

/// Runs `f` on a watchdog thread; panics if it does not finish within
/// `limit`. Guards the deadlock-regression tests: if bounded receives
/// regress into unbounded ones, the test fails instead of hanging the
/// whole suite.
fn with_deadline<R: Send + 'static>(limit: Duration, f: impl FnOnce() -> R + Send + 'static) -> R {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(limit)
        .expect("world did not finish within the deadline: deadlock regression")
}

fn quick_opts() -> ResilienceOptions {
    ResilienceOptions {
        timeout: Duration::from_millis(100),
        retries: 1,
        backoff: Duration::from_millis(50),
    }
}

/// One rank-bit per contribution: the merged value states exactly which
/// ranks were folded in, so coverage claims are checkable bit-for-bit.
fn rank_bit(rank: usize) -> u64 {
    1u64 << rank
}

fn bits_of(ranks: &[usize]) -> u64 {
    ranks.iter().map(|&r| rank_bit(r)).fold(0, |a, b| a | b)
}

#[test]
fn killed_rank_turns_deadlock_into_timeout() {
    // Rank 1's only role in the 4-rank tree is to send to rank 0 at
    // level 0. Killing it at its first comm op leaves rank 0 waiting on
    // a message that never comes: a plain reduce_tree would hang, the
    // bounded variant must report a timeout promptly.
    let results = with_deadline(Duration::from_secs(20), || {
        run_with_faults(4, FaultPlan::new().kill(1, 0), |mut comm| {
            let t0 = Instant::now();
            let mine = rank_bit(comm.rank());
            let out = reduce_tree_timeout(&mut comm, mine, |a, b| a | b, Duration::from_millis(100));
            (out, t0.elapsed())
        })
    });
    assert!(results[1].is_none(), "killed rank must not return");
    let (root_result, root_elapsed) = results[0].as_ref().unwrap();
    let err = root_result.as_ref().unwrap_err();
    assert!(err.is_timeout(), "expected a timeout, got: {err}");
    assert!(
        *root_elapsed < Duration::from_secs(10),
        "timeout took {root_elapsed:?}: the wait is not bounded"
    );
    // Ranks 2 and 3 are upstream of the failure at level 0 and finish
    // their sends/receives; rank 2's final send races rank 0's teardown
    // so either a clean retirement or a disconnect is acceptable — the
    // only outlawed outcome is a hang (covered by the deadline).
    assert!(results[3].is_some());
}

#[test]
fn resilient_reduction_reports_a_killed_leaf_exactly() {
    let results = with_deadline(Duration::from_secs(20), || {
        run_with_faults(8, FaultPlan::new().kill(5, 0), |mut comm| {
            let mine = rank_bit(comm.rank());
            reduce_tree_resilient(&mut comm, mine, |a, b| a | b, &quick_opts())
        })
    });
    let (merged, coverage) = results[0]
        .as_ref()
        .unwrap()
        .as_ref()
        .unwrap()
        .as_ref()
        .unwrap();
    assert_eq!(coverage.lost, vec![5], "exact lost set");
    assert_eq!(coverage.included, vec![0, 1, 2, 3, 4, 6, 7]);
    assert_eq!(*merged, bits_of(&coverage.included));
    assert!(!coverage.is_complete());
}

#[test]
fn resilient_reduction_loses_a_dead_internal_nodes_subtree() {
    // Rank 2's comm ops in an 8-rank tree: op 0 = recv from rank 3
    // (level 0), op 1 = send to rank 0 (level 1). Killing it at op 1
    // means it dies *holding* rank 3's contribution — the classic
    // mid-protocol failure. The root must charge the whole {2, 3}
    // subtree as lost, and the merged value must cover exactly the
    // survivors' contributions.
    let results = with_deadline(Duration::from_secs(20), || {
        run_with_faults(8, FaultPlan::new().kill(2, 1), |mut comm| {
            let mine = rank_bit(comm.rank());
            reduce_tree_resilient(&mut comm, mine, |a, b| a | b, &quick_opts())
        })
    });
    assert!(results[2].is_none());
    let (merged, coverage) = results[0]
        .as_ref()
        .unwrap()
        .as_ref()
        .unwrap()
        .as_ref()
        .unwrap();
    assert_eq!(coverage.lost, vec![2, 3]);
    assert_eq!(coverage.included, vec![0, 1, 4, 5, 6, 7]);
    assert_eq!(*merged, bits_of(&coverage.included));
}

#[test]
fn resilient_matches_plain_reduction_when_fault_free() {
    for size in [1usize, 2, 3, 5, 8, 13] {
        let resilient = run(size, |mut comm| {
            let mine = rank_bit(comm.rank());
            reduce_tree_resilient(&mut comm, mine, |a, b| a | b, &ResilienceOptions::default())
                .unwrap()
        });
        let plain = run(size, |mut comm| {
            let mine = rank_bit(comm.rank());
            reduce_tree(&mut comm, mine, |a, b| a | b).unwrap()
        });
        let (merged, coverage) = resilient[0].clone().unwrap();
        assert_eq!(Some(merged), plain[0], "size {size}");
        assert!(coverage.is_complete(), "size {size}: {coverage:?}");
        assert_eq!(coverage.included, (0..size).collect::<Vec<_>>());
        assert!(resilient[1..].iter().all(Option::is_none));
    }
}

#[test]
fn delayed_straggler_is_still_included() {
    // Rank 1 stalls 150ms before its send; a single 100ms receive
    // attempt would give up, but the retry budget (100 + 150 = 250ms
    // total) comfortably covers the straggler. Nothing may be lost.
    let opts = quick_opts();
    assert!(opts.total_wait() > Duration::from_millis(150));
    let results = with_deadline(Duration::from_secs(20), move || {
        run_with_faults(
            4,
            FaultPlan::new().delay(1, 0, Duration::from_millis(150)),
            move |mut comm| {
                let mine = rank_bit(comm.rank());
                reduce_tree_resilient(&mut comm, mine, |a, b| a | b, &opts)
            },
        )
    });
    let (merged, coverage) = results[0]
        .as_ref()
        .unwrap()
        .as_ref()
        .unwrap()
        .as_ref()
        .unwrap();
    assert!(coverage.is_complete(), "{coverage:?}");
    assert_eq!(*merged, bits_of(&[0, 1, 2, 3]));
}

#[test]
fn every_single_rank_kill_is_self_consistent() {
    // Whatever single non-root rank dies, and whenever (op 0 or 1), the
    // root's answer must satisfy the coverage invariants: included and
    // lost partition the world, the killed rank is lost, and the merged
    // bits equal exactly the included set.
    let size = 8usize;
    for victim in 1..size {
        // Leaves (odd ranks) issue exactly one comm op (their level-0
        // send); internal nodes issue at least two. Only script kills
        // at ops the victim actually reaches.
        let victim_ops = if victim % 2 == 1 { 1 } else { 2 };
        for op in 0..victim_ops as u64 {
            let results = with_deadline(Duration::from_secs(30), move || {
                run_with_faults(size, FaultPlan::new().kill(victim, op), |mut comm| {
                    let mine = rank_bit(comm.rank());
                    reduce_tree_resilient(&mut comm, mine, |a, b| a | b, &quick_opts())
                })
            });
            assert!(results[victim].is_none(), "victim {victim} op {op}");
            let root = results[0].as_ref().unwrap().as_ref().unwrap();
            let (merged, ReduceCoverage { included, lost }) = root.as_ref().unwrap();
            let mut all: Vec<usize> = included.iter().chain(lost.iter()).copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..size).collect::<Vec<_>>(), "victim {victim} op {op}");
            assert!(lost.contains(&victim), "victim {victim} op {op}: {lost:?}");
            assert_eq!(*merged, bits_of(included), "victim {victim} op {op}");
        }
    }
}
