//! Vector-clock laws and clock edge cases of the happens-before
//! analyzer, on both synthetic clocks (proptest) and real traces.

use std::time::Duration;

use mpisim::hb::{self, VClock};
use mpisim::{EventEngine, FaultPlan, ReduceTask, ResilienceOptions, Topology, TraceKind};
use proptest::prelude::*;

/// Build a clock from a dense assignment: `ticks[r]` ticks of rank `r`.
fn clock_of(ticks: &[u64]) -> VClock {
    let mut c = VClock::new();
    for (rank, &n) in ticks.iter().enumerate() {
        for _ in 0..n {
            c.tick(rank);
        }
    }
    c
}

fn dense_clock(max_ranks: usize, max_ticks: u64) -> impl Strategy<Value = VClock> {
    proptest::collection::vec(0..=max_ticks, 1..=max_ranks).prop_map(|t| clock_of(&t))
}

proptest! {
    /// `leq` is a partial order: reflexive, antisymmetric, transitive.
    #[test]
    fn leq_is_a_partial_order(
        a in dense_clock(6, 4),
        b in dense_clock(6, 4),
        c in dense_clock(6, 4),
    ) {
        prop_assert!(a.leq(&a));
        if a.leq(&b) && b.leq(&a) {
            prop_assert_eq!(&a, &b);
        }
        if a.leq(&b) && b.leq(&c) {
            prop_assert!(a.leq(&c));
        }
    }

    /// `join` is the least upper bound: an upper bound of both inputs,
    /// and ≤ any other upper bound.
    #[test]
    fn join_is_the_least_upper_bound(
        a in dense_clock(6, 4),
        b in dense_clock(6, 4),
        other in dense_clock(6, 6),
    ) {
        let mut j = a.clone();
        j.join(&b);
        prop_assert!(a.leq(&j));
        prop_assert!(b.leq(&j));
        // Component-wise, the join takes exactly the max.
        for rank in 0..8 {
            prop_assert_eq!(j.get(rank), a.get(rank).max(b.get(rank)));
        }
        if a.leq(&other) && b.leq(&other) {
            prop_assert!(j.leq(&other));
        }
    }

    /// `join` is commutative, associative, and idempotent.
    #[test]
    fn join_laws(
        a in dense_clock(6, 4),
        b in dense_clock(6, 4),
        c in dense_clock(6, 4),
    ) {
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        prop_assert_eq!(&ab, &ba);

        let mut ab_c = ab.clone();
        ab_c.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut a_bc = a.clone();
        a_bc.join(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        let mut aa = a.clone();
        aa.join(&a);
        prop_assert_eq!(&aa, &a);
    }

    /// `partial_cmp_hb` and `concurrent` agree with `leq`.
    #[test]
    fn comparison_views_agree(a in dense_clock(6, 4), b in dense_clock(6, 4)) {
        use std::cmp::Ordering;
        match a.partial_cmp_hb(&b) {
            Some(Ordering::Equal) => prop_assert!(a.leq(&b) && b.leq(&a)),
            Some(Ordering::Less) => prop_assert!(a.leq(&b) && !b.leq(&a)),
            Some(Ordering::Greater) => prop_assert!(b.leq(&a) && !a.leq(&b)),
            None => prop_assert!(!a.leq(&b) && !b.leq(&a)),
        }
        prop_assert_eq!(a.concurrent(&b), a.partial_cmp_hb(&b).is_none());
    }
}

/// A 1-rank world has a trivial linear trace: every event's clock is
/// strictly below the next, and the analysis is clean.
#[test]
fn one_rank_world_is_linear_and_clean() {
    let engine = EventEngine::default();
    let run = engine.run_tasks_traced(1, FaultPlan::new(), |rank, size| {
        ReduceTask::new(
            rank,
            size,
            Topology::Flat,
            move || 1u64,
            |a: u64, b: u64| a + b,
            ResilienceOptions::default(),
        )
    });
    assert_eq!(run.trace.size(), 1);
    let clocks = hb::clocks(&run.trace);
    for pair in clocks[0].windows(2) {
        assert!(pair[0].leq(&pair[1]) && pair[0] != pair[1], "program order must advance the clock");
    }
    let analysis = mpisim::analyze(&run.trace);
    assert!(analysis.is_clean(), "{}", analysis.render());
}

/// A killed rank's clock freezes at its kill: the `Killed` event is its
/// last, and its own component never advances afterwards anywhere.
#[test]
fn killed_ranks_clocks_freeze_at_kill_time() {
    // Rank 4 in a flat 16-rank binomial tree receives twice before its
    // send, so killing at its second op leaves a partial trace behind.
    let victim = 4;
    let engine = EventEngine::default();
    let plan = FaultPlan::new().kill(victim, 1);
    let run = engine.run_tasks_traced(16, plan, |rank, size| {
        ReduceTask::new(
            rank,
            size,
            Topology::Flat,
            move || 1u64,
            |a: u64, b: u64| a + b,
            ResilienceOptions {
                timeout: Duration::from_millis(20),
                ..ResilienceOptions::default()
            },
        )
    });
    let events = &run.trace.events[victim];
    assert!(
        matches!(events.last().map(|e| &e.kind), Some(TraceKind::Killed)),
        "the kill must be the victim's final trace event: {events:?}"
    );
    let clocks = hb::clocks(&run.trace);
    let frozen = clocks[victim].last().expect("victim has events").get(victim);
    for (rank, rank_clocks) in clocks.iter().enumerate() {
        for c in rank_clocks {
            assert!(
                c.get(victim) <= frozen,
                "rank {rank} observed the dead rank {victim} past its frozen clock"
            );
        }
    }
    let analysis = mpisim::analyze(&run.trace);
    assert_eq!(analysis.errors(), 0, "{}", analysis.render());
}

/// The derived clocks — not just the raw traces — are identical across
/// event-engine worker pools.
#[test]
fn clocks_are_worker_invariant() {
    let mk = |rank: usize, size: usize| {
        ReduceTask::new(
            rank,
            size,
            Topology::two_level_for(96, 8),
            move || rank as u64,
            |a: u64, b: u64| a + b,
            ResilienceOptions {
                timeout: Duration::from_millis(20),
                ..ResilienceOptions::default()
            },
        )
    };
    let plan = || FaultPlan::new().kill(7, 1).delay(3, 0, Duration::from_millis(2));
    let baseline = hb::clocks(
        &EventEngine::with_workers(1)
            .run_tasks_traced(96, plan(), mk)
            .trace,
    );
    for workers in [2, 4] {
        let clocks = hb::clocks(
            &EventEngine::with_workers(workers)
                .run_tasks_traced(96, plan(), mk)
                .trace,
        );
        assert_eq!(baseline, clocks, "clocks diverged with {workers} workers");
    }
}
