//! Fault-matrix sweep at 1024 simulated ranks: kill/delay schedules
//! written in the shared `--faults` grammar (`mpi.kill=at(rank,op)`,
//! `mpi.delay=at(rank,op,ms)`) are applied to the event engine's
//! resilient reduction, and the ranks-lost accounting is asserted
//! *exactly* — a victim's whole binomial subtree, nothing more,
//! nothing less — so coverage can never exceed the surviving subtrees.

use mpisim::{
    EventEngine, FaultPlan, ReduceCoverage, ReduceTask, ResilienceOptions, SchedStats, Topology,
};

const SIZE: usize = 1024;

/// Run a sum-reduction over `SIZE` ranks under a `--faults` spec.
fn run_spec(spec: &str) -> (u64, ReduceCoverage, SchedStats) {
    let plan = FaultPlan::from_spec(spec).expect("spec parses");
    let opts = ResilienceOptions::default();
    let (mut outs, stats) = EventEngine::new().run_tasks_with_stats(SIZE, plan, move |rank, size| {
        ReduceTask::new(
            rank,
            size,
            Topology::Flat,
            move || rank as u64,
            |a, b| a + b,
            opts,
        )
    });
    let (sum, coverage) = outs[0].take().expect("root survives").expect("root output");
    (sum, coverage, stats)
}

/// The binomial subtree rooted at `r` (for `SIZE` a power of two):
/// exactly the ranks whose contributions die with `r`.
fn subtree(r: usize) -> Vec<usize> {
    (r..r + (1usize << r.trailing_zeros())).collect()
}

fn sum_of(ranks: impl Iterator<Item = usize>) -> u64 {
    ranks.map(|r| r as u64).sum()
}

/// Shared assertions: lost is exactly `expect_lost` (ascending),
/// included is its complement, and the merged value is the sum over
/// exactly the included ranks.
fn assert_exact_loss(sum: u64, coverage: &ReduceCoverage, expect_lost: &[usize]) {
    assert_eq!(coverage.lost, expect_lost);
    let expect_included: Vec<usize> = (0..SIZE).filter(|r| !expect_lost.contains(r)).collect();
    assert_eq!(coverage.included, expect_included);
    assert_eq!(sum, sum_of(coverage.included.iter().copied()));
}

#[test]
fn a_kill_at_op_zero_loses_exactly_the_victims_subtree() {
    for victim in [1usize, 2, 4, 8, 96, 512, 513, 768] {
        let (sum, coverage, stats) = run_spec(&format!("mpi.kill=at({victim},0)"));
        let lost = subtree(victim);
        assert_exact_loss(sum, &coverage, &lost);
        assert_eq!(stats.ranks_lost, 1, "victim {victim}");
        assert_eq!(
            sum,
            sum_of(0..SIZE) - sum_of(lost.iter().copied()),
            "victim {victim}"
        );
    }
}

#[test]
fn a_mid_protocol_kill_charges_the_absorbed_children_too() {
    // Rank 8 dies at op 1: after receiving rank 9's contribution
    // (op 0), before receiving rank 10's. Rank 9's value is absorbed
    // into the corpse, ranks 10..16 send into a dead inbox — the whole
    // subtree {8..16} is lost either way, and is charged exactly.
    let (sum, coverage, _) = run_spec("mpi.kill=at(8,1)");
    assert_exact_loss(sum, &coverage, &subtree(8));

    // Same at a big internal node: rank 512 dies at op 2, having
    // absorbed {513} and {514, 515}; all of {512..1024} dies with it.
    let (sum, coverage, _) = run_spec("mpi.kill=at(512,2)");
    assert_exact_loss(sum, &coverage, &subtree(512));
}

#[test]
fn multi_kill_specs_lose_the_union_of_subtrees() {
    // Disjoint subtrees: {4..8} ∪ {9} ∪ {640..768}.
    let (sum, coverage, stats) = run_spec("mpi.kill=at(4,0);mpi.kill=at(9,0);mpi.kill=at(640,0)");
    let mut lost: Vec<usize> = subtree(4);
    lost.extend(subtree(9));
    lost.extend(subtree(640));
    lost.sort_unstable();
    assert_exact_loss(sum, &coverage, &lost);
    assert_eq!(stats.ranks_lost, 3);

    // Nested: rank 18 lies inside rank 16's subtree {16..32}; the
    // union is still exactly {16..32} — no double charge, no leak.
    let (sum, coverage, stats) = run_spec("mpi.kill=at(16,0);mpi.kill=at(18,0)");
    assert_exact_loss(sum, &coverage, &subtree(16));
    assert_eq!(stats.ranks_lost, 2);
}

#[test]
fn coverage_never_exceeds_the_surviving_subtrees() {
    // Sweep a few victims at several kill ops; whatever the op, an
    // included rank must never lie inside any victim's subtree.
    for (victims, ops) in [
        (vec![32usize, 200], vec![0u64, 1]),
        (vec![128, 129, 130], vec![2, 0, 1]),
        (vec![512, 256, 64], vec![1, 1, 1]),
    ] {
        let spec: Vec<String> = victims
            .iter()
            .zip(&ops)
            .map(|(v, o)| format!("mpi.kill=at({v},{o})"))
            .collect();
        let (sum, coverage, _) = run_spec(&spec.join(";"));
        for &victim in &victims {
            let sub = subtree(victim);
            assert!(
                coverage.included.iter().all(|r| !sub.contains(r)),
                "victims {victims:?} ops {ops:?}: included rank inside lost subtree {victim}"
            );
        }
        assert_eq!(coverage.included.len() + coverage.lost.len(), SIZE);
        assert_eq!(sum, sum_of(coverage.included.iter().copied()));
    }
}

#[test]
fn delays_are_stragglers_not_corpses() {
    // Delays well under the 250 ms base budget: full coverage, no
    // timeout ever fires as a wake, and the virtual clock shows the
    // straggling (the 60 ms delay is on rank 513's only op, its send).
    let (sum, coverage, stats) = run_spec("mpi.delay=at(1,0,40);mpi.delay=at(513,0,60)");
    assert!(coverage.is_complete());
    assert_eq!(sum, sum_of(0..SIZE));
    assert_eq!(stats.ranks_lost, 0);
    assert_eq!(stats.timeouts, 0, "stragglers this small never time anyone out");
    assert!(stats.virtual_time_ns >= 60_000_000);
}

#[test]
fn kills_and_delays_compose_in_one_spec() {
    let (sum, coverage, stats) = run_spec("mpi.kill=at(256,0);mpi.delay=at(3,0,30)");
    assert_exact_loss(sum, &coverage, &subtree(256));
    assert!(coverage.included.contains(&3), "the delayed rank still counts");
    assert_eq!(stats.ranks_lost, 1);
}
