//! Adversarial validation of the happens-before analyzer: generated
//! families of deliberately racy rank programs must always be flagged,
//! and the matching well-ordered control programs must stay clean.

use std::time::Duration;

use mpisim::{
    analyze, Action, EventEngine, Executor, FaultPlan, RankTask, TaskCtx, ThreadEngine, Wake,
};
use proptest::prelude::*;

const TAG: mpisim::Tag = 0xbeef;

/// Deliberately racy: every non-root rank fires `per` sends at the
/// root as soon as it starts, and the root soaks them up with wildcard
/// receives. With ≥2 sender ranks the sends are pairwise HB-concurrent,
/// so every wildcard match is schedule-dependent.
struct RacyGather {
    rank: usize,
    size: usize,
    per: usize,
    got: usize,
}

impl RankTask for RacyGather {
    type Out = usize;

    fn step(&mut self, ctx: &mut dyn TaskCtx, wake: Wake) -> Action {
        if self.rank != 0 {
            for _ in 0..self.per {
                let _ = ctx.send(0, TAG, Box::new(()));
            }
            return Action::Done;
        }
        if let Wake::Message(_) = wake {
            self.got += 1;
        }
        if self.got == (self.size - 1) * self.per {
            return Action::Done;
        }
        Action::Recv {
            src: None,
            tag: TAG,
            timeout: None,
        }
    }

    fn into_output(self) -> usize {
        self.got
    }
}

/// The well-ordered control: the same gather, but the root names each
/// source in turn, so every match is forced and race-free.
struct OrderedGather {
    rank: usize,
    size: usize,
    per: usize,
    got: usize,
}

impl RankTask for OrderedGather {
    type Out = usize;

    fn step(&mut self, ctx: &mut dyn TaskCtx, wake: Wake) -> Action {
        if self.rank != 0 {
            for _ in 0..self.per {
                let _ = ctx.send(0, TAG, Box::new(()));
            }
            return Action::Done;
        }
        if let Wake::Message(_) = wake {
            self.got += 1;
        }
        if self.got == (self.size - 1) * self.per {
            return Action::Done;
        }
        Action::Recv {
            src: Some(1 + self.got / self.per),
            tag: TAG,
            timeout: None,
        }
    }

    fn into_output(self) -> usize {
        self.got
    }
}

/// Sequential token ring: rank 0 starts the token, each rank passes it
/// on, rank 0 finally receives it back. Fully ordered even though rank
/// 0's closing receive is a wildcard — there is only ever one token.
struct TokenRing {
    rank: usize,
    size: usize,
}

impl RankTask for TokenRing {
    type Out = ();

    fn step(&mut self, ctx: &mut dyn TaskCtx, wake: Wake) -> Action {
        match wake {
            Wake::Start if self.rank == 0 => {
                if self.size == 1 {
                    return Action::Done;
                }
                let _ = ctx.send(1, TAG, Box::new(()));
                Action::Recv {
                    src: None,
                    tag: TAG,
                    timeout: None,
                }
            }
            Wake::Start => Action::Recv {
                src: Some(self.rank - 1),
                tag: TAG,
                timeout: None,
            },
            Wake::Message(_) => {
                if self.rank != 0 {
                    let _ = ctx.send((self.rank + 1) % self.size, TAG, Box::new(()));
                }
                Action::Done
            }
            Wake::Timeout => Action::Done,
        }
    }

    fn into_output(self) {}
}

/// A wait ring over the first `k` ranks (the rest finish immediately):
/// a deliberate deadlock whose cycle the analyzer must name exactly.
struct PartialWaitRing {
    rank: usize,
    k: usize,
}

impl RankTask for PartialWaitRing {
    type Out = ();

    fn step(&mut self, _ctx: &mut dyn TaskCtx, wake: Wake) -> Action {
        match wake {
            Wake::Start if self.rank < self.k => Action::Recv {
                src: Some((self.rank + 1) % self.k),
                tag: TAG,
                timeout: None,
            },
            _ => Action::Done,
        }
    }

    fn into_output(self) {}
}

/// A sender delayed past the receiver's timeout: the N001 hazard.
struct Straggler {
    rank: usize,
}

impl RankTask for Straggler {
    type Out = ();

    fn step(&mut self, ctx: &mut dyn TaskCtx, wake: Wake) -> Action {
        match (self.rank, wake) {
            (0, Wake::Start) => Action::Recv {
                src: Some(1),
                tag: TAG,
                timeout: Some(Duration::from_millis(5)),
            },
            (1, Wake::Start) => {
                let _ = ctx.send(0, TAG, Box::new(()));
                Action::Done
            }
            _ => Action::Done,
        }
    }

    fn into_output(self) {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated racy gather is flagged M001, on any worker pool.
    #[test]
    fn racy_gathers_are_always_flagged(
        size in 3usize..12,
        per in 1usize..3,
        workers in 1usize..4,
    ) {
        let engine = EventEngine::with_workers(workers);
        let run = engine.run_tasks_traced(size, FaultPlan::new(), move |rank, size| RacyGather {
            rank,
            size,
            per,
            got: 0,
        });
        prop_assert!(run.outputs.is_ok());
        let analysis = analyze(&run.trace);
        prop_assert!(
            analysis.diagnostics.iter().any(|d| d.code == "M001"),
            "racy gather (size {size}, {per} msg/rank) escaped:\n{}",
            analysis.render()
        );
        prop_assert_eq!(analysis.exit_code(false), 2);
    }

    /// The source-naming control of the same shape is always clean.
    #[test]
    fn ordered_gathers_are_always_clean(size in 2usize..12, per in 1usize..3) {
        let engine = EventEngine::default();
        let run = engine.run_tasks_traced(size, FaultPlan::new(), move |rank, size| OrderedGather {
            rank,
            size,
            per,
            got: 0,
        });
        prop_assert!(run.outputs.is_ok());
        let analysis = analyze(&run.trace);
        prop_assert!(analysis.is_clean(), "{}", analysis.render());
    }

    /// A single token in flight is never a race, wildcard or not.
    #[test]
    fn token_rings_are_always_clean(size in 1usize..16) {
        let engine = EventEngine::default();
        let run = engine.run_tasks_traced(size, FaultPlan::new(), |rank, size| TokenRing {
            rank,
            size,
        });
        prop_assert!(run.outputs.is_ok());
        let analysis = analyze(&run.trace);
        prop_assert!(analysis.is_clean(), "{}", analysis.render());
    }

    /// Every generated wait ring deadlocks, and the M002 diagnostic
    /// names the exact member ranks.
    #[test]
    fn wait_rings_name_their_exact_cycle(size in 2usize..12, k in 2usize..8) {
        let k = k.min(size);
        let engine = EventEngine::default();
        let run = engine.run_tasks_traced(size, FaultPlan::new(), move |rank, _| PartialWaitRing {
            rank,
            k,
        });
        prop_assert!(run.outputs.is_err(), "a wait ring must be a scheduler deadlock");
        let analysis = analyze(&run.trace);
        let cycle: Vec<String> = (0..k).chain([0]).map(|r| r.to_string()).collect();
        let rendered = cycle.join(" -> ");
        prop_assert!(
            analysis
                .diagnostics
                .iter()
                .any(|d| d.code == "M002" && d.message.contains(&rendered)),
            "expected cycle '{rendered}' in:\n{}",
            analysis.render()
        );
    }
}

/// The straggler hazard is a warning, and `--deny-warnings` semantics
/// turn it into exit code 1.
#[test]
fn straggler_is_a_timeout_hazard_warning() {
    let engine = EventEngine::default();
    let plan = FaultPlan::new().delay(1, 0, Duration::from_millis(50));
    let run = engine.run_tasks_traced(4, plan, |rank, _| Straggler { rank });
    assert!(run.outputs.is_ok());
    let analysis = analyze(&run.trace);
    assert!(
        analysis.diagnostics.iter().any(|d| d.code == "N001"),
        "{}",
        analysis.render()
    );
    assert_eq!(analysis.errors(), 0, "{}", analysis.render());
    assert_eq!(analysis.exit_code(false), 0);
    assert_eq!(analysis.exit_code(true), 1);
}

/// The thread engine's trace has wall-clock timestamps but the same
/// happens-before structure, so the analyzer must flag the same race.
#[test]
fn thread_engine_traces_expose_the_same_race() {
    let run = ThreadEngine.run_tasks_traced(6, FaultPlan::new(), |rank, size| RacyGather {
        rank,
        size,
        per: 1,
        got: 0,
    });
    assert!(run.outputs.is_ok());
    let analysis = analyze(&run.trace);
    assert!(
        analysis.diagnostics.iter().any(|d| d.code == "M001"),
        "{}",
        analysis.render()
    );
}
