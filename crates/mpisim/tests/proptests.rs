//! Property-based tests for the MPI substrate's collectives.

use mpisim::{allreduce, broadcast, gather, reduce_tree, run};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tree reduction computes the in-order fold for any world size and
    /// payloads, with an associative, non-commutative merge
    /// (concatenation) — so tree shape does not leak into the result.
    #[test]
    fn reduce_tree_is_in_order_fold(
        values in prop::collection::vec("[a-z]{0,4}", 1..12),
    ) {
        let expect = values.concat();
        let shared = std::sync::Arc::new(values);
        let input = std::sync::Arc::clone(&shared);
        let results = run(shared.len(), move |mut comm| {
            let local = input[comm.rank()].clone();
            reduce_tree(&mut comm, local, |a, b| a + &b).unwrap()
        });
        prop_assert_eq!(results[0].as_deref(), Some(expect.as_str()));
        prop_assert!(results[1..].iter().all(Option::is_none));
    }

    /// gather returns every rank's value, in rank order, for any size.
    #[test]
    fn gather_collects_everything(size in 1usize..12, seed in any::<u64>()) {
        let results = run(size, move |mut comm| {
            let local = seed.wrapping_add(comm.rank() as u64);
            gather(&mut comm, local).unwrap()
        });
        let expect: Vec<u64> = (0..size as u64).map(|r| seed.wrapping_add(r)).collect();
        prop_assert_eq!(results[0].as_ref(), Some(&expect));
    }

    /// allreduce delivers the same reduced value on every rank.
    #[test]
    fn allreduce_agrees_everywhere(size in 1usize..12, values in prop::collection::vec(any::<i32>(), 12)) {
        let values = std::sync::Arc::new(values);
        let input = std::sync::Arc::clone(&values);
        let results = run(size, move |mut comm| {
            let local = input[comm.rank()] as i64;
            allreduce(&mut comm, local, |a, b| a.wrapping_add(b)).unwrap()
        });
        let expect: i64 = values[..size].iter().map(|&v| v as i64).sum();
        prop_assert!(results.iter().all(|&r| r == expect), "{results:?} != {expect}");
    }

    /// broadcast delivers rank 0's value to everyone.
    #[test]
    fn broadcast_delivers(size in 1usize..12, payload in any::<u64>()) {
        let results = run(size, move |mut comm| {
            let value = (comm.rank() == 0).then_some(payload);
            broadcast(&mut comm, value).unwrap()
        });
        prop_assert!(results.iter().all(|&r| r == payload));
    }
}
