//! Engine equivalence: the event engine and the thread engine drive the
//! same `ReduceTask` state machine, so for any (size, topology, payload,
//! fault plan) whose delays are decisively smaller than the timeout
//! budgets, their outputs — merged values *and* `ReduceCoverage`, on
//! every rank — must be byte-identical.
//!
//! The fault plans come from `FaultPlan::seeded_kills`, i.e. both
//! engines run under the same kill seed, plus a couple of seeded small
//! delays (a few ms against a 25 ms base timeout, so the thread
//! engine's wall-clock timers cannot misread a straggler as a corpse).

use std::time::Duration;

use mpisim::{
    EventEngine, Executor, FaultPlan, ReduceTask, ResilienceOptions, ThreadEngine, Topology,
};
use proptest::prelude::*;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run the resilient reduction on `engine` and render every rank's
/// output (value + coverage) to one string for byte-wise comparison.
/// The merge (string concatenation) is associative but non-commutative,
/// so any difference in merge *order* between the engines shows up too.
fn reduce_render<E: Executor>(
    engine: &E,
    size: usize,
    nodes: usize,
    plan: FaultPlan,
    seed: u64,
) -> String {
    let opts = ResilienceOptions {
        timeout: Duration::from_millis(25),
        retries: 1,
        backoff: Duration::from_millis(10),
    };
    let topology = if nodes > 1 {
        Topology::two_level_for(size, nodes)
    } else {
        Topology::Flat
    };
    let outs = engine.run_tasks(size, plan, move |rank, size| {
        ReduceTask::new(
            rank,
            size,
            topology,
            move || format!("{:x}.", seed.wrapping_add(rank as u64) & 0xFFFF),
            |a, b| a + &b,
            opts,
        )
    });
    format!("{outs:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random (ranks ≤ 64, node fanout, payload seed, kill seed):
    /// event and thread engines produce byte-identical results and
    /// identical coverage under the same `FaultPlan` seed.
    #[test]
    fn engines_are_byte_identical(
        size in 2usize..=64,
        nodes in 1usize..=4,
        kills in 0usize..=2,
        seed in any::<u64>(),
    ) {
        let mut plan = FaultPlan::seeded_kills(seed, kills, size);
        // A couple of seeded delays, small against the 25 ms budget.
        let mut s = seed ^ 0xD3;
        for _ in 0..(splitmix64(&mut s) % 3) {
            let rank = (splitmix64(&mut s) % size as u64) as usize;
            let op = splitmix64(&mut s) % 2;
            let ms = 1 + splitmix64(&mut s) % 4;
            plan = plan.delay(rank, op, Duration::from_millis(ms));
        }

        let event = reduce_render(&EventEngine::new(), size, nodes, plan.clone(), seed);
        let threads = reduce_render(&ThreadEngine, size, nodes, plan, seed);
        prop_assert_eq!(event, threads);
    }
}

/// A fixed worst-case-ish scenario kept outside the proptest so it
/// always runs: a mid-protocol kill plus a straggler in a two-level
/// tree, compared across engines.
#[test]
fn engines_agree_on_a_mid_protocol_kill_in_a_two_level_tree() {
    let plan = FaultPlan::new()
        .kill(8, 1)
        .delay(3, 0, Duration::from_millis(4));
    let event = reduce_render(&EventEngine::new(), 32, 4, plan.clone(), 99);
    let threads = reduce_render(&ThreadEngine, 32, 4, plan, 99);
    assert_eq!(event, threads);
}
