//! Determinism of the event engine at scale, pinned against golden
//! values: a 4096-rank resilient reduction under a seeded kill plan
//! must produce byte-identical output run-to-run and across worker-pool
//! sizes, with the exact same virtual-clock event count — a scheduler
//! change that reorders anything observable fails loudly here.

use std::time::{Duration, Instant};

use mpisim::{
    EventEngine, FaultPlan, ReduceTask, ResilienceOptions, SchedStats, Topology,
};

const RANKS: usize = 4096;
const KILL_SEED: u64 = 42;
const KILLS: usize = 7;

/// Golden values for (RANKS, KILL_SEED, KILLS) with default options and
/// the default 1 µs latency. If a deliberate scheduler change shifts
/// them, re-pin from `fig4 --ranks 4096 --kills 7 --kill-seed 42`.
const GOLDEN_SUM: u64 = 8_355_832;
const GOLDEN_INCLUDED: usize = 4_080;
const GOLDEN_EVENTS: u64 = 12_281;
const GOLDEN_VIRTUAL_NS: u64 = 8_400_009_000;
/// Of the 7 scheduled kills, only 3 land — the rest name an op index
/// their victim never reaches — and those 3 subtrees cover 16 ranks.
const GOLDEN_RANKS_LOST: u64 = 3;

fn scaled_run(workers: usize) -> (String, SchedStats) {
    let engine = EventEngine::with_workers(workers);
    let plan = FaultPlan::seeded_kills(KILL_SEED, KILLS, RANKS);
    let opts = ResilienceOptions::default();
    let (outs, stats) = engine.run_tasks_with_stats(RANKS, plan, move |rank, size| {
        ReduceTask::new(
            rank,
            size,
            Topology::Flat,
            move || rank as u64,
            |a, b| a + b,
            opts,
        )
    });
    (format!("{outs:?}"), stats)
}

#[test]
fn golden_4096_rank_run_is_pinned() {
    let (rendered, stats) = scaled_run(1);
    assert_eq!(stats.events, GOLDEN_EVENTS);
    assert_eq!(stats.virtual_time_ns, GOLDEN_VIRTUAL_NS);
    assert_eq!(stats.ranks_lost, GOLDEN_RANKS_LOST);
    assert!(rendered.contains(&GOLDEN_SUM.to_string()), "golden sum in output");

    let plan = FaultPlan::seeded_kills(KILL_SEED, KILLS, RANKS);
    let opts = ResilienceOptions::default();
    let (mut outs, _) = EventEngine::new().run_tasks_with_stats(RANKS, plan, move |rank, size| {
        ReduceTask::new(
            rank,
            size,
            Topology::Flat,
            move || rank as u64,
            |a, b| a + b,
            opts,
        )
    });
    let (sum, coverage) = outs[0].take().expect("root survives").expect("root output");
    assert_eq!(sum, GOLDEN_SUM);
    assert_eq!(coverage.included.len(), GOLDEN_INCLUDED);
    assert_eq!(coverage.lost.len(), RANKS - GOLDEN_INCLUDED);
}

#[test]
fn repeated_runs_are_byte_identical() {
    let (a, stats_a) = scaled_run(1);
    let (b, stats_b) = scaled_run(1);
    assert_eq!(a, b, "same seed, same bytes");
    assert_eq!(stats_a, stats_b, "same seed, same virtual-clock accounting");
}

#[test]
fn worker_pool_size_is_invisible_at_scale() {
    let (base, base_stats) = scaled_run(1);
    for workers in [2, 4] {
        let (out, stats) = scaled_run(workers);
        assert_eq!(out, base, "workers {workers}");
        assert_eq!(stats, base_stats, "workers {workers}");
    }
}

/// The `recv_timeout` busy-wait regression: a parent whose child is
/// delayed for 30 *virtual* seconds — past the first receive timeout,
/// so retry timers actually fire — must complete with full coverage in
/// wall-clock milliseconds. Under the event engine, timeouts are heap
/// events; nothing spins or sleeps.
#[test]
fn delayed_parent_scenario_completes_without_wall_clock_spin() {
    let wall = Instant::now();
    let opts = ResilienceOptions {
        timeout: Duration::from_secs(20),
        retries: 2,
        backoff: Duration::from_secs(5),
    };
    let plan = FaultPlan::new().delay(1, 0, Duration::from_secs(30));
    let (mut outs, stats) = EventEngine::new().run_tasks_with_stats(2, plan, move |rank, size| {
        ReduceTask::new(
            rank,
            size,
            Topology::Flat,
            move || rank as u64,
            |a, b| a + b,
            opts,
        )
    });
    let (sum, coverage) = outs[0].take().expect("root survives").expect("root output");
    assert_eq!(sum, 1);
    assert!(coverage.is_complete(), "straggler arrives during a retry");
    assert!(stats.timeouts >= 1, "the first 20 s timer must actually fire");
    assert!(stats.virtual_time_ns >= 30_000_000_000);
    assert!(
        wall.elapsed() < Duration::from_secs(5),
        "30 virtual seconds must cost no wall-clock spin (took {:?})",
        wall.elapsed()
    );
}
