//! Attributes: the user-defined keys of the key:value data model (§III-A).
//!
//! Each attribute has a unique label, a value type, and a set of property
//! flags that control how the runtime stores and processes its values.
//! Attributes are interned in an [`AttributeStore`](crate::store::AttributeStore),
//! which assigns each label a stable numeric id for fast lookups.

use std::fmt;
use std::sync::Arc;

use crate::value::ValueType;

/// Numeric identifier of an interned attribute.
pub type AttrId = u32;

/// Sentinel id meaning "no attribute".
pub const ATTR_NONE: AttrId = u32::MAX;

/// Property flags for attributes.
///
/// These mirror the Caliper attribute properties that matter for the
/// aggregation system described in the paper:
///
/// * `NESTED` attributes form begin/end hierarchies on the blackboard and
///   are stored in the context tree (e.g. `function`, annotations).
/// * `AS_VALUE` attributes are stored as immediate values in snapshot
///   records rather than as context-tree nodes (e.g. `time.duration`).
/// * `AGGREGATABLE` marks numeric measurement attributes that reduction
///   operators may be applied to.
/// * `SKIP` attributes are excluded from snapshots entirely.
/// * `GLOBAL` attributes describe the whole dataset (metadata), not
///   individual snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Properties(u32);

impl Properties {
    /// No special properties.
    pub const DEFAULT: Properties = Properties(0);
    /// Values form a begin/end nesting hierarchy.
    pub const NESTED: Properties = Properties(1 << 0);
    /// Store values directly in snapshot records (not in the context tree).
    pub const AS_VALUE: Properties = Properties(1 << 1);
    /// Numeric measurement value; reduction operators apply.
    pub const AGGREGATABLE: Properties = Properties(1 << 2);
    /// Never include in snapshots.
    pub const SKIP: Properties = Properties(1 << 3);
    /// Dataset-wide metadata attribute.
    pub const GLOBAL: Properties = Properties(1 << 4);
    /// Process-scope blackboard entry (default is thread scope).
    pub const SCOPE_PROCESS: Properties = Properties(1 << 5);

    /// Combine two property sets.
    pub const fn union(self, other: Properties) -> Properties {
        Properties(self.0 | other.0)
    }

    /// Test whether all flags in `other` are set.
    pub const fn contains(self, other: Properties) -> bool {
        (self.0 & other.0) == other.0
    }

    /// The raw flag bits (used by the `.cali` codec).
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Rebuild from raw flag bits.
    pub const fn from_bits(bits: u32) -> Properties {
        Properties(bits)
    }

    /// Encode as a comma-separated list of property names.
    pub fn encode(self) -> String {
        let mut parts = Vec::new();
        if self.contains(Properties::NESTED) {
            parts.push("nested");
        }
        if self.contains(Properties::AS_VALUE) {
            parts.push("asvalue");
        }
        if self.contains(Properties::AGGREGATABLE) {
            parts.push("aggregatable");
        }
        if self.contains(Properties::SKIP) {
            parts.push("skip");
        }
        if self.contains(Properties::GLOBAL) {
            parts.push("global");
        }
        if self.contains(Properties::SCOPE_PROCESS) {
            parts.push("process_scope");
        }
        if parts.is_empty() {
            parts.push("default");
        }
        parts.join(",")
    }

    /// Parse a comma-separated list of property names. Unknown names are
    /// ignored so newer streams remain readable.
    pub fn parse(text: &str) -> Properties {
        let mut props = Properties::DEFAULT;
        for part in text.split(',') {
            props = props.union(match part.trim() {
                "nested" => Properties::NESTED,
                "asvalue" => Properties::AS_VALUE,
                "aggregatable" => Properties::AGGREGATABLE,
                "skip" => Properties::SKIP,
                "global" => Properties::GLOBAL,
                "process_scope" => Properties::SCOPE_PROCESS,
                _ => Properties::DEFAULT,
            });
        }
        props
    }
}

impl std::ops::BitOr for Properties {
    type Output = Properties;
    fn bitor(self, rhs: Properties) -> Properties {
        self.union(rhs)
    }
}

/// Immutable metadata of an interned attribute.
#[derive(Debug)]
pub struct AttrMeta {
    pub(crate) id: AttrId,
    pub(crate) name: Arc<str>,
    pub(crate) vtype: ValueType,
    pub(crate) props: Properties,
}

/// A handle to an interned attribute.
///
/// Cloning is cheap (one `Arc` bump). Equality and hashing use only the
/// numeric id, which is unique within one [`AttributeStore`](crate::AttributeStore).
#[derive(Debug, Clone)]
pub struct Attribute {
    pub(crate) meta: Arc<AttrMeta>,
}

impl Attribute {
    /// The attribute's numeric id in its store.
    pub fn id(&self) -> AttrId {
        self.meta.id
    }

    /// The attribute's unique label.
    pub fn name(&self) -> &str {
        &self.meta.name
    }

    /// The label as a shared string.
    pub fn name_arc(&self) -> Arc<str> {
        Arc::clone(&self.meta.name)
    }

    /// The declared value type.
    pub fn value_type(&self) -> ValueType {
        self.meta.vtype
    }

    /// The property flags.
    pub fn properties(&self) -> Properties {
        self.meta.props
    }

    /// Whether the attribute participates in begin/end nesting.
    pub fn is_nested(&self) -> bool {
        self.meta.props.contains(Properties::NESTED)
    }

    /// Whether values are stored immediately in snapshot records.
    pub fn is_as_value(&self) -> bool {
        self.meta.props.contains(Properties::AS_VALUE)
    }

    /// Whether reduction operators apply to this attribute.
    pub fn is_aggregatable(&self) -> bool {
        self.meta.props.contains(Properties::AGGREGATABLE)
    }

    /// Whether the attribute is excluded from snapshots.
    pub fn is_skipped(&self) -> bool {
        self.meta.props.contains(Properties::SKIP)
    }

    /// Whether the attribute is dataset-level metadata.
    pub fn is_global(&self) -> bool {
        self.meta.props.contains(Properties::GLOBAL)
    }
}

impl PartialEq for Attribute {
    fn eq(&self, other: &Self) -> bool {
        self.meta.id == other.meta.id
    }
}

impl Eq for Attribute {}

impl std::hash::Hash for Attribute {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u32(self.meta.id);
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}[{}]",
            self.meta.name,
            self.meta.vtype,
            self.meta.props.encode()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn property_flags_combine() {
        let p = Properties::NESTED | Properties::AGGREGATABLE;
        assert!(p.contains(Properties::NESTED));
        assert!(p.contains(Properties::AGGREGATABLE));
        assert!(!p.contains(Properties::AS_VALUE));
        assert!(p.contains(Properties::DEFAULT));
    }

    #[test]
    fn property_encode_parse_roundtrip() {
        let p = Properties::AS_VALUE | Properties::AGGREGATABLE | Properties::SCOPE_PROCESS;
        assert_eq!(Properties::parse(&p.encode()), p);
        assert_eq!(Properties::parse("default"), Properties::DEFAULT);
        assert_eq!(Properties::parse("bogus,nested"), Properties::NESTED);
    }

    #[test]
    fn default_encodes_as_default() {
        assert_eq!(Properties::DEFAULT.encode(), "default");
    }
}
