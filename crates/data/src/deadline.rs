//! Cooperative cancellation: the [`Deadline`] token.
//!
//! Long-running operations in a resident service (journal replay,
//! CalQL evaluation over warm aggregate state) must never wedge the
//! process: a pathological query or a corrupted journal should cost a
//! bounded amount of wall-clock, then yield control back with whatever
//! partial result exists. Rust threads cannot be killed from outside,
//! so the budget is *cooperative*: the worker carries a [`Deadline`]
//! and polls [`Deadline::expired`] at natural chunk boundaries (every
//! N records / lines). The token combines two triggers:
//!
//! * a wall-clock instant after which the operation is over budget, and
//! * a shared cancellation flag that an owner (e.g. a shutdown path)
//!   can flip from another thread via [`CancelHandle::cancel`].
//!
//! Either trigger makes `expired()` return true; the operation is
//! expected to stop at the next poll and report that it was cut short.
//! Tokens are cheap to clone and share one cancellation flag per
//! lineage, so cancelling the handle stops every clone at once.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation token: wall-clock budget plus an
/// externally flippable cancel flag. See the module docs for the
/// polling contract.
#[derive(Debug, Clone)]
pub struct Deadline {
    /// Absolute cut-off; `None` means no time budget.
    until: Option<Instant>,
    /// Shared cancel flag; set once, never cleared.
    cancelled: Arc<AtomicBool>,
}

/// The controlling end of a [`Deadline`]: lets another thread cancel
/// every clone of the token it was taken from.
#[derive(Debug, Clone)]
pub struct CancelHandle {
    cancelled: Arc<AtomicBool>,
}

impl Deadline {
    /// A token that expires `budget` from now.
    pub fn after(budget: Duration) -> Deadline {
        Deadline {
            until: Some(Instant::now() + budget),
            cancelled: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A token with no time budget: expires only if cancelled through
    /// its [`CancelHandle`].
    pub fn unbounded() -> Deadline {
        Deadline {
            until: None,
            cancelled: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The controlling end: cancelling it expires this token and every
    /// clone sharing its lineage.
    pub fn cancel_handle(&self) -> CancelHandle {
        CancelHandle {
            cancelled: Arc::clone(&self.cancelled),
        }
    }

    /// True once the time budget is exhausted or the token was
    /// cancelled. Cheap enough to poll every few records (one atomic
    /// load; the clock is read only when a budget is set).
    pub fn expired(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.until {
            Some(t) => Instant::now() >= t,
            None => false,
        }
    }

    /// Time left before expiry: `None` when no budget is set, zero when
    /// already expired (or cancelled).
    pub fn remaining(&self) -> Option<Duration> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Some(Duration::ZERO);
        }
        self.until
            .map(|t| t.saturating_duration_since(Instant::now()))
    }
}

impl CancelHandle {
    /// Expire the token (and all its clones) immediately. Idempotent.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires_on_its_own() {
        let d = Deadline::unbounded();
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn after_zero_budget_is_expired() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_budget_is_not_expired() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn cancel_expires_all_clones() {
        let d = Deadline::unbounded();
        let clone = d.clone();
        let handle = d.cancel_handle();
        assert!(!clone.expired());
        handle.cancel();
        assert!(d.expired());
        assert!(clone.expired());
        assert_eq!(clone.remaining(), Some(Duration::ZERO));
        // Idempotent.
        handle.cancel();
        assert!(d.expired());
    }
}
