//! Interned attribute dictionary.
//!
//! All components — runtime blackboard, aggregation service, `.cali`
//! reader/writer, query engine — resolve attribute labels through an
//! `AttributeStore`. Interning gives every label a dense numeric id so
//! the snapshot hot path works on `u32`s instead of strings.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::attribute::{AttrId, AttrMeta, Attribute, Properties};
use crate::value::ValueType;

/// Error returned when an attribute label is re-created with a conflicting
/// signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeConflict {
    /// The conflicting label.
    pub name: String,
    /// Type of the existing attribute.
    pub existing: ValueType,
    /// Type requested by the failed creation.
    pub requested: ValueType,
}

impl std::fmt::Display for AttributeConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "attribute '{}' already exists with type {} (requested {})",
            self.name, self.existing, self.requested
        )
    }
}

impl std::error::Error for AttributeConflict {}

#[derive(Default)]
struct StoreInner {
    attrs: Vec<Attribute>,
    by_name: HashMap<Arc<str>, AttrId>,
}

/// A thread-safe interning dictionary of [`Attribute`]s.
///
/// The store is shared (`Arc`) between the runtime, its services, and the
/// I/O layer of one process. Lookup by id is lock-protected but O(1);
/// the aggregation hot path caches `Attribute` handles so it does not
/// query the store per snapshot.
#[derive(Default)]
pub struct AttributeStore {
    inner: RwLock<StoreInner>,
}

impl AttributeStore {
    /// Create an empty store.
    pub fn new() -> AttributeStore {
        AttributeStore::default()
    }

    /// Intern an attribute. If the label already exists with the same
    /// value type, the existing handle is returned and `props` are merged
    /// into the existing flags is *not* performed (first creation wins),
    /// matching Caliper's create-once semantics.
    pub fn create(
        &self,
        name: &str,
        vtype: ValueType,
        props: Properties,
    ) -> Result<Attribute, AttributeConflict> {
        {
            let inner = self.inner.read();
            if let Some(&id) = inner.by_name.get(name) {
                let attr = &inner.attrs[id as usize];
                return if attr.value_type() == vtype {
                    Ok(attr.clone())
                } else {
                    Err(AttributeConflict {
                        name: name.to_string(),
                        existing: attr.value_type(),
                        requested: vtype,
                    })
                };
            }
        }
        let mut inner = self.inner.write();
        // Re-check under the write lock: another thread may have won.
        if let Some(&id) = inner.by_name.get(name) {
            let attr = &inner.attrs[id as usize];
            return if attr.value_type() == vtype {
                Ok(attr.clone())
            } else {
                Err(AttributeConflict {
                    name: name.to_string(),
                    existing: attr.value_type(),
                    requested: vtype,
                })
            };
        }
        let id = inner.attrs.len() as AttrId;
        let name_arc: Arc<str> = Arc::from(name);
        let attr = Attribute {
            meta: Arc::new(AttrMeta {
                id,
                name: Arc::clone(&name_arc),
                vtype,
                props,
            }),
        };
        inner.by_name.insert(name_arc, id);
        inner.attrs.push(attr.clone());
        Ok(attr)
    }

    /// Intern with default properties, panicking on a type conflict.
    /// Convenience for tests and examples.
    pub fn create_simple(&self, name: &str, vtype: ValueType) -> Attribute {
        self.create(name, vtype, Properties::DEFAULT)
            .expect("attribute type conflict")
    }

    /// Look up an attribute by label.
    pub fn find(&self, name: &str) -> Option<Attribute> {
        let inner = self.inner.read();
        inner
            .by_name
            .get(name)
            .map(|&id| inner.attrs[id as usize].clone())
    }

    /// Look up an attribute by numeric id.
    pub fn get(&self, id: AttrId) -> Option<Attribute> {
        let inner = self.inner.read();
        inner.attrs.get(id as usize).cloned()
    }

    /// Label of an attribute id, if it exists.
    pub fn name_of(&self, id: AttrId) -> Option<Arc<str>> {
        self.get(id).map(|a| a.name_arc())
    }

    /// Number of interned attributes.
    pub fn len(&self) -> usize {
        self.inner.read().attrs.len()
    }

    /// True if no attributes have been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all interned attributes, in id order.
    pub fn all(&self) -> Vec<Attribute> {
        self.inner.read().attrs.clone()
    }
}

impl std::fmt::Debug for AttributeStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AttributeStore({} attributes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_assigns_dense_ids() {
        let store = AttributeStore::new();
        let a = store.create_simple("function", ValueType::Str);
        let b = store.create_simple("loop.iteration", ValueType::Int);
        assert_eq!(a.id(), 0);
        assert_eq!(b.id(), 1);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn recreate_returns_same_handle() {
        let store = AttributeStore::new();
        let a = store.create_simple("x", ValueType::Int);
        let b = store.create_simple("x", ValueType::Int);
        assert_eq!(a, b);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn type_conflict_is_reported() {
        let store = AttributeStore::new();
        store.create_simple("x", ValueType::Int);
        let err = store
            .create("x", ValueType::Str, Properties::DEFAULT)
            .unwrap_err();
        assert_eq!(err.existing, ValueType::Int);
        assert_eq!(err.requested, ValueType::Str);
    }

    #[test]
    fn find_and_get_agree() {
        let store = AttributeStore::new();
        let a = store.create_simple("time.duration", ValueType::Float);
        assert_eq!(store.find("time.duration"), Some(a.clone()));
        assert_eq!(store.get(a.id()), Some(a));
        assert_eq!(store.find("missing"), None);
        assert_eq!(store.get(99), None);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let store = std::sync::Arc::new(AttributeStore::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let store = std::sync::Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let mut ids = Vec::new();
                for i in 0..64 {
                    let a = store.create_simple(&format!("attr.{i}"), ValueType::Int);
                    ids.push((i, a.id()));
                }
                ids
            }));
        }
        let all: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every thread must observe the same name->id mapping.
        for ids in &all[1..] {
            assert_eq!(ids, &all[0]);
        }
        assert_eq!(store.len(), 64);
    }
}
