//! The context tree: Caliper's blackboard-compression substrate.
//!
//! Nested annotation values (`function=main`, then `function=foo`) form
//! paths in a process-wide tree. A snapshot then references the whole
//! nesting stack with a single node id instead of copying every label and
//! value — this is the "compressed copy of the current blackboard
//! contents" described in §IV-A of the paper.
//!
//! The tree is append-only: nodes are never removed, so node ids remain
//! valid for the lifetime of the process and snapshot records can be
//! processed long after the annotations that produced them have ended.

use parking_lot::RwLock;

use crate::attribute::AttrId;
use crate::fxhash::FxHashMap;
use crate::value::Value;

/// Numeric identifier of a context-tree node.
pub type NodeId = u32;

/// Sentinel id meaning "no node" / "root parent".
pub const NODE_NONE: NodeId = u32::MAX;

/// One node of the context tree.
#[derive(Debug, Clone)]
pub struct NodeData {
    /// Attribute this node assigns a value to.
    pub attr: AttrId,
    /// The assigned value.
    pub value: Value,
    /// Parent node, or [`NODE_NONE`] for roots.
    pub parent: NodeId,
}

#[derive(Default)]
struct TreeInner {
    nodes: Vec<NodeData>,
    /// (parent, attr, value) -> existing child node.
    children: FxHashMap<(NodeId, AttrId, Value), NodeId>,
}

/// Append-only context tree shared by all threads of one process.
///
/// `get_child` is the only operation on the annotation hot path; it takes
/// a read lock on the fast path (child already exists) and upgrades to a
/// write lock only when a new (parent, attr, value) combination appears —
/// which for typical workloads happens a bounded number of times, once
/// per unique program context.
#[derive(Default)]
pub struct ContextTree {
    inner: RwLock<TreeInner>,
}

impl ContextTree {
    /// Create an empty tree.
    pub fn new() -> ContextTree {
        ContextTree::default()
    }

    /// Find or create the child of `parent` labelled `(attr, value)`.
    pub fn get_child(&self, parent: NodeId, attr: AttrId, value: &Value) -> NodeId {
        {
            let inner = self.inner.read();
            if let Some(&id) = inner.children.get(&(parent, attr, value.clone())) {
                return id;
            }
        }
        let mut inner = self.inner.write();
        let key = (parent, attr, value.clone());
        if let Some(&id) = inner.children.get(&key) {
            return id;
        }
        let id = inner.nodes.len() as NodeId;
        inner.nodes.push(NodeData {
            attr,
            value: value.clone(),
            parent,
        });
        inner.children.insert(key, id);
        id
    }

    /// Read a node's data. Returns `None` for [`NODE_NONE`] or unknown ids.
    pub fn node(&self, id: NodeId) -> Option<NodeData> {
        if id == NODE_NONE {
            return None;
        }
        self.inner.read().nodes.get(id as usize).cloned()
    }

    /// Parent id of `id`, or `None` at a root.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        let node = self.node(id)?;
        if node.parent == NODE_NONE {
            None
        } else {
            Some(node.parent)
        }
    }

    /// Expand a node into the full `(attr, value)` path from the root to
    /// (and including) the node, in root-first order.
    pub fn path(&self, id: NodeId) -> Vec<(AttrId, Value)> {
        let mut out = Vec::new();
        self.path_into(id, &mut out);
        out
    }

    /// Append a node's root-first path to `out` without allocating a
    /// fresh vector — the hot-path variant of [`ContextTree::path`] used
    /// by batch record expansion. Takes the tree lock once.
    pub fn path_into(&self, id: NodeId, out: &mut Vec<(AttrId, Value)>) {
        let inner = self.inner.read();
        let start = out.len();
        let mut cur = id;
        while cur != NODE_NONE {
            match inner.nodes.get(cur as usize) {
                Some(node) => {
                    out.push((node.attr, node.value.clone()));
                    cur = node.parent;
                }
                None => break,
            }
        }
        out[start..].reverse();
    }

    /// Walk up from `id` and return the nearest node (including `id`
    /// itself) whose attribute is `attr`.
    pub fn find_ancestor(&self, id: NodeId, attr: AttrId) -> Option<NodeId> {
        let inner = self.inner.read();
        let mut cur = id;
        while cur != NODE_NONE {
            let node = inner.nodes.get(cur as usize)?;
            if node.attr == attr {
                return Some(cur);
            }
            cur = node.parent;
        }
        None
    }

    /// Number of nodes in the tree.
    pub fn len(&self) -> usize {
        self.inner.read().nodes.len()
    }

    /// True if the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for ContextTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ContextTree({} nodes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn children_are_deduplicated() {
        let tree = ContextTree::new();
        let a = tree.get_child(NODE_NONE, 0, &Value::str("main"));
        let b = tree.get_child(a, 0, &Value::str("foo"));
        let b2 = tree.get_child(a, 0, &Value::str("foo"));
        assert_eq!(b, b2);
        assert_eq!(tree.len(), 2);
    }

    #[test]
    fn same_value_different_parent_is_new_node() {
        let tree = ContextTree::new();
        let a = tree.get_child(NODE_NONE, 0, &Value::str("main"));
        let b = tree.get_child(NODE_NONE, 0, &Value::str("other"));
        let foo_a = tree.get_child(a, 0, &Value::str("foo"));
        let foo_b = tree.get_child(b, 0, &Value::str("foo"));
        assert_ne!(foo_a, foo_b);
    }

    #[test]
    fn path_expansion_is_root_first() {
        let tree = ContextTree::new();
        let a = tree.get_child(NODE_NONE, 0, &Value::str("main"));
        let b = tree.get_child(a, 0, &Value::str("foo"));
        let c = tree.get_child(b, 1, &Value::Int(17));
        let path = tree.path(c);
        assert_eq!(
            path,
            vec![
                (0, Value::str("main")),
                (0, Value::str("foo")),
                (1, Value::Int(17)),
            ]
        );
    }

    #[test]
    fn find_ancestor_walks_up() {
        let tree = ContextTree::new();
        let a = tree.get_child(NODE_NONE, 0, &Value::str("main"));
        let b = tree.get_child(a, 1, &Value::Int(3));
        let c = tree.get_child(b, 0, &Value::str("foo"));
        assert_eq!(tree.find_ancestor(c, 1), Some(b));
        assert_eq!(tree.find_ancestor(c, 0), Some(c));
        assert_eq!(tree.find_ancestor(a, 1), None);
    }

    #[test]
    fn node_none_has_no_data() {
        let tree = ContextTree::new();
        assert!(tree.node(NODE_NONE).is_none());
        assert!(tree.path(NODE_NONE).is_empty());
    }

    #[test]
    fn concurrent_get_child_dedups() {
        let tree = std::sync::Arc::new(ContextTree::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let tree = std::sync::Arc::clone(&tree);
            handles.push(std::thread::spawn(move || {
                let mut last = NODE_NONE;
                for i in 0..100 {
                    last = tree.get_child(last, 0, &Value::Int(i));
                }
                last
            }));
        }
        let leaves: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // All threads walked the same path, so they share every node.
        for leaf in &leaves[1..] {
            assert_eq!(*leaf, leaves[0]);
        }
        assert_eq!(tree.len(), 100);
    }
}
