//! # caliper-data — the flexible key:value performance data model
//!
//! This crate implements the data model of *"Flexible Data Aggregation
//! for Performance Profiling"* (Böhme, Beckingsale, Schulz — CLUSTER
//! 2017), §III-A: performance data is a stream of records, each a set of
//! user-defined `attribute: value` pairs, where attributes carry string,
//! integer, or floating-point values and subsequent records may have
//! entirely different attribute sets.
//!
//! Contents:
//!
//! * [`Value`] / [`ValueType`] — the variant value type.
//! * [`Attribute`] / [`Properties`] / [`AttributeStore`] — interned,
//!   user-defined attribute keys with storage properties.
//! * [`ContextTree`] — the blackboard-compression tree; a snapshot
//!   references one node instead of copying the whole nesting stack.
//! * [`SnapshotRecord`] (compressed) and [`FlatRecord`] (expanded) —
//!   the two record representations used throughout the system.
//! * [`FxHasher`] — the fast aggregation-key hasher.
//! * [`MetricsRegistry`] — pipeline self-instrumentation: lock-cheap
//!   named counters/gauges/timers the pipeline uses to profile itself.
//! * [`Deadline`] / [`CancelHandle`] — cooperative cancellation tokens
//!   for bounding long-running reads and queries in resident services.
//!
//! ```
//! use caliper_data::{AttributeStore, RecordBuilder, Value};
//!
//! let store = AttributeStore::new();
//! let record = RecordBuilder::new(&store)
//!     .with("callpath", "main/foo")
//!     .with("loop", "mainloop")
//!     .with("loop.iteration", 17i64)
//!     .with("time.duration", 251.0)
//!     .build();
//!
//! let iter = store.find("loop.iteration").unwrap();
//! assert_eq!(record.get(iter.id()), Some(&Value::Int(17)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribute;
pub mod deadline;
pub mod fxhash;
pub mod metrics;
pub mod node;
pub mod record;
pub mod store;
pub mod value;

pub use attribute::{AttrId, Attribute, Properties, ATTR_NONE};
pub use deadline::{CancelHandle, Deadline};
pub use fxhash::{fxhash, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use metrics::{MetricKind, MetricSample, MetricsRegistry, Stability};
pub use node::{ContextTree, NodeData, NodeId, NODE_NONE};
pub use record::{Entry, FlatRecord, RecordBuilder, SnapshotRecord};
pub use store::{AttributeConflict, AttributeStore};
pub use value::{Value, ValueType};
