//! Snapshot records: the unit of measurement data (§III-A, §IV-A).
//!
//! A *compressed* [`SnapshotRecord`] holds context-tree node references
//! plus immediate `(attribute, value)` pairs — the form produced by the
//! runtime's snapshot mechanism and stored in `.cali` streams. A *flat*
//! [`FlatRecord`] is the fully expanded list of `(attribute, value)`
//! pairs that the aggregation engine consumes.

use std::sync::Arc;

use crate::attribute::{AttrId, Attribute};
use crate::node::{ContextTree, NodeId};
use crate::store::AttributeStore;
use crate::value::Value;

/// One element of a compressed snapshot record.
#[derive(Debug, Clone, PartialEq)]
pub enum Entry {
    /// Reference to a context-tree node (expands to its whole path).
    Node(NodeId),
    /// An immediate attribute:value pair (`AS_VALUE` attributes).
    Imm(AttrId, Value),
}

/// A compressed snapshot record.
///
/// Records are cheap to clone: node references are `u32`s and immediate
/// string values are reference-counted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotRecord {
    entries: Vec<Entry>,
}

impl SnapshotRecord {
    /// Create an empty record.
    pub fn new() -> SnapshotRecord {
        SnapshotRecord::default()
    }

    /// Create a record from raw entries.
    pub fn from_entries(entries: Vec<Entry>) -> SnapshotRecord {
        SnapshotRecord { entries }
    }

    /// Append a context-tree node reference.
    pub fn push_node(&mut self, node: NodeId) {
        self.entries.push(Entry::Node(node));
    }

    /// Append an immediate attribute:value pair.
    pub fn push_imm(&mut self, attr: AttrId, value: Value) {
        self.entries.push(Entry::Imm(attr, value));
    }

    /// The raw entries.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Number of entries (compressed size, not expanded size).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the record has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Expand against a context tree into a flat record. Node entries
    /// expand to their full root-first path; immediate entries are
    /// appended in order.
    pub fn unpack(&self, tree: &ContextTree) -> FlatRecord {
        let mut pairs = Vec::with_capacity(self.entries.len() * 2);
        for entry in &self.entries {
            match entry {
                Entry::Node(id) => tree.path_into(*id, &mut pairs),
                Entry::Imm(attr, value) => pairs.push((*attr, value.clone())),
            }
        }
        FlatRecord { pairs }
    }
}

/// A fully expanded snapshot record: an ordered list of
/// `(attribute id, value)` pairs.
///
/// An attribute may appear multiple times (nested attributes produce one
/// pair per nesting level, root first). The aggregation engine's
/// key-extraction joins repeated values into a path (see
/// [`FlatRecord::path_string`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlatRecord {
    pairs: Vec<(AttrId, Value)>,
}

impl FlatRecord {
    /// Create an empty record.
    pub fn new() -> FlatRecord {
        FlatRecord::default()
    }

    /// Create from raw pairs.
    pub fn from_pairs(pairs: Vec<(AttrId, Value)>) -> FlatRecord {
        FlatRecord { pairs }
    }

    /// Append a pair.
    pub fn push(&mut self, attr: AttrId, value: Value) {
        self.pairs.push((attr, value));
    }

    /// The raw pairs in record order.
    pub fn pairs(&self) -> &[(AttrId, Value)] {
        &self.pairs
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if the record has no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// First (outermost) value of `attr`, if present.
    pub fn first(&self, attr: AttrId) -> Option<&Value> {
        self.pairs
            .iter()
            .find(|(a, _)| *a == attr)
            .map(|(_, v)| v)
    }

    /// Last (innermost) value of `attr`, if present.
    pub fn get(&self, attr: AttrId) -> Option<&Value> {
        self.pairs
            .iter()
            .rev()
            .find(|(a, _)| *a == attr)
            .map(|(_, v)| v)
    }

    /// All values of `attr` in record (outer-to-inner) order.
    pub fn all(&self, attr: AttrId) -> impl Iterator<Item = &Value> {
        self.pairs
            .iter()
            .filter(move |(a, _)| *a == attr)
            .map(|(_, v)| v)
    }

    /// Whether the record contains `attr` at all.
    pub fn contains(&self, attr: AttrId) -> bool {
        self.pairs.iter().any(|(a, _)| *a == attr)
    }

    /// The grouping value for `attr`: the single value if `attr` occurs
    /// once, or the `/`-joined path of all its values (outermost first)
    /// if it is a nested attribute with multiple levels on the stack.
    /// Returns `None` if the attribute is absent.
    ///
    /// This realizes the `'callpath': 'main/foo'` representation from the
    /// record example in §III-A of the paper.
    pub fn path_string(&self, attr: AttrId) -> Option<Value> {
        let mut iter = self.all(attr);
        let first = iter.next()?;
        match iter.next() {
            None => Some(first.clone()),
            Some(second) => {
                let mut s = first.to_text().into_owned();
                s.push('/');
                s.push_str(&second.to_text());
                for v in iter {
                    s.push('/');
                    s.push_str(&v.to_text());
                }
                Some(Value::Str(Arc::from(s.as_str())))
            }
        }
    }

    /// Render as `label=value,label=value,...` for diagnostics.
    pub fn describe(&self, store: &AttributeStore) -> String {
        let mut out = String::new();
        for (i, (attr, value)) in self.pairs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match store.name_of(*attr) {
                Some(name) => out.push_str(&name),
                None => out.push_str(&format!("#{attr}")),
            }
            out.push('=');
            out.push_str(&value.to_text());
        }
        out
    }
}

/// Convenience builder for flat records from labels, used in tests,
/// examples, and the `.cali` reader.
pub struct RecordBuilder<'a> {
    store: &'a AttributeStore,
    record: FlatRecord,
}

impl<'a> RecordBuilder<'a> {
    /// Start building a record whose labels are interned in `store`.
    pub fn new(store: &'a AttributeStore) -> RecordBuilder<'a> {
        RecordBuilder {
            store,
            record: FlatRecord::new(),
        }
    }

    /// Add `label=value`, interning the label with the value's own type.
    pub fn with(mut self, label: &str, value: impl Into<Value>) -> Self {
        let value = value.into();
        let attr = self
            .store
            .create(label, value.value_type(), Default::default())
            .unwrap_or_else(|_| {
                // Label exists with another type: keep the existing
                // attribute; the value is stored as provided.
                self.store.find(label).expect("attribute must exist")
            });
        self.record.push(attr.id(), value);
        self
    }

    /// Finish and return the record.
    pub fn build(self) -> FlatRecord {
        self.record
    }
}

/// Resolve an attribute handle list for a set of labels; missing labels
/// are skipped. Helper shared by the query engine and formatters.
pub fn resolve_attrs(store: &AttributeStore, labels: &[String]) -> Vec<Attribute> {
    labels.iter().filter_map(|l| store.find(l)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NODE_NONE;
    use crate::value::ValueType;

    #[test]
    fn unpack_expands_node_paths() {
        let store = AttributeStore::new();
        let func = store.create_simple("function", ValueType::Str);
        let dur = store.create_simple("time.duration", ValueType::Float);
        let tree = ContextTree::new();
        let main = tree.get_child(NODE_NONE, func.id(), &Value::str("main"));
        let foo = tree.get_child(main, func.id(), &Value::str("foo"));

        let mut rec = SnapshotRecord::new();
        rec.push_node(foo);
        rec.push_imm(dur.id(), Value::Float(251.0));

        let flat = rec.unpack(&tree);
        assert_eq!(flat.len(), 3);
        assert_eq!(flat.first(func.id()), Some(&Value::str("main")));
        assert_eq!(flat.get(func.id()), Some(&Value::str("foo")));
        assert_eq!(flat.get(dur.id()), Some(&Value::Float(251.0)));
    }

    #[test]
    fn path_string_joins_nested_values() {
        let store = AttributeStore::new();
        let func = store.create_simple("function", ValueType::Str);
        let mut rec = FlatRecord::new();
        rec.push(func.id(), Value::str("main"));
        rec.push(func.id(), Value::str("foo"));
        rec.push(func.id(), Value::str("bar"));
        assert_eq!(
            rec.path_string(func.id()),
            Some(Value::str("main/foo/bar"))
        );
    }

    #[test]
    fn path_string_single_value_is_unchanged() {
        let mut rec = FlatRecord::new();
        rec.push(3, Value::Int(17));
        assert_eq!(rec.path_string(3), Some(Value::Int(17)));
        assert_eq!(rec.path_string(4), None);
    }

    #[test]
    fn builder_interns_labels() {
        let store = AttributeStore::new();
        let rec = RecordBuilder::new(&store)
            .with("loop", "mainloop")
            .with("loop.iteration", 17i64)
            .with("time.duration", 251.0)
            .build();
        assert_eq!(rec.len(), 3);
        assert_eq!(store.len(), 3);
        let it = store.find("loop.iteration").unwrap();
        assert_eq!(rec.get(it.id()), Some(&Value::Int(17)));
        assert!(rec.describe(&store).contains("loop=mainloop"));
    }

    #[test]
    fn get_returns_innermost() {
        let mut rec = FlatRecord::new();
        rec.push(0, Value::str("outer"));
        rec.push(0, Value::str("inner"));
        assert_eq!(rec.get(0), Some(&Value::str("inner")));
        assert_eq!(rec.first(0), Some(&Value::str("outer")));
        assert_eq!(rec.all(0).count(), 2);
    }
}
