//! The variant value type used throughout the data model.
//!
//! The paper's key:value data model (§III-A) allows string, integer, and
//! floating-point attribute values. We additionally support unsigned
//! integers and booleans, which the Caliper implementation also provides.
//!
//! `Value` must be usable as part of an aggregation key, which requires
//! `Eq` and `Hash`. Floating-point values are compared and hashed by their
//! bit pattern: two floats are the same key iff they are bitwise identical.
//! This matches how the aggregation database in the paper treats key
//! attributes (a "compact, collision-free hash" of the encoded entries).

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The type of an attribute or value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// UTF-8 string data.
    Str,
    /// Signed 64-bit integer.
    Int,
    /// Unsigned 64-bit integer.
    UInt,
    /// 64-bit IEEE-754 floating point.
    Float,
    /// Boolean flag.
    Bool,
}

impl ValueType {
    /// Short lowercase name used in the `.cali` stream encoding and in
    /// attribute-creation configuration strings.
    pub fn name(self) -> &'static str {
        match self {
            ValueType::Str => "string",
            ValueType::Int => "int",
            ValueType::UInt => "uint",
            ValueType::Float => "double",
            ValueType::Bool => "bool",
        }
    }

    /// Parse a type name as written in the `.cali` encoding.
    pub fn from_name(name: &str) -> Option<ValueType> {
        match name {
            "string" | "str" => Some(ValueType::Str),
            "int" | "i64" => Some(ValueType::Int),
            "uint" | "u64" => Some(ValueType::UInt),
            "double" | "float" | "f64" => Some(ValueType::Float),
            "bool" => Some(ValueType::Bool),
            _ => None,
        }
    }

    /// True for `Int`, `UInt`, and `Float`.
    pub fn is_numeric(self) -> bool {
        matches!(self, ValueType::Int | ValueType::UInt | ValueType::Float)
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single attribute value.
///
/// Strings are reference-counted so that records can be cloned cheaply;
/// snapshot processing on the runtime hot path never copies string bytes.
#[derive(Debug, Clone)]
pub enum Value {
    /// A string value.
    Str(Arc<str>),
    /// A signed integer value.
    Int(i64),
    /// An unsigned integer value.
    UInt(u64),
    /// A floating-point value.
    Float(f64),
    /// A boolean value.
    Bool(bool),
}

impl Value {
    /// Create a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Value {
        Value::Str(s.into())
    }

    /// The runtime type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Str(_) => ValueType::Str,
            Value::Int(_) => ValueType::Int,
            Value::UInt(_) => ValueType::UInt,
            Value::Float(_) => ValueType::Float,
            Value::Bool(_) => ValueType::Bool,
        }
    }

    /// Numeric view as `f64`. Strings parse if possible; booleans map to
    /// 0.0/1.0. Returns `None` for non-numeric strings.
    pub fn to_f64(&self) -> Option<f64> {
        match self {
            Value::Str(s) => s.parse().ok(),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
        }
    }

    /// Numeric view as `i64`, truncating floats.
    pub fn to_i64(&self) -> Option<i64> {
        match self {
            Value::Str(s) => s.parse().ok(),
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            Value::Float(f) => Some(*f as i64),
            Value::Bool(b) => Some(*b as i64),
        }
    }

    /// Numeric view as `u64`. Negative values yield `None`.
    pub fn to_u64(&self) -> Option<u64> {
        match self {
            Value::Str(s) => s.parse().ok(),
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::UInt(u) => Some(*u),
            Value::Float(f) if *f >= 0.0 => Some(*f as u64),
            Value::Float(_) => None,
            Value::Bool(b) => Some(*b as u64),
        }
    }

    /// Borrow the string contents if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render the value as text, without allocating for strings.
    pub fn to_text(&self) -> Cow<'_, str> {
        match self {
            Value::Str(s) => Cow::Borrowed(s),
            other => Cow::Owned(other.to_string()),
        }
    }

    /// Parse text into a value of the given type. String parsing never
    /// fails; numeric parsing follows Rust's standard syntax.
    pub fn parse_typed(text: &str, vtype: ValueType) -> Option<Value> {
        match vtype {
            ValueType::Str => Some(Value::str(text)),
            ValueType::Int => text.parse().ok().map(Value::Int),
            ValueType::UInt => text.parse().ok().map(Value::UInt),
            ValueType::Float => text.parse().ok().map(Value::Float),
            ValueType::Bool => match text {
                "true" | "1" => Some(Value::Bool(true)),
                "false" | "0" => Some(Value::Bool(false)),
                _ => None,
            },
        }
    }

    /// Best-effort parse without a type hint: tries int, uint, float, bool,
    /// falling back to string. Used by the query language for literals.
    pub fn parse_guess(text: &str) -> Value {
        if let Ok(i) = text.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(u) = text.parse::<u64>() {
            return Value::UInt(u);
        }
        if let Ok(f) = text.parse::<f64>() {
            return Value::Float(f);
        }
        match text {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            _ => Value::str(text),
        }
    }

    /// Total order across values: numeric values (int, uint, float,
    /// bool) compare numerically with each other; strings compare
    /// lexically with each other; every number sorts before every
    /// string, regardless of the string's content. NaN sorts after all
    /// numbers.
    ///
    /// The class-based rule (rather than parsing numeric-looking
    /// strings) is what makes this a lawful total order — `"0"` vs
    /// `"‑"` vs `0` would otherwise violate transitivity. The property
    /// tests in `tests/proptests.rs` verify antisymmetry and
    /// transitivity.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Str(a), Str(b)) => a.cmp(b),
            (Str(_), _) => Ordering::Greater,
            (_, Str(_)) => Ordering::Less,
            _ => {
                let a = self.to_f64().unwrap_or(f64::NAN);
                let b = other.to_f64().unwrap_or(f64::NAN);
                a.total_cmp(&b)
            }
        }
    }

    /// Numeric addition with type preservation where possible. Used by the
    /// `sum` reduction operator.
    pub fn checked_add(&self, other: &Value) -> Option<Value> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(Int(a.checked_add(*b)?)),
            (UInt(a), UInt(b)) => Some(UInt(a.checked_add(*b)?)),
            (Float(a), Float(b)) => Some(Float(a + b)),
            _ => Some(Float(self.to_f64()? + other.to_f64()?)),
        }
    }

    /// True if this value is "truthy": non-empty string, nonzero number,
    /// `true`. Used by `WHERE attribute` existence filters.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Str(s) => !s.is_empty(),
            Value::Int(i) => *i != 0,
            Value::UInt(u) => *u != 0,
            Value::Float(f) => *f != 0.0,
            Value::Bool(b) => *b,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => f.write_str(s),
            Value::Int(i) => write!(f, "{i}"),
            Value::UInt(u) => write!(f, "{u}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Str(a), Str(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (UInt(a), UInt(b)) => a == b,
            // Bit-pattern equality so Value can implement Eq and Hash.
            (Float(a), Float(b)) => a.to_bits() == b.to_bits(),
            (Bool(a), Bool(b)) => a == b,
            // Cross-type integer equality (17i64 == 17u64): the query
            // language produces Int literals but data may carry UInt.
            (Int(a), UInt(b)) | (UInt(b), Int(a)) => {
                u64::try_from(*a).map(|a| a == *b).unwrap_or(false)
            }
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Str(s) => {
                state.write_u8(0);
                s.hash(state);
            }
            // Int and UInt with the same non-negative magnitude must hash
            // alike because they compare equal.
            Value::Int(i) => {
                if let Ok(u) = u64::try_from(*i) {
                    state.write_u8(1);
                    state.write_u64(u);
                } else {
                    state.write_u8(2);
                    state.write_i64(*i);
                }
            }
            Value::UInt(u) => {
                state.write_u8(1);
                state.write_u64(*u);
            }
            Value::Float(f) => {
                state.write_u8(3);
                state.write_u64(f.to_bits());
            }
            Value::Bool(b) => {
                state.write_u8(4);
                state.write_u8(*b as u8);
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Value {
        Value::Int(i as i64)
    }
}

impl From<u64> for Value {
    fn from(u: u64) -> Value {
        Value::UInt(u)
    }
}

impl From<u32> for Value {
    fn from(u: u32) -> Value {
        Value::UInt(u as u64)
    }
}

impl From<usize> for Value {
    fn from(u: usize) -> Value {
        Value::UInt(u as u64)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn type_names_roundtrip() {
        for t in [
            ValueType::Str,
            ValueType::Int,
            ValueType::UInt,
            ValueType::Float,
            ValueType::Bool,
        ] {
            assert_eq!(ValueType::from_name(t.name()), Some(t));
        }
        assert_eq!(ValueType::from_name("nope"), None);
    }

    #[test]
    fn numeric_conversions() {
        assert_eq!(Value::Int(-3).to_f64(), Some(-3.0));
        assert_eq!(Value::UInt(7).to_i64(), Some(7));
        assert_eq!(Value::Float(2.5).to_i64(), Some(2));
        assert_eq!(Value::Int(-1).to_u64(), None);
        assert_eq!(Value::str("42").to_f64(), Some(42.0));
        assert_eq!(Value::str("x").to_f64(), None);
        assert_eq!(Value::Bool(true).to_f64(), Some(1.0));
    }

    #[test]
    fn parse_typed_respects_type() {
        assert_eq!(
            Value::parse_typed("17", ValueType::Int),
            Some(Value::Int(17))
        );
        assert_eq!(
            Value::parse_typed("17", ValueType::Str),
            Some(Value::str("17"))
        );
        assert_eq!(Value::parse_typed("x", ValueType::Int), None);
        assert_eq!(
            Value::parse_typed("1", ValueType::Bool),
            Some(Value::Bool(true))
        );
    }

    #[test]
    fn parse_guess_prefers_int() {
        assert_eq!(Value::parse_guess("12"), Value::Int(12));
        assert_eq!(Value::parse_guess("-12"), Value::Int(-12));
        assert_eq!(Value::parse_guess("12.5"), Value::Float(12.5));
        assert_eq!(Value::parse_guess("true"), Value::Bool(true));
        assert_eq!(Value::parse_guess("foo"), Value::str("foo"));
        // Larger than i64::MAX falls through to u64.
        assert_eq!(
            Value::parse_guess("18446744073709551615"),
            Value::UInt(u64::MAX)
        );
    }

    #[test]
    fn mixed_int_uint_equality_and_hash() {
        assert_eq!(Value::Int(17), Value::UInt(17));
        assert_eq!(hash_of(&Value::Int(17)), hash_of(&Value::UInt(17)));
        assert_ne!(Value::Int(-1), Value::UInt(u64::MAX));
    }

    #[test]
    fn float_bit_equality() {
        assert_eq!(Value::Float(1.5), Value::Float(1.5));
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_ne!(Value::Float(0.0), Value::Float(-0.0));
    }

    #[test]
    fn total_order_is_sane() {
        assert_eq!(
            Value::Int(1).total_cmp(&Value::Float(1.5)),
            Ordering::Less
        );
        assert_eq!(
            Value::str("abc").total_cmp(&Value::str("abd")),
            Ordering::Less
        );
        assert_eq!(Value::Int(2).total_cmp(&Value::UInt(2)), Ordering::Equal);
        // numbers sort before non-numeric strings
        assert_eq!(
            Value::Int(999).total_cmp(&Value::str("a")),
            Ordering::Less
        );
    }

    #[test]
    fn checked_add_preserves_types() {
        assert_eq!(
            Value::Int(2).checked_add(&Value::Int(3)),
            Some(Value::Int(5))
        );
        assert_eq!(
            Value::UInt(2).checked_add(&Value::UInt(3)),
            Some(Value::UInt(5))
        );
        assert_eq!(
            Value::Int(2).checked_add(&Value::Float(0.5)),
            Some(Value::Float(2.5))
        );
        assert_eq!(Value::Int(i64::MAX).checked_add(&Value::Int(1)), None);
    }

    #[test]
    fn truthiness() {
        assert!(Value::str("x").is_truthy());
        assert!(!Value::str("").is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Float(0.1).is_truthy());
    }

    #[test]
    fn display_roundtrip_for_numbers() {
        for v in [Value::Int(-7), Value::UInt(7), Value::Float(2.25)] {
            let text = v.to_string();
            assert_eq!(Value::parse_typed(&text, v.value_type()), Some(v));
        }
    }
}
