//! A small, fast, non-cryptographic hasher for aggregation keys.
//!
//! The paper's aggregation service computes a "compact, collision-free
//! hash value" over the key attributes to index its in-memory aggregation
//! database (§IV-B). SipHash (the `std` default) is needlessly slow for
//! this hot path; this module provides an FxHash-style multiply-xor
//! hasher, implemented in-repo to avoid an extra dependency.
//!
//! Not HashDoS-resistant — keys come from the monitored program itself,
//! not from untrusted input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style streaming hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hash a single value with [`FxHasher`].
pub fn fxhash<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(fxhash(&"hello"), fxhash(&"hello"));
        assert_eq!(fxhash(&42u64), fxhash(&42u64));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(fxhash(&"hello"), fxhash(&"world"));
        assert_ne!(fxhash(&1u64), fxhash(&2u64));
        // trailing-length mixing distinguishes padded remainders
        assert_ne!(fxhash(&[1u8][..]), fxhash(&[1u8, 0][..]));
    }

    #[test]
    fn works_as_map_hasher() {
        let mut map: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            map.insert(format!("key{i}"), i);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get("key500"), Some(&500));
    }

    #[test]
    fn distribution_has_no_gross_collisions() {
        let mut seen = FxHashSet::default();
        for i in 0..100_000u64 {
            seen.insert(fxhash(&i));
        }
        // u64 output over 1e5 sequential inputs should be collision-free.
        assert_eq!(seen.len(), 100_000);
    }
}
