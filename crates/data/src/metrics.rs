//! Pipeline self-instrumentation: a lock-cheap registry of named
//! counters, gauges, and timers.
//!
//! The profiling pipeline measures other programs; this module lets it
//! measure *itself* — aggregator occupancy, reader skip rates, journal
//! flush cadence, shard merge cost — and expose the numbers in the same
//! flexible key:value shape the paper advocates (§III): each metric is
//! one `name = value` pair, queryable like any other attribute once
//! emitted as a snapshot record.
//!
//! Design:
//!
//! * Registration (name → handle) takes a mutex once; the returned
//!   handle is an `Arc` around atomics, so **updates never lock**.
//!   Call sites cache handles; hot paths hold pre-resolved handles in
//!   an `Option` so that disabled metrics cost zero atomic operations.
//! * Metric names follow `layer.component.metric`
//!   (e.g. `format.reader.records`, `query.aggregator.groups`).
//! * Every metric declares a [`Stability`] class. **Stable** metrics
//!   are functions of the input data alone — byte-identical output for
//!   any worker-thread count — and make up the default `--stats`
//!   block. **Volatile** metrics (wall-clock timers, scheduling-
//!   dependent counts) are reported only on request.
//! * Snapshots iterate a `BTreeMap`, so rendered output is always
//!   sorted by metric name — deterministic by construction.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// What a metric measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing event count.
    Counter,
    /// Last-written (or high-water) level.
    Gauge,
    /// Scoped duration accumulator: total nanoseconds + call count.
    Timer,
}

impl MetricKind {
    /// Lower-case name used in rendered output and snapshot records.
    pub fn name(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Timer => "timer",
        }
    }
}

/// Whether a metric's value is a pure function of the input data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stability {
    /// Deterministic: identical for every `--threads N`. Included in
    /// the default stats block, safe for golden tests.
    Stable,
    /// Timing- or scheduling-dependent (wall-clock nanos, per-worker
    /// counts). Excluded from the default stats block.
    Volatile,
}

/// Shared metric storage; handles are thin `Arc` wrappers around this.
#[derive(Debug)]
struct Cell {
    kind: MetricKind,
    stability: Stability,
    /// Counter count / gauge level / timer total nanoseconds.
    value: AtomicU64,
    /// Timer call count (unused for counters and gauges).
    calls: AtomicU64,
}

impl Cell {
    fn new(kind: MetricKind, stability: Stability) -> Cell {
        Cell {
            kind,
            stability,
            value: AtomicU64::new(0),
            calls: AtomicU64::new(0),
        }
    }
}

/// Handle to a registered counter. Cloning shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Counter(Arc<Cell>);

impl Counter {
    /// Add `n` events.
    pub fn add(&self, n: u64) {
        self.0.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }
}

/// Handle to a registered gauge. Cloning shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<Cell>);

impl Gauge {
    /// Set the level.
    pub fn set(&self, v: u64) {
        self.0.value.store(v, Ordering::Relaxed);
    }

    /// Raise the level to `v` if it is higher (high-water tracking).
    pub fn set_max(&self, v: u64) {
        self.0.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }
}

/// Handle to a registered timer. Cloning shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Timer(Arc<Cell>);

impl Timer {
    /// Start a scoped measurement; the elapsed time is recorded when
    /// the returned guard drops.
    pub fn start(&self) -> TimerGuard {
        TimerGuard {
            cell: Arc::clone(&self.0),
            start: Instant::now(),
        }
    }

    /// Record an externally measured duration.
    pub fn add_ns(&self, ns: u64) {
        self.0.value.fetch_add(ns, Ordering::Relaxed);
        self.0.calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// Number of recorded intervals.
    pub fn calls(&self) -> u64 {
        self.0.calls.load(Ordering::Relaxed)
    }
}

/// Scope guard returned by [`Timer::start`]; records on drop.
#[derive(Debug)]
pub struct TimerGuard {
    cell: Arc<Cell>,
    start: Instant,
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.cell.value.fetch_add(ns, Ordering::Relaxed);
        self.cell.calls.fetch_add(1, Ordering::Relaxed);
    }
}

/// One metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSample {
    /// Metric name (`layer.component.metric`; timers append a
    /// `.calls` / `.ns` suffix).
    pub name: String,
    /// What the metric measures.
    pub kind: MetricKind,
    /// Determinism class.
    pub stability: Stability,
    /// Sampled value.
    pub value: u64,
}

/// A registry of named metrics. Registration locks briefly; updates
/// through the returned handles are lock-free atomic operations.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    cells: Mutex<BTreeMap<String, Arc<Cell>>>,
}

impl MetricsRegistry {
    /// Create an empty registry (process code normally uses
    /// [`global()`]; instance registries serve tests and scoped
    /// subsystems like a runtime channel).
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn cell(&self, name: &str, kind: MetricKind, stability: Stability) -> Arc<Cell> {
        let mut cells = self.cells.lock().unwrap_or_else(|e| e.into_inner());
        let cell = cells
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Cell::new(kind, stability)));
        debug_assert!(
            cell.kind == kind,
            "metric {name} re-registered as {:?}, was {:?}",
            kind,
            cell.kind
        );
        Arc::clone(cell)
    }

    /// Register (or look up) a stable counter.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.cell(name, MetricKind::Counter, Stability::Stable))
    }

    /// Register (or look up) a volatile counter (value depends on
    /// scheduling, e.g. per-worker work-stealing counts).
    pub fn counter_volatile(&self, name: &str) -> Counter {
        Counter(self.cell(name, MetricKind::Counter, Stability::Volatile))
    }

    /// Register (or look up) a stable gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.cell(name, MetricKind::Gauge, Stability::Stable))
    }

    /// Register (or look up) a volatile gauge.
    pub fn gauge_volatile(&self, name: &str) -> Gauge {
        Gauge(self.cell(name, MetricKind::Gauge, Stability::Volatile))
    }

    /// Register (or look up) a timer. Timers measure wall-clock time
    /// and are always [`Stability::Volatile`].
    pub fn timer(&self, name: &str) -> Timer {
        Timer(self.cell(name, MetricKind::Timer, Stability::Volatile))
    }

    /// Sample every metric, sorted by name. Timers contribute two
    /// samples: `<name>.calls` and `<name>.ns`.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let cells = self.cells.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::with_capacity(cells.len());
        for (name, cell) in cells.iter() {
            match cell.kind {
                MetricKind::Counter | MetricKind::Gauge => out.push(MetricSample {
                    name: name.clone(),
                    kind: cell.kind,
                    stability: cell.stability,
                    value: cell.value.load(Ordering::Relaxed),
                }),
                MetricKind::Timer => {
                    out.push(MetricSample {
                        name: format!("{name}.calls"),
                        kind: cell.kind,
                        stability: cell.stability,
                        value: cell.calls.load(Ordering::Relaxed),
                    });
                    out.push(MetricSample {
                        name: format!("{name}.ns"),
                        kind: cell.kind,
                        stability: cell.stability,
                        value: cell.value.load(Ordering::Relaxed),
                    });
                }
            }
        }
        // Timer suffixes can interleave with sibling names; restore
        // strict name order.
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Render as sorted `name=value` lines. With `stable_only`, the
    /// block contains only [`Stability::Stable`] metrics and is
    /// byte-identical for every worker-thread count.
    pub fn render_text(&self, stable_only: bool) -> String {
        let mut out = String::new();
        for sample in self.snapshot() {
            if stable_only && sample.stability != Stability::Stable {
                continue;
            }
            out.push_str(&sample.name);
            out.push('=');
            out.push_str(&sample.value.to_string());
            out.push('\n');
        }
        out
    }

    /// Render as one flat JSON object, keys sorted by metric name.
    pub fn render_json(&self, stable_only: bool) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for sample in self.snapshot() {
            if stable_only && sample.stability != Stability::Stable {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            // Metric names are `[a-z0-9._]` by convention; escape the
            // JSON specials anyway so arbitrary names stay well-formed.
            for c in sample.name.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push_str("\":");
            out.push_str(&sample.value.to_string());
        }
        out.push('}');
        out
    }

    /// Reset every registered metric to zero (tests and repeated runs
    /// within one process).
    pub fn reset(&self) {
        let cells = self.cells.lock().unwrap_or_else(|e| e.into_inner());
        for cell in cells.values() {
            cell.value.store(0, Ordering::Relaxed);
            cell.calls.store(0, Ordering::Relaxed);
        }
    }

    /// Number of registered metrics (timers count once).
    pub fn len(&self) -> usize {
        self.cells.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide registry used by the offline pipeline (format,
/// query, mpisim layers). The runtime uses per-channel instance
/// registries instead, so dogfooded profiles stay isolated.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.b.events");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name → same cell.
        assert_eq!(reg.counter("a.b.events").get(), 5);

        let g = reg.gauge("a.b.level");
        g.set(7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
        g.set_max(10);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn timer_guard_records_on_drop() {
        let reg = MetricsRegistry::new();
        let t = reg.timer("a.b.work");
        {
            let _guard = t.start();
        }
        t.add_ns(250);
        assert_eq!(t.calls(), 2);
        assert!(t.total_ns() >= 250);
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let reg = MetricsRegistry::new();
        reg.gauge("z.level").set(1);
        reg.counter("a.events").add(2);
        reg.timer("m.work").add_ns(5);
        let names: Vec<String> = reg.snapshot().into_iter().map(|s| s.name).collect();
        assert_eq!(names, ["a.events", "m.work.calls", "m.work.ns", "z.level"]);
    }

    #[test]
    fn stable_rendering_excludes_volatile_metrics() {
        let reg = MetricsRegistry::new();
        reg.counter("a.events").add(3);
        reg.timer("b.work").add_ns(9);
        reg.counter_volatile("c.sched").add(1);
        assert_eq!(reg.render_text(true), "a.events=3\n");
        let all = reg.render_text(false);
        assert!(all.contains("b.work.calls=1\n"), "{all}");
        assert!(all.contains("b.work.ns=9\n"), "{all}");
        assert!(all.contains("c.sched=1\n"), "{all}");
    }

    #[test]
    fn json_rendering_is_flat_and_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("b.second").add(2);
        reg.counter("a.first").add(1);
        assert_eq!(reg.render_json(true), "{\"a.first\":1,\"b.second\":2}");
        assert_eq!(MetricsRegistry::new().render_json(true), "{}");
    }

    #[test]
    fn reset_zeroes_everything() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(3);
        reg.timer("t").add_ns(5);
        reg.reset();
        assert_eq!(reg.counter("a").get(), 0);
        assert_eq!(reg.timer("t").calls(), 0);
        assert_eq!(reg.timer("t").total_ns(), 0);
    }

    #[test]
    fn handles_are_lock_free_across_threads() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("shared.events");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }
}
