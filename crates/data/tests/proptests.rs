//! Property-based tests for the data model invariants.

use caliper_data::{
    fxhash, AttributeStore, ContextTree, FlatRecord, SnapshotRecord, Value, ValueType, NODE_NONE,
};
use proptest::prelude::*;

/// Strategy producing arbitrary values across all five value kinds.
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        "[a-zA-Z0-9_./ -]{0,24}".prop_map(Value::str),
        any::<i64>().prop_map(Value::Int),
        any::<u64>().prop_map(Value::UInt),
        any::<f64>().prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
    ]
}

proptest! {
    /// Eq ⇒ equal hashes, over all value kinds (the HashMap contract the
    /// aggregation database relies on).
    #[test]
    fn value_eq_implies_hash_eq(a in arb_value(), b in arb_value()) {
        if a == b {
            prop_assert_eq!(fxhash(&a), fxhash(&b));
        }
    }

    /// Display → parse_typed roundtrips for every non-string value whose
    /// textual form is exact (i.e. all ints, uints, bools and floats —
    /// Rust's float Display is shortest-roundtrip).
    #[test]
    fn value_display_parse_roundtrip(v in arb_value()) {
        let text = v.to_string();
        let parsed = Value::parse_typed(&text, v.value_type());
        match &v {
            // NaN never equals itself textually ("NaN" parses to a
            // different NaN payload is fine; bit equality may differ).
            Value::Float(f) if f.is_nan() => {}
            _ => prop_assert_eq!(parsed, Some(v)),
        }
    }

    /// total_cmp is a total order: antisymmetric and transitive on
    /// sampled triples.
    #[test]
    fn value_total_cmp_total_order(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
    }

    /// Interning is idempotent and ids stay dense regardless of label set.
    #[test]
    fn store_interning_idempotent(labels in prop::collection::vec("[a-z.]{1,12}", 1..40)) {
        let store = AttributeStore::new();
        let mut ids = std::collections::HashMap::new();
        for l in &labels {
            let a = store.create_simple(l, ValueType::Int);
            if let Some(prev) = ids.insert(l.clone(), a.id()) {
                prop_assert_eq!(prev, a.id());
            }
        }
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        prop_assert_eq!(store.len(), unique.len());
        // Ids are dense 0..len.
        for a in store.all() {
            prop_assert!((a.id() as usize) < store.len());
        }
    }

    /// Context-tree path expansion inverts get_child chains: pushing a
    /// sequence of (attr, value) pairs and expanding the leaf yields the
    /// same sequence.
    #[test]
    fn tree_path_roundtrip(pairs in prop::collection::vec((0u32..8, arb_value()), 1..30)) {
        let tree = ContextTree::new();
        let mut node = NODE_NONE;
        for (attr, value) in &pairs {
            node = tree.get_child(node, *attr, value);
        }
        let path = tree.path(node);
        prop_assert_eq!(path, pairs);
    }

    /// The tree deduplicates: inserting the same chain twice creates no
    /// new nodes.
    #[test]
    fn tree_dedup(pairs in prop::collection::vec((0u32..4, arb_value()), 1..20)) {
        let tree = ContextTree::new();
        let mut node = NODE_NONE;
        for (attr, value) in &pairs {
            node = tree.get_child(node, *attr, value);
        }
        let size = tree.len();
        let mut node2 = NODE_NONE;
        for (attr, value) in &pairs {
            node2 = tree.get_child(node2, *attr, value);
        }
        prop_assert_eq!(node, node2);
        prop_assert_eq!(tree.len(), size);
    }

    /// Snapshot unpack = concatenation of node paths and immediates, in
    /// entry order.
    #[test]
    fn snapshot_unpack_matches_manual_expansion(
        stack in prop::collection::vec((0u32..4, arb_value()), 1..10),
        imm in prop::collection::vec((4u32..8, arb_value()), 0..5),
    ) {
        let tree = ContextTree::new();
        let mut node = NODE_NONE;
        for (attr, value) in &stack {
            node = tree.get_child(node, *attr, value);
        }
        let mut rec = SnapshotRecord::new();
        rec.push_node(node);
        for (attr, value) in &imm {
            rec.push_imm(*attr, value.clone());
        }
        let flat = rec.unpack(&tree);
        let mut expect = stack.clone();
        expect.extend(imm.iter().cloned());
        prop_assert_eq!(flat.pairs().to_vec(), expect);
    }

    /// FlatRecord::get returns the last pushed value for an attribute,
    /// first returns the first, and all preserves order.
    #[test]
    fn flat_record_access(values in prop::collection::vec(arb_value(), 1..20)) {
        let mut rec = FlatRecord::new();
        for v in &values {
            rec.push(0, v.clone());
        }
        prop_assert_eq!(rec.first(0), Some(&values[0]));
        prop_assert_eq!(rec.get(0), Some(&values[values.len() - 1]));
        let collected: Vec<_> = rec.all(0).cloned().collect();
        prop_assert_eq!(collected, values);
    }
}
