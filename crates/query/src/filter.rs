//! WHERE-clause evaluation over flat records.

use std::sync::Arc;

use caliper_data::metrics::Counter;
use caliper_data::{Attribute, AttributeStore, FlatRecord, Value, ValueType};

use crate::ast::{CmpOp, Filter};

/// Can a comparison between a value of type `lhs` and one of type `rhs`
/// ever be non-constant?
///
/// [`Value`]'s equality is class-strict — `Int(2) != Float(2.0)` — with
/// one deliberate exception (`Int`/`UInt` compare numerically), and its
/// total order groups numbers before strings. So `=`/`!=` between
/// different classes (other than the `Int`/`UInt` pair) and ordering
/// comparisons between a string and a number always produce the same
/// answer, whatever the data says. The sema pass reports such filters
/// at check time (`W004`); [`FilterSet::matches`] counts them at run
/// time in the `query.filter.type_mismatch` metric.
pub fn cmp_types_compatible(op: CmpOp, lhs: ValueType, rhs: ValueType) -> bool {
    let int_like = |t: ValueType| matches!(t, ValueType::Int | ValueType::UInt);
    match op {
        CmpOp::Eq | CmpOp::Ne => lhs == rhs || (int_like(lhs) && int_like(rhs)),
        // Ordering: strings only order against strings; everything else
        // (numbers, bools) orders numerically.
        _ => (lhs == ValueType::Str) == (rhs == ValueType::Str),
    }
}

/// Compiled filter bound to an attribute store. Attribute lookups are
/// cached; labels that do not resolve (yet) behave as "attribute absent".
pub struct FilterSet {
    filters: Vec<(Filter, std::cell::RefCell<Option<Attribute>>)>,
    store: Arc<AttributeStore>,
    type_mismatches: Counter,
}

impl FilterSet {
    /// Compile a filter list against a store.
    pub fn new(filters: Vec<Filter>, store: Arc<AttributeStore>) -> FilterSet {
        FilterSet {
            filters: filters
                .into_iter()
                .map(|f| (f, std::cell::RefCell::new(None)))
                .collect(),
            store,
            type_mismatches: caliper_data::metrics::global()
                .counter("query.filter.type_mismatch"),
        }
    }

    /// True if there are no conditions (everything passes).
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    fn resolve(&self, cache: &std::cell::RefCell<Option<Attribute>>, label: &str) -> Option<Attribute> {
        if let Some(attr) = cache.borrow().as_ref() {
            return Some(attr.clone());
        }
        let attr = self.store.find(label)?;
        *cache.borrow_mut() = Some(attr.clone());
        Some(attr)
    }

    /// Evaluate all conditions (AND) against a record.
    pub fn matches(&self, record: &FlatRecord) -> bool {
        self.filters.iter().all(|(filter, cache)| match filter {
            Filter::Exists(label) => match self.resolve(cache, label) {
                Some(attr) => record.contains(attr.id()),
                None => false,
            },
            Filter::NotExists(label) => match self.resolve(cache, label) {
                Some(attr) => !record.contains(attr.id()),
                None => true,
            },
            Filter::Cmp { attr, op, value } => match self.resolve(cache, attr) {
                Some(attr) => {
                    if !record.contains(attr.id()) {
                        return false;
                    }
                    self.count_mismatches(&attr, *op, value, record);
                    match op {
                        // != : no occurrence equals the literal
                        CmpOp::Ne => record.all(attr.id()).all(|v| v != value),
                        // others: any occurrence satisfies
                        op => record.all(attr.id()).any(|v| op.eval(v, value)),
                    }
                }
                None => false,
            },
        })
    }

    /// Count occurrences whose value class can never satisfy (or fail)
    /// the comparison against the literal — the silent type-coercion
    /// drop this metric makes visible.
    fn count_mismatches(&self, attr: &Attribute, op: CmpOp, value: &Value, record: &FlatRecord) {
        let literal_type = value.value_type();
        let mismatched = record
            .all(attr.id())
            .filter(|v| !cmp_types_compatible(op, v.value_type(), literal_type))
            .count();
        if mismatched > 0 {
            self.type_mismatches.add(mismatched as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliper_data::{RecordBuilder, Value};

    fn store_and_records() -> (Arc<AttributeStore>, Vec<FlatRecord>) {
        let store = Arc::new(AttributeStore::new());
        let records = vec![
            RecordBuilder::new(&store)
                .with("kernel", "calc-dt")
                .with("mpi.rank", 0i64)
                .with("time.duration", 5.0)
                .build(),
            RecordBuilder::new(&store)
                .with("mpi.function", "MPI_Barrier")
                .with("mpi.rank", 1i64)
                .with("time.duration", 50.0)
                .build(),
        ];
        (store, records)
    }

    fn eval(filters: Vec<Filter>, store: &Arc<AttributeStore>, rec: &FlatRecord) -> bool {
        FilterSet::new(filters, Arc::clone(store)).matches(rec)
    }

    #[test]
    fn exists_and_not_exists() {
        let (store, recs) = store_and_records();
        // WHERE not(mpi.function) — the paper's exclusion of MPI records.
        let f = vec![Filter::NotExists("mpi.function".into())];
        assert!(eval(f.clone(), &store, &recs[0]));
        assert!(!eval(f, &store, &recs[1]));

        let f = vec![Filter::Exists("kernel".into())];
        assert!(eval(f.clone(), &store, &recs[0]));
        assert!(!eval(f, &store, &recs[1]));
    }

    #[test]
    fn unresolved_labels() {
        let (store, recs) = store_and_records();
        assert!(!eval(vec![Filter::Exists("nope".into())], &store, &recs[0]));
        assert!(eval(
            vec![Filter::NotExists("nope".into())],
            &store,
            &recs[0]
        ));
        assert!(!eval(
            vec![Filter::Cmp {
                attr: "nope".into(),
                op: CmpOp::Eq,
                value: Value::Int(0)
            }],
            &store,
            &recs[0]
        ));
    }

    #[test]
    fn comparisons() {
        let (store, recs) = store_and_records();
        let rank_eq_0 = vec![Filter::Cmp {
            attr: "mpi.rank".into(),
            op: CmpOp::Eq,
            value: Value::Int(0),
        }];
        assert!(eval(rank_eq_0.clone(), &store, &recs[0]));
        assert!(!eval(rank_eq_0, &store, &recs[1]));

        let slow = vec![Filter::Cmp {
            attr: "time.duration".into(),
            op: CmpOp::Gt,
            value: Value::Float(10.0),
        }];
        assert!(!eval(slow.clone(), &store, &recs[0]));
        assert!(eval(slow, &store, &recs[1]));
    }

    #[test]
    fn conditions_are_anded() {
        let (store, recs) = store_and_records();
        let both = vec![
            Filter::Exists("kernel".into()),
            Filter::Cmp {
                attr: "mpi.rank".into(),
                op: CmpOp::Eq,
                value: Value::Int(0),
            },
        ];
        assert!(eval(both.clone(), &store, &recs[0]));
        assert!(!eval(both, &store, &recs[1]));
    }

    #[test]
    fn type_compatibility_rules() {
        use ValueType::*;
        // Equality: class-strict with the Int/UInt exception.
        assert!(cmp_types_compatible(CmpOp::Eq, Int, Int));
        assert!(cmp_types_compatible(CmpOp::Eq, Int, UInt));
        assert!(!cmp_types_compatible(CmpOp::Eq, Float, Int));
        assert!(!cmp_types_compatible(CmpOp::Ne, Str, Int));
        assert!(!cmp_types_compatible(CmpOp::Eq, Bool, Int));
        // Ordering: strings only against strings.
        assert!(cmp_types_compatible(CmpOp::Lt, Float, Int));
        assert!(cmp_types_compatible(CmpOp::Ge, Str, Str));
        assert!(!cmp_types_compatible(CmpOp::Gt, Str, Float));
        assert!(!cmp_types_compatible(CmpOp::Le, Int, Str));
    }

    #[test]
    fn mismatched_comparisons_bump_metric() {
        let (store, recs) = store_and_records();
        let counter = caliper_data::metrics::global().counter("query.filter.type_mismatch");
        let before = counter.get();
        // Float attribute compared against an Int literal: the classic
        // never-matches footgun.
        let f = vec![Filter::Cmp {
            attr: "time.duration".into(),
            op: CmpOp::Eq,
            value: Value::Int(5),
        }];
        assert!(!eval(f, &store, &recs[0]));
        assert_eq!(counter.get(), before + 1);
        // A compatible comparison leaves the counter alone.
        let ok = vec![Filter::Cmp {
            attr: "time.duration".into(),
            op: CmpOp::Gt,
            value: Value::Int(1),
        }];
        assert!(eval(ok, &store, &recs[0]));
        assert_eq!(counter.get(), before + 1);
    }

    #[test]
    fn ne_requires_no_occurrence_to_match() {
        let store = Arc::new(AttributeStore::new());
        let func = store.create_simple("function", caliper_data::ValueType::Str);
        let mut rec = FlatRecord::new();
        rec.push(func.id(), Value::str("main"));
        rec.push(func.id(), Value::str("foo"));
        let ne_main = vec![Filter::Cmp {
            attr: "function".into(),
            op: CmpOp::Ne,
            value: Value::str("main"),
        }];
        // "main" occurs, so != main fails even though "foo" also occurs.
        assert!(!eval(ne_main, &store, &rec));
        let ne_bar = vec![Filter::Cmp {
            attr: "function".into(),
            op: CmpOp::Ne,
            value: Value::str("bar"),
        }];
        assert!(eval(ne_bar, &store, &rec));
    }
}
