//! LET-clause evaluation: derived attributes computed per input record
//! before filtering and aggregation — the "derive aggregation variables"
//! capability the paper's related-work section credits to Cube's metric
//! language, generalized here to arbitrary attributes.

use std::sync::Arc;

use caliper_data::{Attribute, AttributeStore, FlatRecord, Properties, Value, ValueType};

use crate::ast::{LetDef, LetExpr};

/// Compiled LET bindings bound to an attribute store.
pub struct LetSet {
    defs: Vec<(LetDef, Attribute)>,
    store: Arc<AttributeStore>,
}

impl LetSet {
    /// Compile LET definitions; output attributes are interned eagerly.
    pub fn new(defs: Vec<LetDef>, store: Arc<AttributeStore>) -> LetSet {
        let defs = defs
            .into_iter()
            .map(|def| {
                let vtype = match &def.expr {
                    LetExpr::Scale(..) | LetExpr::Ratio(..) | LetExpr::Truncate(..) => {
                        ValueType::Float
                    }
                    LetExpr::First(..) => ValueType::Str,
                };
                let attr = store
                    .create(&def.name, vtype, Properties::AS_VALUE)
                    .unwrap_or_else(|_| store.find(&def.name).expect("exists"));
                (def, attr)
            })
            .collect();
        LetSet { defs, store }
    }

    /// True if there are no bindings.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Evaluate all bindings, appending derived values to the record.
    /// Bindings whose inputs are absent produce no output.
    pub fn apply(&self, record: &mut FlatRecord) {
        for (def, out_attr) in &self.defs {
            let value = self.eval(&def.expr, record);
            if let Some(value) = value {
                record.push(out_attr.id(), value);
            }
        }
    }

    fn lookup(&self, label: &str, record: &FlatRecord) -> Option<Value> {
        let attr = self.store.find(label)?;
        record.get(attr.id()).cloned()
    }

    fn eval(&self, expr: &LetExpr, record: &FlatRecord) -> Option<Value> {
        match expr {
            LetExpr::Scale(attr, factor) => {
                let v = self.lookup(attr, record)?.to_f64()?;
                Some(Value::Float(v * factor))
            }
            LetExpr::Ratio(a, b) => {
                let num = self.lookup(a, record)?.to_f64()?;
                let den = self.lookup(b, record)?.to_f64()?;
                if den == 0.0 {
                    None
                } else {
                    Some(Value::Float(num / den))
                }
            }
            LetExpr::First(labels) => labels
                .iter()
                .find_map(|l| self.lookup(l, record))
                .map(|v| Value::str(v.to_string())),
            LetExpr::Truncate(attr, width) => {
                let v = self.lookup(attr, record)?.to_f64()?;
                Some(Value::Float((v / width).floor() * width))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliper_data::RecordBuilder;

    fn letset(defs: Vec<LetDef>, store: &Arc<AttributeStore>) -> LetSet {
        LetSet::new(defs, Arc::clone(store))
    }

    #[test]
    fn scale_converts_units() {
        let store = Arc::new(AttributeStore::new());
        let mut rec = RecordBuilder::new(&store).with("time.duration", 2500.0).build();
        let ls = letset(
            vec![LetDef {
                name: "time.ms".into(),
                expr: LetExpr::Scale("time.duration".into(), 0.001),
            }],
            &store,
        );
        ls.apply(&mut rec);
        let ms = store.find("time.ms").unwrap();
        assert_eq!(rec.get(ms.id()), Some(&Value::Float(2.5)));
    }

    #[test]
    fn ratio_guards_division_by_zero() {
        let store = Arc::new(AttributeStore::new());
        let mut rec = RecordBuilder::new(&store)
            .with("bytes", 100.0)
            .with("time", 0.0)
            .build();
        let ls = letset(
            vec![LetDef {
                name: "bw".into(),
                expr: LetExpr::Ratio("bytes".into(), "time".into()),
            }],
            &store,
        );
        ls.apply(&mut rec);
        let bw = store.find("bw").unwrap();
        assert_eq!(rec.get(bw.id()), None);
    }

    #[test]
    fn first_picks_first_present() {
        let store = Arc::new(AttributeStore::new());
        // intern both candidate attributes
        store.create_simple("annotation", ValueType::Str);
        store.create_simple("function", ValueType::Str);
        let mut rec = RecordBuilder::new(&store).with("function", "foo").build();
        let ls = letset(
            vec![LetDef {
                name: "region".into(),
                expr: LetExpr::First(vec!["annotation".into(), "function".into()]),
            }],
            &store,
        );
        ls.apply(&mut rec);
        let region = store.find("region").unwrap();
        assert_eq!(rec.get(region.id()), Some(&Value::str("foo")));
    }

    #[test]
    fn truncate_bins_values() {
        let store = Arc::new(AttributeStore::new());
        let ls = letset(
            vec![LetDef {
                name: "iter.bin".into(),
                expr: LetExpr::Truncate("iteration".into(), 10.0),
            }],
            &store,
        );
        for (input, expect) in [(0i64, 0.0), (9, 0.0), (10, 10.0), (27, 20.0)] {
            let mut rec = RecordBuilder::new(&store).with("iteration", input).build();
            ls.apply(&mut rec);
            let bin = store.find("iter.bin").unwrap();
            assert_eq!(rec.get(bin.id()), Some(&Value::Float(expect)), "input {input}");
        }
    }

    #[test]
    fn absent_inputs_produce_no_output() {
        let store = Arc::new(AttributeStore::new());
        let ls = letset(
            vec![LetDef {
                name: "y".into(),
                expr: LetExpr::Scale("missing".into(), 2.0),
            }],
            &store,
        );
        let mut rec = FlatRecord::new();
        ls.apply(&mut rec);
        assert!(rec.is_empty());
    }
}
