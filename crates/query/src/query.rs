//! The query pipeline: LET → WHERE → AGGREGATE/GROUP BY → ORDER BY →
//! SELECT → FORMAT.
//!
//! One [`Pipeline`] processes one record stream. For cross-process
//! aggregation, one pipeline runs per input dataset and the partial
//! results are combined with [`Pipeline::merge`] up a reduction tree
//! (§IV-C); [`Pipeline::finish`] is then called once, at the root.

use std::sync::Arc;

use caliper_data::{
    Attribute, AttributeStore, Entry, FlatRecord, Properties, SnapshotRecord, ValueType,
};
use caliper_format::dataset::Dataset;
use caliper_format::{csv, expand, json, table};

use crate::aggregator::{AggregationSpec, Aggregator};
use crate::ast::{FormatOpt, OutputFormat, QuerySpec, SortDir};
use crate::filter::FilterSet;
use crate::lets::LetSet;
use crate::parser::{parse_query, ParseError};

/// The result of a finished query: records plus presentation metadata.
pub struct QueryResult {
    /// Store the result records' attribute ids refer to.
    pub store: Arc<AttributeStore>,
    /// Result records (aggregation entries or filtered pass-through).
    pub records: Vec<FlatRecord>,
    /// Output columns in presentation order.
    pub columns: Vec<Attribute>,
    /// Requested output format.
    pub format: OutputFormat,
    /// Formatter options from `FORMAT name(opt, ...)`.
    pub format_opts: Vec<FormatOpt>,
    /// Input records that landed in the `__overflow__` bucket because
    /// the aggregation hit its group capacity (0 = no overflow; always
    /// 0 for unbounded or pass-through queries).
    pub overflow_records: u64,
}

impl QueryResult {
    /// Render as an aligned text table regardless of the format clause.
    pub fn to_table(&self) -> table::Table {
        table::records_to_table(&self.columns, &self.records)
    }

    /// Is a flag-style formatter option present (case-insensitive)?
    fn has_opt(&self, name: &str) -> bool {
        self.format_opts
            .iter()
            .any(|o| o.name.eq_ignore_ascii_case(name))
    }

    /// Render in the query's requested output format.
    pub fn render(&self) -> String {
        match self.format {
            OutputFormat::Table => self.to_table().render_opts(!self.has_opt("noheader")),
            OutputFormat::Csv => csv::records_to_csv_opts(
                &self.columns,
                &self.records,
                !self.has_opt("noheader"),
            ),
            OutputFormat::Json => {
                json::records_to_json_opts(&self.store, &self.records, self.has_opt("pretty"))
            }
            OutputFormat::Expand => expand::expand_records(&self.store, &self.records),
            OutputFormat::Flamegraph => {
                // Last selected column is the value; the preceding
                // columns build the stack.
                if self.columns.len() < 2 {
                    return String::from(
                        "# flamegraph output needs at least two columns (path..., value)\n",
                    );
                }
                let (path, value) = self.columns.split_at(self.columns.len() - 1);
                caliper_format::flamegraph::records_to_flamegraph(
                    path,
                    &value[0],
                    &self.records,
                )
            }
            OutputFormat::Cali => {
                let mut ds = Dataset::with_context(
                    Arc::clone(&self.store),
                    Arc::new(caliper_data::ContextTree::new()),
                );
                for rec in &self.records {
                    let entries = rec
                        .pairs()
                        .iter()
                        .map(|(a, v)| Entry::Imm(*a, v.clone()))
                        .collect();
                    ds.push(SnapshotRecord::from_entries(entries));
                }
                String::from_utf8(caliper_format::cali::to_bytes(&ds))
                    .expect("cali output is UTF-8")
            }
        }
    }

    /// Run another query over this result's records — interactive
    /// drill-down, as in the paper's §VI workflow where each analysis
    /// question is a new query over the previously aggregated profile.
    ///
    /// ```
    /// # use caliper_data::{AttributeStore, RecordBuilder};
    /// # use caliper_query::run_query;
    /// # use caliper_format::Dataset;
    /// # use std::sync::Arc;
    /// # let mut ds = Dataset::new();
    /// # let rec = RecordBuilder::new(&ds.store).with("kernel", "a").with("t", 1.5).build();
    /// # let entries = rec.pairs().iter().map(|(a, v)| caliper_data::Entry::Imm(*a, v.clone())).collect();
    /// # ds.push(caliper_data::SnapshotRecord::from_entries(entries));
    /// let coarse = run_query(&ds, "AGGREGATE sum(t) GROUP BY kernel").unwrap();
    /// let refined = coarse.requery("SELECT kernel WHERE sum#t > 1").unwrap();
    /// assert_eq!(refined.records.len(), 1);
    /// ```
    pub fn requery(&self, text: &str) -> Result<QueryResult, ParseError> {
        let mut pipeline = Pipeline::from_text(text, Arc::clone(&self.store))?;
        for rec in &self.records {
            pipeline.process(rec.clone());
        }
        Ok(pipeline.finish())
    }

    /// Look up the value of `label` in the first record matching a key
    /// predicate — convenience for tests and harnesses.
    pub fn lookup(
        &self,
        pred: impl Fn(&FlatRecord, &AttributeStore) -> bool,
        label: &str,
    ) -> Option<caliper_data::Value> {
        let attr = self.store.find(label)?;
        self.records
            .iter()
            .find(|r| pred(r, &self.store))
            .and_then(|r| r.path_string(attr.id()))
    }
}

impl std::fmt::Debug for QueryResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "QueryResult({} records, {} columns)",
            self.records.len(),
            self.columns.len()
        )
    }
}

/// A streaming query pipeline over one record stream.
pub struct Pipeline {
    spec: QuerySpec,
    lets: LetSet,
    filters: FilterSet,
    aggregator: Option<Aggregator>,
    passthrough: Vec<FlatRecord>,
    input_store: Arc<AttributeStore>,
}

impl Pipeline {
    /// Create a pipeline for a parsed query over records whose attribute
    /// ids refer to `store`.
    pub fn new(spec: QuerySpec, store: Arc<AttributeStore>) -> Pipeline {
        let lets = LetSet::new(spec.lets.clone(), Arc::clone(&store));
        let filters = FilterSet::new(spec.filters.clone(), Arc::clone(&store));
        let aggregator = if spec.is_aggregation() {
            Some(Aggregator::new(
                AggregationSpec::from_query(&spec),
                Arc::clone(&store),
            ))
        } else {
            None
        };
        Pipeline {
            spec,
            lets,
            filters,
            aggregator,
            passthrough: Vec::new(),
            input_store: store,
        }
    }

    /// Parse `text` and create a pipeline.
    pub fn from_text(text: &str, store: Arc<AttributeStore>) -> Result<Pipeline, ParseError> {
        Ok(Pipeline::new(parse_query(text)?, store))
    }

    /// Bound the aggregation database to `cap` groups (see
    /// [`Aggregator::set_max_groups`]); a no-op for pass-through
    /// queries, which hold records rather than groups.
    pub fn set_max_groups(&mut self, cap: Option<usize>) {
        if let Some(agg) = &mut self.aggregator {
            agg.set_max_groups(cap);
        }
    }

    /// Builder-style variant of [`set_max_groups`](Self::set_max_groups).
    pub fn with_max_groups(mut self, cap: Option<usize>) -> Pipeline {
        self.set_max_groups(cap);
        self
    }

    /// Records routed to the overflow bucket so far (0 when unbounded).
    pub fn overflow_records(&self) -> u64 {
        self.aggregator.as_ref().map_or(0, |a| a.overflow_records())
    }

    /// The parsed query spec.
    pub fn spec(&self) -> &QuerySpec {
        &self.spec
    }

    /// Process one input record.
    pub fn process(&mut self, mut record: FlatRecord) {
        if !self.lets.is_empty() {
            self.lets.apply(&mut record);
        }
        if !self.filters.is_empty() && !self.filters.matches(&record) {
            return;
        }
        match &mut self.aggregator {
            Some(agg) => agg.add(&record),
            None => self.passthrough.push(record),
        }
    }

    /// Process every record of a dataset.
    pub fn process_dataset(&mut self, ds: &Dataset) {
        for rec in ds.flat_records() {
            self.process(rec);
        }
    }

    /// Merge another pipeline's partial result into this one. Both
    /// pipelines must run the same query; for aggregations this merges
    /// the aggregation databases, for pass-through queries it
    /// concatenates the record lists. The merged pipeline must share
    /// this pipeline's input store (the cross-process driver reads all
    /// inputs into one store).
    pub fn merge(&mut self, other: Pipeline) {
        match (&mut self.aggregator, other.aggregator) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (None, None) => self.passthrough.extend(other.passthrough),
            _ => debug_assert!(false, "merging aggregation with pass-through pipeline"),
        }
    }

    /// Number of result entries so far (aggregation database size or
    /// pass-through record count).
    pub fn len(&self) -> usize {
        match &self.aggregator {
            Some(agg) => agg.len(),
            None => self.passthrough.len(),
        }
    }

    /// True if no entries have accumulated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finish: flush the aggregation, apply ORDER BY and SELECT, and
    /// return the result.
    pub fn finish(self) -> QueryResult {
        let overflow_records = self.overflow_records();
        let (store, mut records) = match self.aggregator {
            Some(agg) => {
                let out_store = Arc::new(AttributeStore::new());
                let records = agg.flush(&out_store);
                (out_store, records)
            }
            None => (self.input_store, self.passthrough),
        };

        // ORDER BY
        if !self.spec.order_by.is_empty() {
            let keys: Vec<(Option<Attribute>, SortDir)> = self
                .spec
                .order_by
                .iter()
                .map(|k| (store.find(&k.attr), k.dir))
                .collect();
            records.sort_by(|a, b| {
                for (attr, dir) in &keys {
                    let ord = match attr {
                        Some(attr) => {
                            let va = a.path_string(attr.id());
                            let vb = b.path_string(attr.id());
                            match (va, vb) {
                                (None, None) => std::cmp::Ordering::Equal,
                                (None, Some(_)) => std::cmp::Ordering::Less,
                                (Some(_), None) => std::cmp::Ordering::Greater,
                                (Some(va), Some(vb)) => va.total_cmp(&vb),
                            }
                        }
                        None => std::cmp::Ordering::Equal,
                    };
                    let ord = match dir {
                        SortDir::Asc => ord,
                        SortDir::Desc => ord.reverse(),
                    };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }

        if let Some(limit) = self.spec.limit {
            records.truncate(limit);
        }

        // Column selection.
        let labels: Vec<String> = match (&self.spec.select, self.spec.is_aggregation()) {
            (Some(cols), _) => cols.clone(),
            (None, true) => self.spec.default_columns("count"),
            (None, false) => {
                // All attributes in order of first appearance.
                let mut seen = Vec::new();
                for rec in &records {
                    for (attr, _) in rec.pairs() {
                        if !seen.contains(attr) {
                            seen.push(*attr);
                        }
                    }
                }
                seen.iter()
                    .filter_map(|id| store.name_of(*id).map(|n| n.to_string()))
                    .collect()
            }
        };
        let columns: Vec<Attribute> = labels
            .iter()
            .map(|label| {
                store.find(label).unwrap_or_else(|| {
                    // Selected label never appeared: produce an empty
                    // string column so the header is still present.
                    store
                        .create(label, ValueType::Str, Properties::DEFAULT)
                        .unwrap_or_else(|_| store.find(label).expect("exists"))
                })
            })
            .collect();

        QueryResult {
            store,
            records,
            columns,
            format: self.spec.format,
            format_opts: self.spec.format_opts,
            overflow_records,
        }
    }
}

/// Run a query text over one dataset: the core of the `cali-query` tool
/// (off-line analytical aggregation, §IV-C).
pub fn run_query(ds: &Dataset, text: &str) -> Result<QueryResult, ParseError> {
    let mut pipeline = Pipeline::from_text(text, Arc::clone(&ds.store))?;
    pipeline.process_dataset(ds);
    Ok(pipeline.finish())
}

/// What a deadline-bounded query run produced.
///
/// When the [`Deadline`](caliper_data::Deadline) expired mid-stream the
/// result covers only the first [`DeadlineRun::processed`] input records
/// — a *partial* answer the caller must label as such (the resident
/// daemon returns it with an explicit warning, or as HTTP 408).
#[derive(Debug)]
pub struct DeadlineRun {
    /// The (possibly partial) query result.
    pub result: QueryResult,
    /// False when the deadline expired before the whole input was seen.
    pub complete: bool,
    /// Input records processed before finishing or giving up.
    pub processed: usize,
}

/// How many records a deadline-bounded run processes between deadline
/// polls: large enough that the clock read is amortized into noise,
/// small enough that a pathological query overshoots its budget by at
/// most one chunk.
pub const DEADLINE_CHECK_INTERVAL: usize = 64;

/// Run a query over a record slice under a cooperative
/// [`Deadline`](caliper_data::Deadline): the daemon-side counterpart of
/// [`run_query`]. The deadline is polled every
/// [`DEADLINE_CHECK_INTERVAL`] records; on expiry the pipeline is
/// finished early with whatever it has absorbed, so a slow or
/// pathological query costs a bounded slice of wall-clock instead of
/// wedging its worker thread.
pub fn run_records_with_deadline(
    store: Arc<AttributeStore>,
    records: &[FlatRecord],
    text: &str,
    deadline: &caliper_data::Deadline,
) -> Result<DeadlineRun, ParseError> {
    let mut pipeline = Pipeline::from_text(text, store)?;
    let mut processed = 0usize;
    let mut complete = true;
    for rec in records {
        if processed.is_multiple_of(DEADLINE_CHECK_INTERVAL) && deadline.expired() {
            complete = false;
            break;
        }
        pipeline.process(rec.clone());
        processed += 1;
    }
    Ok(DeadlineRun {
        result: pipeline.finish(),
        complete,
        processed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliper_data::{RecordBuilder, Value};

    fn sample_dataset() -> Dataset {
        let mut ds = Dataset::new();
        let store = Arc::clone(&ds.store);
        for iteration in 0..4i64 {
            for (func, time) in [("foo", 15i64), ("foo", 25), ("bar", 20)] {
                let rec = RecordBuilder::new(&store)
                    .with("function", func)
                    .with("loop.iteration", iteration)
                    .with("time", time)
                    .build();
                let entries = rec
                    .pairs()
                    .iter()
                    .map(|(a, v)| Entry::Imm(*a, v.clone()))
                    .collect();
                ds.push(SnapshotRecord::from_entries(entries));
            }
        }
        ds
    }

    #[test]
    fn paper_table_shape() {
        let ds = sample_dataset();
        let result = run_query(&ds, "AGGREGATE count, sum(time) GROUP BY function, loop.iteration")
            .unwrap();
        // 2 functions x 4 iterations
        assert_eq!(result.records.len(), 8);
        let rendered = result.render();
        let header = rendered.lines().next().unwrap();
        assert!(header.contains("function"));
        assert!(header.contains("loop.iteration"));
        assert!(header.contains("count"));
        assert!(header.contains("sum#time"));
        // foo rows: count 2, sum 40
        let foo = result.lookup(
            |r, s| {
                let f = s.find("function").unwrap();
                let i = s.find("loop.iteration").unwrap();
                r.get(f.id()) == Some(&Value::str("foo")) && r.get(i.id()) == Some(&Value::Int(0))
            },
            "sum#time",
        );
        assert_eq!(foo, Some(Value::Int(40)));
    }

    #[test]
    fn where_filters_apply_before_aggregation() {
        let ds = sample_dataset();
        let result = run_query(
            &ds,
            "AGGREGATE sum(time) WHERE function=bar GROUP BY function",
        )
        .unwrap();
        assert_eq!(result.records.len(), 1);
        let sum = result.lookup(|_, _| true, "sum#time");
        assert_eq!(sum, Some(Value::Int(80)));
    }

    #[test]
    fn order_by_desc() {
        let ds = sample_dataset();
        let result = run_query(
            &ds,
            "AGGREGATE sum(time) GROUP BY function ORDER BY sum#time desc",
        )
        .unwrap();
        let sums: Vec<i64> = result
            .records
            .iter()
            .map(|r| {
                let attr = result.store.find("sum#time").unwrap();
                r.get(attr.id()).unwrap().to_i64().unwrap()
            })
            .collect();
        assert_eq!(sums, vec![160, 80]);
    }

    #[test]
    fn select_restricts_columns() {
        let ds = sample_dataset();
        let result = run_query(
            &ds,
            "AGGREGATE count, sum(time) GROUP BY function SELECT function, count",
        )
        .unwrap();
        let cols: Vec<&str> = result.columns.iter().map(|a| a.name()).collect();
        assert_eq!(cols, vec!["function", "count"]);
    }

    #[test]
    fn passthrough_without_aggregation() {
        let ds = sample_dataset();
        let result = run_query(&ds, "SELECT * WHERE function=foo").unwrap();
        assert_eq!(result.records.len(), 8);
        // pass-through keeps the input store
        assert!(Arc::ptr_eq(&result.store, &ds.store));
    }

    #[test]
    fn formats_render() {
        let ds = sample_dataset();
        for (fmt, probe) in [
            ("table", "sum#time"),
            ("csv", "function,sum#time"),
            ("json", "\"function\""),
            ("expand", "function="),
            ("cali", "__rec=ctx"),
        ] {
            let result = run_query(
                &ds,
                &format!("AGGREGATE sum(time) GROUP BY function FORMAT {fmt}"),
            )
            .unwrap();
            let out = result.render();
            assert!(out.contains(probe), "format {fmt}: {out}");
        }
    }

    #[test]
    fn format_options_change_rendering() {
        let ds = sample_dataset();
        let with_header = run_query(&ds, "AGGREGATE count GROUP BY function FORMAT csv")
            .unwrap()
            .render();
        let without = run_query(&ds, "AGGREGATE count GROUP BY function FORMAT csv(noheader)")
            .unwrap()
            .render();
        assert!(with_header.starts_with("function,count"));
        assert!(!without.contains("function,count"));
        assert_eq!(with_header.lines().count(), without.lines().count() + 1);

        let pretty = run_query(&ds, "AGGREGATE count GROUP BY function FORMAT json(pretty)")
            .unwrap()
            .render();
        assert!(pretty.contains("  \"function\""), "{pretty}");
    }

    #[test]
    fn cali_output_reparses() {
        let ds = sample_dataset();
        let result = run_query(&ds, "AGGREGATE count GROUP BY function FORMAT cali").unwrap();
        let text = result.render();
        let back = caliper_format::cali::from_bytes(text.as_bytes()).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn merge_across_pipelines_matches_single() {
        let ds = sample_dataset();
        let spec = parse_query("AGGREGATE count, sum(time) GROUP BY function").unwrap();

        let mut single = Pipeline::new(spec.clone(), Arc::clone(&ds.store));
        single.process_dataset(&ds);

        let mut left = Pipeline::new(spec.clone(), Arc::clone(&ds.store));
        let mut right = Pipeline::new(spec, Arc::clone(&ds.store));
        for (i, rec) in ds.flat_records().enumerate() {
            if i % 2 == 0 {
                left.process(rec);
            } else {
                right.process(rec);
            }
        }
        left.merge(right);

        assert_eq!(single.finish().render(), left.finish().render());
    }

    #[test]
    fn limit_truncates_after_sort() {
        let ds = sample_dataset();
        let result = run_query(
            &ds,
            "AGGREGATE sum(time) GROUP BY function, loop.iteration \
             ORDER BY sum#time desc LIMIT 3",
        )
        .unwrap();
        assert_eq!(result.records.len(), 3);
        // The top-3 are the foo rows (sum 40 each), not bar (20).
        let f = result.store.find("function").unwrap();
        for rec in &result.records {
            assert_eq!(rec.get(f.id()), Some(&Value::str("foo")));
        }
    }

    #[test]
    fn requery_drills_down() {
        let ds = sample_dataset();
        let coarse = run_query(&ds, "AGGREGATE sum(time) GROUP BY function, loop.iteration")
            .unwrap();
        let refined = coarse
            .requery("AGGREGATE sum(sum#time) AS t GROUP BY function ORDER BY t desc")
            .unwrap();
        assert_eq!(refined.records.len(), 2);
        let t = refined.store.find("t").unwrap();
        assert_eq!(
            refined.records[0].get(t.id()).unwrap().to_i64(),
            Some(160)
        );
    }

    #[test]
    fn group_by_without_ops_dedups() {
        let ds = sample_dataset();
        let result = run_query(&ds, "GROUP BY function").unwrap();
        assert_eq!(result.records.len(), 2);
    }

    #[test]
    fn let_derived_attribute_feeds_aggregation() {
        let ds = sample_dataset();
        let result = run_query(
            &ds,
            "LET time.scaled = scale(time, 2) AGGREGATE sum(time.scaled) GROUP BY function",
        )
        .unwrap();
        let foo = result.lookup(
            |r, s| {
                let f = s.find("function").unwrap();
                r.get(f.id()) == Some(&Value::str("foo"))
            },
            "sum#time.scaled",
        );
        assert_eq!(foo, Some(Value::Float(320.0)));
    }

    use crate::parser::parse_query;
}
