//! Reduction operator implementations (§IV-B).
//!
//! Each operator is a small state machine with three operations:
//! `update` folds one input value into the state (streaming reduction —
//! the input is never stored), `merge` combines two states (used by
//! cross-process tree reduction and by re-aggregation of pre-aggregated
//! profiles), and `finish` produces the result value(s).

use caliper_data::Value;

use crate::ast::{AggOp, OpKind};

/// Runtime state of one reduction operator instance.
#[derive(Debug, Clone, PartialEq)]
pub enum Reducer {
    /// `count`: number of input records.
    Count(u64),
    /// `sum`: type-preserving sum (Int+Int→Int, otherwise Float).
    Sum(Option<Value>),
    /// `min`: minimum under the data model's total order.
    Min(Option<Value>),
    /// `max`: maximum under the data model's total order.
    Max(Option<Value>),
    /// `avg`: arithmetic mean over numeric inputs.
    Avg {
        /// Sum of inputs.
        sum: f64,
        /// Number of inputs.
        n: u64,
    },
    /// `histogram(lo, hi, nbins)`: fixed-width bin counts with
    /// underflow/overflow bins.
    Histogram {
        /// Lower bound of the first bin.
        lo: f64,
        /// Bin width.
        width: f64,
        /// Bin counts.
        bins: Vec<u64>,
        /// Inputs below `lo`.
        under: u64,
        /// Inputs at or above `lo + nbins*width`.
        over: u64,
    },
    /// `percent_total`: per-key sum; normalized to percent at flush time
    /// by the aggregator (which knows the global total).
    PercentTotal(f64),
    /// `variance` / `stddev`: Welford accumulator (mergeable via the
    /// parallel-variance formula).
    Moments {
        /// Number of inputs.
        n: u64,
        /// Running mean.
        mean: f64,
        /// Sum of squared deviations from the mean (M2).
        m2: f64,
        /// Whether to report the standard deviation instead of the
        /// variance.
        stddev: bool,
    },
    /// `percentile(attr, p)`: deterministic bounded reservoir. Exact
    /// while fewer than the capacity of inputs have been seen; beyond
    /// that, a deterministic systematic sample (every k-th input) is
    /// kept, which preserves quantiles of stationary streams.
    Percentile {
        /// Requested percentile in (0, 100).
        p: f64,
        /// Retained sample.
        sample: Vec<f64>,
        /// Keep every `stride`-th input once the reservoir is full.
        stride: u64,
        /// Inputs seen so far.
        seen: u64,
    },
}

/// Reservoir capacity for the `percentile` operator.
const PERCENTILE_CAPACITY: usize = 1024;

/// Sort `v` and keep `target` evenly spaced elements (quantile-
/// preserving subsample).
fn subsample_sorted(v: &mut Vec<f64>, target: usize) {
    if v.len() <= target || target == 0 {
        return;
    }
    v.sort_by(|a, b| a.total_cmp(b));
    let step = v.len() as f64 / target as f64;
    let thinned: Vec<f64> = (0..target)
        .map(|i| v[((i as f64 + 0.5) * step) as usize])
        .collect();
    *v = thinned;
}

impl Reducer {
    /// Create the initial state for an operation.
    pub fn new(op: &AggOp) -> Reducer {
        match op.kind {
            OpKind::Count => Reducer::Count(0),
            OpKind::Sum => Reducer::Sum(None),
            OpKind::Min => Reducer::Min(None),
            OpKind::Max => Reducer::Max(None),
            OpKind::Avg => Reducer::Avg { sum: 0.0, n: 0 },
            OpKind::Histogram => {
                let lo = op.args.first().and_then(Value::to_f64).unwrap_or(0.0);
                let hi = op.args.get(1).and_then(Value::to_f64).unwrap_or(1.0);
                let nbins = op
                    .args
                    .get(2)
                    .and_then(Value::to_u64)
                    .unwrap_or(10)
                    .clamp(1, 4096) as usize;
                let width = ((hi - lo) / nbins as f64).max(f64::MIN_POSITIVE);
                Reducer::Histogram {
                    lo,
                    width,
                    bins: vec![0; nbins],
                    under: 0,
                    over: 0,
                }
            }
            OpKind::PercentTotal => Reducer::PercentTotal(0.0),
            OpKind::Variance | OpKind::Stddev => Reducer::Moments {
                n: 0,
                mean: 0.0,
                m2: 0.0,
                stddev: op.kind == OpKind::Stddev,
            },
            OpKind::Percentile => Reducer::Percentile {
                p: op
                    .args
                    .first()
                    .and_then(Value::to_f64)
                    .unwrap_or(50.0)
                    .clamp(0.0, 100.0),
                sample: Vec::new(),
                stride: 1,
                seen: 0,
            },
        }
    }

    /// Fold one record occurrence into the state. `Count` is updated once
    /// per record by the aggregator (not per value); all others are
    /// updated once per value occurrence of their target attribute.
    pub fn update(&mut self, value: &Value) {
        match self {
            Reducer::Count(n) => *n += 1,
            Reducer::Sum(acc) => {
                *acc = match acc.take() {
                    None => Some(value.clone()),
                    Some(prev) => Some(
                        prev.checked_add(value)
                            // on overflow, saturate into float space
                            .unwrap_or_else(|| {
                                Value::Float(
                                    prev.to_f64().unwrap_or(0.0) + value.to_f64().unwrap_or(0.0),
                                )
                            }),
                    ),
                };
            }
            Reducer::Min(acc) => {
                let better = match acc {
                    None => true,
                    Some(prev) => value.total_cmp(prev).is_lt(),
                };
                if better {
                    *acc = Some(value.clone());
                }
            }
            Reducer::Max(acc) => {
                let better = match acc {
                    None => true,
                    Some(prev) => value.total_cmp(prev).is_gt(),
                };
                if better {
                    *acc = Some(value.clone());
                }
            }
            Reducer::Avg { sum, n } => {
                if let Some(v) = value.to_f64() {
                    *sum += v;
                    *n += 1;
                }
            }
            Reducer::Histogram {
                lo,
                width,
                bins,
                under,
                over,
            } => {
                if let Some(v) = value.to_f64() {
                    if v < *lo {
                        *under += 1;
                    } else {
                        let bin = ((v - *lo) / *width) as usize;
                        if bin < bins.len() {
                            bins[bin] += 1;
                        } else {
                            *over += 1;
                        }
                    }
                }
            }
            Reducer::PercentTotal(sum) => {
                if let Some(v) = value.to_f64() {
                    *sum += v;
                }
            }
            Reducer::Moments { n, mean, m2, .. } => {
                if let Some(v) = value.to_f64() {
                    *n += 1;
                    let delta = v - *mean;
                    *mean += delta / *n as f64;
                    *m2 += delta * (v - *mean);
                }
            }
            Reducer::Percentile {
                sample,
                stride,
                seen,
                ..
            } => {
                if let Some(v) = value.to_f64() {
                    if *seen % *stride == 0 {
                        if sample.len() == PERCENTILE_CAPACITY {
                            // Thin deterministically: keep every other
                            // retained sample and double the stride.
                            let mut keep = 0;
                            sample.retain(|_| {
                                keep += 1;
                                keep % 2 == 1
                            });
                            *stride *= 2;
                        }
                        sample.push(v);
                    }
                    *seen += 1;
                }
            }
        }
    }

    /// Combine another state into this one. Both states must come from
    /// the same [`AggOp`]; mismatched shapes panic in debug builds and
    /// are ignored in release builds.
    pub fn merge(&mut self, other: &Reducer) {
        match (self, other) {
            (Reducer::Count(a), Reducer::Count(b)) => *a += b,
            (Reducer::Sum(a), Reducer::Sum(b)) => {
                if let Some(bv) = b {
                    match a.take() {
                        None => *a = Some(bv.clone()),
                        Some(av) => {
                            *a = Some(av.checked_add(bv).unwrap_or_else(|| {
                                Value::Float(
                                    av.to_f64().unwrap_or(0.0) + bv.to_f64().unwrap_or(0.0),
                                )
                            }))
                        }
                    }
                }
            }
            (Reducer::Min(a), Reducer::Min(b)) => {
                if let Some(bv) = b {
                    let better = match a {
                        None => true,
                        Some(av) => bv.total_cmp(av).is_lt(),
                    };
                    if better {
                        *a = Some(bv.clone());
                    }
                }
            }
            (Reducer::Max(a), Reducer::Max(b)) => {
                if let Some(bv) = b {
                    let better = match a {
                        None => true,
                        Some(av) => bv.total_cmp(av).is_gt(),
                    };
                    if better {
                        *a = Some(bv.clone());
                    }
                }
            }
            (
                Reducer::Avg { sum: sa, n: na },
                Reducer::Avg { sum: sb, n: nb },
            ) => {
                *sa += sb;
                *na += nb;
            }
            (
                Reducer::Histogram {
                    bins: ba,
                    under: ua,
                    over: oa,
                    ..
                },
                Reducer::Histogram {
                    bins: bb,
                    under: ub,
                    over: ob,
                    ..
                },
            ) if ba.len() == bb.len() => {
                for (a, b) in ba.iter_mut().zip(bb) {
                    *a += b;
                }
                *ua += ub;
                *oa += ob;
            }
            (Reducer::PercentTotal(a), Reducer::PercentTotal(b)) => {
                *a += b;
            }
            (
                Reducer::Moments {
                    n: na,
                    mean: ma,
                    m2: m2a,
                    ..
                },
                Reducer::Moments {
                    n: nb,
                    mean: mb,
                    m2: m2b,
                    ..
                },
            ) => {
                // Chan et al. parallel variance combination.
                let n = *na + *nb;
                if *nb > 0 {
                    if *na == 0 {
                        *ma = *mb;
                        *m2a = *m2b;
                    } else {
                        let delta = *mb - *ma;
                        *m2a += *m2b + delta * delta * (*na as f64) * (*nb as f64) / n as f64;
                        *ma += delta * (*nb as f64) / n as f64;
                    }
                    *na = n;
                }
            }
            (
                Reducer::Percentile {
                    sample: sa,
                    seen: seena,
                    ..
                },
                Reducer::Percentile {
                    sample: sb,
                    seen: seenb,
                    ..
                },
            ) => {
                // Keep each side's representation proportional to how
                // many inputs it has actually seen — a naive concat
                // would over-weight the smaller stream.
                let total = *seena + *seenb;
                if sa.len() + sb.len() > PERCENTILE_CAPACITY && total > 0 {
                    let quota_a = ((PERCENTILE_CAPACITY as u64 * *seena) / total) as usize;
                    let quota_b = PERCENTILE_CAPACITY - quota_a.min(PERCENTILE_CAPACITY);
                    let target_a = quota_a.max(1).min(sa.len());
                    subsample_sorted(sa, target_a);
                    let mut b_copy = sb.clone();
                    let target_b = quota_b.max(1).min(b_copy.len());
                    subsample_sorted(&mut b_copy, target_b);
                    sa.extend_from_slice(&b_copy);
                } else {
                    sa.extend_from_slice(sb);
                }
                *seena = total;
            }
            (a, b) => {
                debug_assert!(false, "merging mismatched reducers: {a:?} vs {b:?}");
            }
        }
    }

    /// Produce the result value. `Sum`/`Min`/`Max` with no inputs yield
    /// `None` (no output attribute for that entry). `percent_total` needs
    /// the global total, passed by the aggregator.
    pub fn finish(&self, percent_total_denominator: f64) -> Option<Value> {
        match self {
            Reducer::Count(n) => Some(Value::UInt(*n)),
            Reducer::Sum(acc) => acc.clone(),
            Reducer::Min(acc) => acc.clone(),
            Reducer::Max(acc) => acc.clone(),
            Reducer::Avg { sum, n } => {
                if *n == 0 {
                    None
                } else {
                    Some(Value::Float(sum / *n as f64))
                }
            }
            Reducer::Histogram {
                bins, under, over, ..
            } => {
                // Render as "under|b0 b1 ... bn|over" — a compact,
                // parseable string representation.
                let body: Vec<String> = bins.iter().map(u64::to_string).collect();
                Some(Value::str(format!(
                    "{}|{}|{}",
                    under,
                    body.join(" "),
                    over
                )))
            }
            Reducer::PercentTotal(sum) => {
                if percent_total_denominator > 0.0 {
                    Some(Value::Float(100.0 * sum / percent_total_denominator))
                } else {
                    None
                }
            }
            Reducer::Moments { n, m2, stddev, .. } => {
                if *n == 0 {
                    None
                } else {
                    let variance = m2 / *n as f64;
                    Some(Value::Float(if *stddev {
                        variance.sqrt()
                    } else {
                        variance
                    }))
                }
            }
            Reducer::Percentile { p, sample, .. } => {
                if sample.is_empty() {
                    return None;
                }
                let mut sorted = sample.clone();
                sorted.sort_by(|a, b| a.total_cmp(b));
                let idx = (p / 100.0) * (sorted.len() - 1) as f64;
                let lo = idx.floor() as usize;
                let hi = idx.ceil() as usize;
                let frac = idx - lo as f64;
                Some(Value::Float(sorted[lo] * (1.0 - frac) + sorted[hi] * frac))
            }
        }
    }

    /// The raw numeric accumulation (used to compute percent_total
    /// denominators across entries).
    pub fn raw_sum(&self) -> f64 {
        match self {
            Reducer::PercentTotal(s) => *s,
            Reducer::Sum(Some(v)) => v.to_f64().unwrap_or(0.0),
            Reducer::Avg { sum, .. } => *sum,
            Reducer::Count(n) => *n as f64,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(kind: OpKind, target: Option<&str>) -> AggOp {
        AggOp::new(kind, target)
    }

    #[test]
    fn count_counts() {
        let mut r = Reducer::new(&op(OpKind::Count, None));
        for _ in 0..5 {
            r.update(&Value::Int(0));
        }
        assert_eq!(r.finish(0.0), Some(Value::UInt(5)));
    }

    #[test]
    fn sum_preserves_int_type() {
        let mut r = Reducer::new(&op(OpKind::Sum, Some("x")));
        r.update(&Value::Int(10));
        r.update(&Value::Int(30));
        assert_eq!(r.finish(0.0), Some(Value::Int(40)));
    }

    #[test]
    fn sum_mixes_to_float() {
        let mut r = Reducer::new(&op(OpKind::Sum, Some("x")));
        r.update(&Value::Int(10));
        r.update(&Value::Float(0.5));
        assert_eq!(r.finish(0.0), Some(Value::Float(10.5)));
    }

    #[test]
    fn sum_overflow_saturates_to_float() {
        let mut r = Reducer::new(&op(OpKind::Sum, Some("x")));
        r.update(&Value::Int(i64::MAX));
        r.update(&Value::Int(i64::MAX));
        match r.finish(0.0) {
            Some(Value::Float(f)) => assert!(f > 1e18),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn empty_sum_min_max_yield_none() {
        for kind in [OpKind::Sum, OpKind::Min, OpKind::Max, OpKind::Avg] {
            let r = Reducer::new(&op(kind, Some("x")));
            assert_eq!(r.finish(0.0), None);
        }
    }

    #[test]
    fn min_max_track_extremes() {
        let mut lo = Reducer::new(&op(OpKind::Min, Some("x")));
        let mut hi = Reducer::new(&op(OpKind::Max, Some("x")));
        for v in [3.0, -1.5, 7.25, 0.0] {
            lo.update(&Value::Float(v));
            hi.update(&Value::Float(v));
        }
        assert_eq!(lo.finish(0.0), Some(Value::Float(-1.5)));
        assert_eq!(hi.finish(0.0), Some(Value::Float(7.25)));
    }

    #[test]
    fn avg_is_mean() {
        let mut r = Reducer::new(&op(OpKind::Avg, Some("x")));
        for v in [1, 2, 3, 4] {
            r.update(&Value::Int(v));
        }
        assert_eq!(r.finish(0.0), Some(Value::Float(2.5)));
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut hop = op(OpKind::Histogram, Some("x"));
        hop.args = vec![Value::Int(0), Value::Int(10), Value::Int(5)];
        let mut r = Reducer::new(&hop);
        for v in [-1.0, 0.0, 1.9, 2.0, 9.9, 10.0, 100.0] {
            r.update(&Value::Float(v));
        }
        // bins of width 2: [0,2) -> 2, [2,4) -> 1, [8,10) -> 1
        assert_eq!(r.finish(0.0), Some(Value::str("1|2 1 0 0 1|2")));
    }

    #[test]
    fn merge_matches_sequential_updates() {
        for kind in [
            OpKind::Count,
            OpKind::Sum,
            OpKind::Min,
            OpKind::Max,
            OpKind::Avg,
            // Regression: percent_total partials from different shards
            // must merge (the missing arm used to trip the mismatched-
            // reducer debug assertion and drop data in release builds).
            OpKind::PercentTotal,
        ] {
            let o = op(kind, Some("x"));
            let mut all = Reducer::new(&o);
            let mut left = Reducer::new(&o);
            let mut right = Reducer::new(&o);
            for i in 0..10 {
                let v = Value::Int(i * 3 - 7);
                all.update(&v);
                if i % 2 == 0 {
                    left.update(&v);
                } else {
                    right.update(&v);
                }
            }
            left.merge(&right);
            assert_eq!(left.finish(0.0), all.finish(0.0), "kind {kind:?}");
            assert_eq!(left.finish(100.0), all.finish(100.0), "kind {kind:?}");
            assert_eq!(left.raw_sum(), all.raw_sum(), "kind {kind:?}");
        }
    }

    #[test]
    fn percent_total_uses_denominator() {
        let mut r = Reducer::new(&op(OpKind::PercentTotal, Some("x")));
        r.update(&Value::Float(25.0));
        assert_eq!(r.finish(100.0), Some(Value::Float(25.0)));
        assert_eq!(r.finish(0.0), None);
        assert_eq!(r.raw_sum(), 25.0);
    }

    #[test]
    fn variance_and_stddev() {
        let mut var = Reducer::new(&op(OpKind::Variance, Some("x")));
        let mut sd = Reducer::new(&op(OpKind::Stddev, Some("x")));
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            var.update(&Value::Float(v));
            sd.update(&Value::Float(v));
        }
        // Classic example: population variance 4, stddev 2.
        match var.finish(0.0) {
            Some(Value::Float(v)) => assert!((v - 4.0).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
        match sd.finish(0.0) {
            Some(Value::Float(v)) => assert!((v - 2.0).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
        assert_eq!(Reducer::new(&op(OpKind::Variance, Some("x"))).finish(0.0), None);
    }

    #[test]
    fn variance_merge_matches_single_pass() {
        let o = op(OpKind::Variance, Some("x"));
        let mut all = Reducer::new(&o);
        let mut left = Reducer::new(&o);
        let mut right = Reducer::new(&o);
        for i in 0..100 {
            let v = Value::Float((i * i % 37) as f64 - 11.0);
            all.update(&v);
            if i < 42 {
                left.update(&v);
            } else {
                right.update(&v);
            }
        }
        left.merge(&right);
        let a = all.finish(0.0).unwrap().to_f64().unwrap();
        let b = left.finish(0.0).unwrap().to_f64().unwrap();
        assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn percentile_exact_below_capacity() {
        let mut pop = op(OpKind::Percentile, Some("x"));
        pop.args = vec![Value::Int(90)];
        let mut r = Reducer::new(&pop);
        for i in 0..=100 {
            r.update(&Value::Int(i));
        }
        match r.finish(0.0) {
            Some(Value::Float(v)) => assert!((v - 90.0).abs() < 1e-9, "{v}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn percentile_bounded_above_capacity() {
        let mut pop = op(OpKind::Percentile, Some("x"));
        pop.args = vec![Value::Int(50)];
        let mut r = Reducer::new(&pop);
        for i in 0..100_000 {
            r.update(&Value::Int(i % 1000));
        }
        if let Reducer::Percentile { sample, .. } = &r {
            assert!(sample.len() <= super::PERCENTILE_CAPACITY + 1);
        } else {
            unreachable!();
        }
        // Median of a uniform 0..1000 stream ~ 500 (systematic sample).
        let v = r.finish(0.0).unwrap().to_f64().unwrap();
        assert!((v - 500.0).abs() < 60.0, "median estimate {v}");
    }

    #[test]
    fn percentile_merge_stays_bounded() {
        let mut pop = op(OpKind::Percentile, Some("x"));
        pop.args = vec![Value::Int(50)];
        let mut acc = Reducer::new(&pop);
        for chunk in 0..8 {
            let mut part = Reducer::new(&pop);
            for i in 0..2000 {
                part.update(&Value::Int(chunk * 2000 + i));
            }
            acc.merge(&part);
        }
        if let Reducer::Percentile { sample, .. } = &acc {
            assert!(sample.len() <= 2 * super::PERCENTILE_CAPACITY);
        } else {
            unreachable!();
        }
        // Stream was 0..16000 uniform; median ~ 8000.
        let v = acc.finish(0.0).unwrap().to_f64().unwrap();
        assert!((v - 8000.0).abs() < 800.0, "median estimate {v}");
    }

    #[test]
    fn non_numeric_values_ignored_by_numeric_ops() {
        let mut r = Reducer::new(&op(OpKind::Avg, Some("x")));
        r.update(&Value::str("not a number"));
        assert_eq!(r.finish(0.0), None);
    }

    #[test]
    fn min_max_across_mixed_numeric_types() {
        // Mixed Int/UInt/Float streams compare numerically, and the
        // winner keeps its original type (a profile mixing integer
        // counters with float durations must not silently coerce).
        let mut lo = Reducer::new(&op(OpKind::Min, Some("x")));
        let mut hi = Reducer::new(&op(OpKind::Max, Some("x")));
        for v in [Value::Int(-5), Value::UInt(3), Value::Float(2.5)] {
            lo.update(&v);
            hi.update(&v);
        }
        assert_eq!(lo.finish(0.0), Some(Value::Int(-5)));
        assert_eq!(hi.finish(0.0), Some(Value::UInt(3)));
    }

    #[test]
    fn min_max_ties_keep_first_seen_value() {
        // Equal magnitudes across types are not "better": the first
        // occurrence wins, so results are deterministic in input order.
        let mut lo = Reducer::new(&op(OpKind::Min, Some("x")));
        let mut hi = Reducer::new(&op(OpKind::Max, Some("x")));
        for v in [Value::Int(2), Value::Float(2.0), Value::UInt(2)] {
            lo.update(&v);
            hi.update(&v);
        }
        assert_eq!(lo.finish(0.0), Some(Value::Int(2)));
        assert_eq!(hi.finish(0.0), Some(Value::Int(2)));
    }

    #[test]
    fn sum_single_value_keeps_its_type() {
        for v in [Value::Int(-3), Value::UInt(7), Value::Float(0.25)] {
            let mut r = Reducer::new(&op(OpKind::Sum, Some("x")));
            r.update(&v);
            assert_eq!(r.finish(0.0), Some(v));
        }
    }

    #[test]
    fn histogram_zero_width_range() {
        // lo == hi: bin width clamps to the smallest positive float, so
        // exactly-lo values land in bin 0 and anything above overflows
        // instead of dividing by zero.
        let mut hop = op(OpKind::Histogram, Some("x"));
        hop.args = vec![Value::Int(0), Value::Int(0), Value::Int(4)];
        let mut r = Reducer::new(&hop);
        for v in [-1.0, 0.0, 1.0] {
            r.update(&Value::Float(v));
        }
        assert_eq!(r.finish(0.0), Some(Value::str("1|1 0 0 0|1")));
    }

    #[test]
    fn histogram_inverted_range_degrades_to_under_over() {
        // lo > hi is nonsense input; it must not panic. The clamped
        // width sorts everything into under / bin 0 / over.
        let mut hop = op(OpKind::Histogram, Some("x"));
        hop.args = vec![Value::Int(10), Value::Int(0), Value::Int(2)];
        let mut r = Reducer::new(&hop);
        for v in [5.0, 10.0, 11.0] {
            r.update(&Value::Float(v));
        }
        assert_eq!(r.finish(0.0), Some(Value::str("1|1 0|1")));
    }

    #[test]
    fn percentile_extremes_hit_min_and_max() {
        for (p, expect) in [(0i64, 10.0), (100, 90.0)] {
            let mut pop = op(OpKind::Percentile, Some("x"));
            pop.args = vec![Value::Int(p)];
            let mut r = Reducer::new(&pop);
            for v in [30, 10, 90, 50] {
                r.update(&Value::Int(v));
            }
            assert_eq!(r.finish(0.0), Some(Value::Float(expect)), "p{p}");
        }
    }

    #[test]
    fn merge_with_empty_sides_is_identity() {
        for kind in [OpKind::Sum, OpKind::Min, OpKind::Max, OpKind::Avg] {
            let o = op(kind, Some("x"));

            let expect = if kind == OpKind::Avg {
                Value::Float(4.0)
            } else {
                Value::Int(4)
            };

            // empty other: no-op
            let mut a = Reducer::new(&o);
            a.update(&Value::Int(4));
            a.merge(&Reducer::new(&o));
            assert_eq!(a.finish(0.0), Some(expect), "kind {kind:?}");

            // empty self: adopts other
            let mut b = Reducer::new(&o);
            let mut other = Reducer::new(&o);
            other.update(&Value::Int(4));
            b.merge(&other);
            assert_eq!(b.finish(0.0), a.finish(0.0), "kind {kind:?}");
        }
    }
}
