//! Tokenizer for the aggregation description language.
//!
//! The language is line-agnostic: newlines are whitespace, and a `\` at
//! the end of a line (as in the paper's multi-line examples) is likewise
//! treated as whitespace. Attribute labels may contain `.`, `#`, `:` and
//! `-` (e.g. `iteration#mainloop`, `advec-mom`), so the lexer accepts
//! those inside identifiers; anything else can be single- or
//! double-quoted.

use std::fmt;

/// A token with its byte span in the query text (for error messages
/// and semantic diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub pos: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier / attribute label / keyword.
    Ident(String),
    /// Quoted string literal.
    Str(String),
    /// Numeric literal (kept as text; the parser decides int vs float).
    Number(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `*`
    Star,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "'{s}'"),
            TokenKind::Str(s) => write!(f, "\"{s}\""),
            TokenKind::Number(s) => write!(f, "{s}"),
            TokenKind::LParen => f.write_str("'('"),
            TokenKind::RParen => f.write_str("')'"),
            TokenKind::Comma => f.write_str("','"),
            TokenKind::Eq => f.write_str("'='"),
            TokenKind::Ne => f.write_str("'!='"),
            TokenKind::Lt => f.write_str("'<'"),
            TokenKind::Le => f.write_str("'<='"),
            TokenKind::Gt => f.write_str("'>'"),
            TokenKind::Ge => f.write_str("'>='"),
            TokenKind::Star => f.write_str("'*'"),
        }
    }
}

/// Lexer error: unexpected character or unterminated string.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset of the problem.
    pub pos: usize,
    /// Byte offset one past the offending text.
    pub end: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}", self.message, self.pos)
    }
}

impl std::error::Error for LexError {}

fn is_ident_start(ch: char) -> bool {
    ch.is_alphabetic() || ch == '_'
}

fn is_ident_continue(ch: char) -> bool {
    ch.is_alphanumeric() || matches!(ch, '_' | '.' | '#' | ':' | '-' | '/')
}

/// Tokenize a query string. Every token carries its precise byte span
/// (`pos..end`), which the parser threads through to diagnostics.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes: Vec<(usize, char)> = input.char_indices().collect();
    // Byte offset of the i-th character (input length at end of text):
    // after a branch advances `i` past a token's characters, `off(i)` is
    // the token's end offset.
    let off = |i: usize| bytes.get(i).map(|&(p, _)| p).unwrap_or(input.len());
    let mut i = 0;
    while i < bytes.len() {
        let (pos, ch) = bytes[i];
        match ch {
            c if c.is_whitespace() => i += 1,
            // Line continuation and stray backslashes are whitespace.
            '\\' => i += 1,
            '(' => {
                i += 1;
                tokens.push(Token { kind: TokenKind::LParen, pos, end: off(i) });
            }
            ')' => {
                i += 1;
                tokens.push(Token { kind: TokenKind::RParen, pos, end: off(i) });
            }
            ',' => {
                i += 1;
                tokens.push(Token { kind: TokenKind::Comma, pos, end: off(i) });
            }
            '*' => {
                i += 1;
                tokens.push(Token { kind: TokenKind::Star, pos, end: off(i) });
            }
            '=' => {
                // Accept both `=` and `==`.
                i += 1;
                if i < bytes.len() && bytes[i].1 == '=' {
                    i += 1;
                }
                tokens.push(Token { kind: TokenKind::Eq, pos, end: off(i) });
            }
            '!' => {
                i += 1;
                if i < bytes.len() && bytes[i].1 == '=' {
                    i += 1;
                    tokens.push(Token { kind: TokenKind::Ne, pos, end: off(i) });
                } else {
                    return Err(LexError {
                        pos,
                        end: off(i),
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            '<' => {
                i += 1;
                if i < bytes.len() && bytes[i].1 == '=' {
                    i += 1;
                    tokens.push(Token { kind: TokenKind::Le, pos, end: off(i) });
                } else {
                    tokens.push(Token { kind: TokenKind::Lt, pos, end: off(i) });
                }
            }
            '>' => {
                i += 1;
                if i < bytes.len() && bytes[i].1 == '=' {
                    i += 1;
                    tokens.push(Token { kind: TokenKind::Ge, pos, end: off(i) });
                } else {
                    tokens.push(Token { kind: TokenKind::Gt, pos, end: off(i) });
                }
            }
            quote @ ('"' | '\'') => {
                let mut text = String::new();
                i += 1;
                let mut closed = false;
                while i < bytes.len() {
                    let (_, c) = bytes[i];
                    if c == quote {
                        closed = true;
                        i += 1;
                        break;
                    }
                    if c == '\\' && i + 1 < bytes.len() {
                        i += 1;
                        text.push(bytes[i].1);
                    } else {
                        text.push(c);
                    }
                    i += 1;
                }
                if !closed {
                    return Err(LexError {
                        pos,
                        end: input.len(),
                        message: "unterminated string literal".into(),
                    });
                }
                tokens.push(Token { kind: TokenKind::Str(text), pos, end: off(i) });
            }
            c if c.is_ascii_digit()
                || (c == '-' && i + 1 < bytes.len() && bytes[i + 1].1.is_ascii_digit()) =>
            {
                let mut text = String::new();
                text.push(c);
                i += 1;
                let mut seen_dot = false;
                while i < bytes.len() {
                    let (_, c) = bytes[i];
                    if c.is_ascii_digit() {
                        text.push(c);
                        i += 1;
                    } else if c == '.' && !seen_dot {
                        seen_dot = true;
                        text.push(c);
                        i += 1;
                    } else if c == 'e' || c == 'E' {
                        // scientific notation: e[+-]?digits
                        let mut j = i + 1;
                        if j < bytes.len() && matches!(bytes[j].1, '+' | '-') {
                            j += 1;
                        }
                        if j < bytes.len() && bytes[j].1.is_ascii_digit() {
                            text.extend(bytes[i..=j].iter().map(|&(_, c)| c));
                            i = j + 1;
                            while i < bytes.len() && bytes[i].1.is_ascii_digit() {
                                text.push(bytes[i].1);
                                i += 1;
                            }
                            break;
                        } else {
                            break;
                        }
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Number(text),
                    pos,
                    end: off(i),
                });
            }
            c if is_ident_start(c) => {
                let mut text = String::new();
                text.push(c);
                i += 1;
                while i < bytes.len() && is_ident_continue(bytes[i].1) {
                    text.push(bytes[i].1);
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(text),
                    pos,
                    end: off(i),
                });
            }
            other => {
                return Err(LexError {
                    pos,
                    end: pos + other.len_utf8(),
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_paper_example() {
        let toks = kinds("AGGREGATE count, sum(time)\nGROUP BY function, loop.iteration");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("AGGREGATE".into()),
                TokenKind::Ident("count".into()),
                TokenKind::Comma,
                TokenKind::Ident("sum".into()),
                TokenKind::LParen,
                TokenKind::Ident("time".into()),
                TokenKind::RParen,
                TokenKind::Ident("GROUP".into()),
                TokenKind::Ident("BY".into()),
                TokenKind::Ident("function".into()),
                TokenKind::Comma,
                TokenKind::Ident("loop.iteration".into()),
            ]
        );
    }

    #[test]
    fn labels_with_hash_and_continuation() {
        // The paper's AMR query uses iteration#mainloop and a `\` line
        // continuation.
        let toks = kinds("GROUP BY amr.level,\\\niteration#mainloop");
        assert_eq!(
            toks.last(),
            Some(&TokenKind::Ident("iteration#mainloop".into()))
        );
        assert_eq!(toks.len(), 5);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("a=1 b!=2 c<3 d<=4 e>5 f>=6 g==7"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Eq,
                TokenKind::Number("1".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ne,
                TokenKind::Number("2".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Lt,
                TokenKind::Number("3".into()),
                TokenKind::Ident("d".into()),
                TokenKind::Le,
                TokenKind::Number("4".into()),
                TokenKind::Ident("e".into()),
                TokenKind::Gt,
                TokenKind::Number("5".into()),
                TokenKind::Ident("f".into()),
                TokenKind::Ge,
                TokenKind::Number("6".into()),
                TokenKind::Ident("g".into()),
                TokenKind::Eq,
                TokenKind::Number("7".into()),
            ]
        );
    }

    #[test]
    fn numbers_and_negatives() {
        assert_eq!(
            kinds("1 -2 3.5 -4.25 1e3 2.5e-2"),
            vec![
                TokenKind::Number("1".into()),
                TokenKind::Number("-2".into()),
                TokenKind::Number("3.5".into()),
                TokenKind::Number("-4.25".into()),
                TokenKind::Number("1e3".into()),
                TokenKind::Number("2.5e-2".into()),
            ]
        );
    }

    #[test]
    fn quoted_strings_with_escapes() {
        assert_eq!(
            kinds("where kernel = \"advec cell\""),
            vec![
                TokenKind::Ident("where".into()),
                TokenKind::Ident("kernel".into()),
                TokenKind::Eq,
                TokenKind::Str("advec cell".into()),
            ]
        );
        assert_eq!(
            kinds(r#"'it''s' "a\"b""#),
            vec![
                TokenKind::Str("it".into()),
                TokenKind::Str("s".into()),
                TokenKind::Str("a\"b".into()),
            ]
        );
    }

    #[test]
    fn errors_carry_positions() {
        let err = tokenize("abc @").unwrap_err();
        assert_eq!(err.pos, 4);
        assert_eq!(err.end, 5);
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn tokens_carry_byte_spans() {
        let toks = tokenize("sum(time.duration) >= 2.5").unwrap();
        let spans: Vec<(usize, usize)> = toks.iter().map(|t| (t.pos, t.end)).collect();
        assert_eq!(spans, vec![(0, 3), (3, 4), (4, 17), (17, 18), (19, 21), (22, 25)]);
        // quoted strings span the quotes, multi-byte chars span bytes
        let toks = tokenize("\"a b\" é").unwrap();
        assert_eq!((toks[0].pos, toks[0].end), (0, 5));
        assert_eq!((toks[1].pos, toks[1].end), (6, 8));
    }

    #[test]
    fn hyphenated_idents() {
        assert_eq!(
            kinds("advec-mom"),
            vec![TokenKind::Ident("advec-mom".into())]
        );
        // but a leading '-' before a digit is a number
        assert_eq!(kinds("-5"), vec![TokenKind::Number("-5".into())]);
    }
}
