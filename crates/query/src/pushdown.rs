//! Bridge from a validated CalQL WHERE clause to the format layer's
//! zone-map [`Pushdown`].
//!
//! The query engine owns the decision of *which* predicates are safe to
//! evaluate against CALB v2 block zone maps before any record decodes;
//! the format layer only knows how to apply them
//! ([`caliper_format::pushdown`]). Two predicate shapes are excluded
//! here, and omission is always sound — a dropped conjunct can only
//! make the reader decode more, never change what a query returns:
//!
//! * filters on **LET-derived attributes**: LET runs after decode (and
//!   before WHERE), so zone maps describe the wrong values — when a LET
//!   shadows a stream attribute it even rewrites the same attribute id;
//! * comparisons on attributes a [`Schema`] pre-pass reports as
//!   **mixed-typed**: per-stream declared types may disagree with the
//!   schema-wide view, so the block bounds cannot be trusted to order
//!   against the literal the way every stream's values do. (`sema`
//!   surfaces this case to users as the W007 advisory.)
//!
//! The same [`Pushdown`] instance is handed to the serial reader and to
//! every parallel worker, which — together with per-block zone maps
//! being a pure function of the input bytes — keeps
//! `format.reader.blocks_skipped` and all query output byte-identical
//! across `--threads` counts.

use caliper_format::pushdown::{Predicate, Pushdown, PushdownOp};
use caliper_format::Schema;

use crate::ast::{CmpOp, Filter, QuerySpec};

/// Convert a parsed query's WHERE clause into a zone-map pushdown,
/// omitting predicates that are not pushdown-eligible (see the module
/// docs). Pass the inferred corpus [`Schema`] when available to also
/// exclude comparisons on mixed-typed attributes; without one, only the
/// schema-independent exclusions apply.
pub fn build_pushdown(spec: &QuerySpec, schema: Option<&Schema>) -> Pushdown {
    let mut pd = Pushdown::new();
    for filter in &spec.filters {
        let name = match filter {
            Filter::Exists(a) | Filter::NotExists(a) => a,
            Filter::Cmp { attr, .. } => attr,
        };
        if spec.lets.iter().any(|l| &l.name == name) {
            continue;
        }
        match filter {
            Filter::Exists(a) => pd.push(Predicate::Exists(a.clone())),
            Filter::NotExists(a) => pd.push(Predicate::NotExists(a.clone())),
            Filter::Cmp { attr, op, value } => {
                let mixed = schema
                    .and_then(|s| s.get(attr))
                    .is_some_and(|a| a.value_type.is_none());
                if mixed {
                    continue;
                }
                pd.push(Predicate::Cmp {
                    attr: attr.clone(),
                    op: convert_op(*op),
                    value: value.clone(),
                });
            }
        }
    }
    pd
}

fn convert_op(op: CmpOp) -> PushdownOp {
    match op {
        CmpOp::Eq => PushdownOp::Eq,
        CmpOp::Ne => PushdownOp::Ne,
        CmpOp::Lt => PushdownOp::Lt,
        CmpOp::Le => PushdownOp::Le,
        CmpOp::Gt => PushdownOp::Gt,
        CmpOp::Ge => PushdownOp::Ge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use caliper_data::{Properties, Value, ValueType};

    fn pushdown_for(query: &str) -> Pushdown {
        build_pushdown(&parse_query(query).unwrap(), None)
    }

    #[test]
    fn all_filter_shapes_convert() {
        let pd = pushdown_for(
            "AGGREGATE count WHERE region, not(mpi.function), rank = 3, time > 1.5 GROUP BY region",
        );
        assert_eq!(pd.predicates().len(), 4);
        assert!(pd
            .predicates()
            .contains(&Predicate::Exists("region".into())));
        assert!(pd
            .predicates()
            .contains(&Predicate::NotExists("mpi.function".into())));
        assert!(pd.predicates().contains(&Predicate::Cmp {
            attr: "rank".into(),
            op: PushdownOp::Eq,
            value: Value::Int(3),
        }));
        assert!(pd.predicates().contains(&Predicate::Cmp {
            attr: "time".into(),
            op: PushdownOp::Gt,
            value: Value::Float(1.5),
        }));
    }

    #[test]
    fn let_targets_are_never_pushed_down() {
        let pd = pushdown_for(
            "LET ms = scale(time.duration, 1000) AGGREGATE sum(ms) WHERE ms > 5, rank = 0 GROUP BY region",
        );
        assert_eq!(pd.predicates().len(), 1);
        assert_eq!(pd.predicates()[0].attr(), "rank");
    }

    #[test]
    fn mixed_typed_comparisons_are_excluded_with_a_schema() {
        let mut schema = Schema::new();
        schema.observe("rank", ValueType::Int, Properties::DEFAULT);
        schema.observe("rank", ValueType::Str, Properties::DEFAULT); // now mixed
        schema.observe("time", ValueType::Float, Properties::DEFAULT);
        let spec = parse_query("AGGREGATE count WHERE rank = 3, time > 1.0, rank GROUP BY region")
            .unwrap();
        let pd = build_pushdown(&spec, Some(&schema));
        // The Cmp on mixed `rank` is dropped; Exists on it is fine, as
        // is the Cmp on the consistently-typed `time`.
        assert_eq!(pd.predicates().len(), 2);
        assert!(pd.predicates().contains(&Predicate::Exists("rank".into())));
        assert!(pd.predicates().iter().any(
            |p| matches!(p, Predicate::Cmp { attr, .. } if attr == "time")
        ));
    }

    #[test]
    fn no_filters_means_empty_pushdown() {
        assert!(pushdown_for("AGGREGATE count GROUP BY region").is_empty());
    }
}
