//! # caliper-query — the aggregation description language and engine
//!
//! This crate implements the core contribution of *"Flexible Data
//! Aggregation for Performance Profiling"* (CLUSTER 2017): an abstract
//! aggregation model over the flexible key:value data model, where users
//! choose
//!
//! * **aggregation attributes** — what to aggregate,
//! * an **aggregation key** — over what to aggregate (GROUP BY), and
//! * **aggregation operators** — how to reduce (count/sum/min/max/…),
//!
//! expressed in a small SQL-like description language:
//!
//! ```
//! use caliper_query::parse_query;
//!
//! let spec = parse_query(
//!     "AGGREGATE count, sum(time.duration)
//!      WHERE not(mpi.function)
//!      GROUP BY amr.level, iteration#mainloop",
//! ).unwrap();
//! assert_eq!(spec.key.len(), 2);
//! ```
//!
//! The same [`Aggregator`] engine serves all three aggregation
//! applications from the paper: on-line event aggregation (the runtime's
//! aggregate service feeds it snapshot records), cross-process
//! aggregation (partial [`Pipeline`]s are merged up a reduction tree),
//! and off-line analytical aggregation ([`run_query`] over a dataset).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregator;
pub mod diag;
pub mod display;
pub mod ast;
pub mod filter;
pub mod lets;
pub mod lexer;
pub mod ops;
pub mod parallel;
pub mod parser;
pub mod pushdown;
pub mod query;
pub mod sema;

pub use aggregator::{AggregationSpec, Aggregator, OVERFLOW_KEY};
pub use ast::{
    AggOp, CmpOp, Filter, FormatOpt, LetDef, LetExpr, OpKind, OutputFormat, QuerySpec, SortDir,
    SortKey,
};
pub use diag::{Diagnostic, Severity, Span};
pub use ops::Reducer;
pub use parallel::{
    parallel_query_files, shard_merge_fault, ParallelOptions, ParallelQueryError, ShardFailure,
    ShardTimings, WorkerTimings,
};
pub use parser::{parse_query, parse_query_spanned, ParseError, SpanMap};
pub use pushdown::build_pushdown;
pub use query::{
    run_query, run_records_with_deadline, DeadlineRun, Pipeline, QueryResult,
    DEADLINE_CHECK_INTERVAL,
};
pub use sema::analyze;
