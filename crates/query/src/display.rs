//! Canonical text rendering of query specs.
//!
//! `spec.to_string()` produces query text that parses back to an
//! equivalent spec (`parse(render(spec)) == spec`, verified by property
//! tests). Used to ship queries across the simulated MPI substrate and
//! to echo normalized queries in tool output.

use std::fmt;

use caliper_data::Value;

use crate::ast::{AggOp, Filter, LetExpr, OpKind, OutputFormat, QuerySpec, SortDir};

/// Quote a label if it contains characters the lexer would not accept
/// inside a bare identifier.
fn quote_label(label: &str) -> String {
    let bare_ok = !label.is_empty()
        && label.chars().next().map(|c| c.is_alphabetic() || c == '_') == Some(true)
        && label
            .chars()
            .all(|c| c.is_alphanumeric() || matches!(c, '_' | '.' | '#' | ':' | '-' | '/'));
    // Keywords would be swallowed as clause starts; operator names
    // would trigger SELECT's `select sum(x)` sugar and re-parse as an
    // aggregation op instead of a column label.
    let lower = label.to_ascii_lowercase();
    let keywordish = matches!(
        lower.as_str(),
        "aggregate" | "group" | "by" | "where" | "select" | "format" | "order" | "let" | "as"
            | "not" | "asc" | "desc" | "limit"
    ) || OpKind::from_name(&lower).is_some();
    if bare_ok && !keywordish {
        label.to_string()
    } else {
        format!("\"{}\"", label.replace('\\', "\\\\").replace('"', "\\\""))
    }
}

/// Render a literal value for WHERE clauses and op arguments.
fn render_value(value: &Value) -> String {
    match value {
        Value::Str(s) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
        // An integral float must keep a decimal point: `1.0` rendered
        // as "1" would re-parse as Int and break spec round-tripping.
        Value::Float(x) if x.is_finite() && x.fract() == 0.0 => format!("{x:.1}"),
        other => other.to_string(),
    }
}

fn render_op(op: &AggOp, out: &mut String) {
    out.push_str(op.kind.name());
    if op.target.is_some() || !op.args.is_empty() {
        out.push('(');
        if let Some(target) = &op.target {
            out.push_str(&quote_label(target));
        }
        for arg in &op.args {
            out.push_str(", ");
            out.push_str(&render_value(arg));
        }
        out.push(')');
    }
    if let Some(alias) = &op.alias {
        out.push_str(" AS ");
        out.push_str(&quote_label(alias));
    }
}

impl fmt::Display for QuerySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut clauses: Vec<String> = Vec::new();

        if !self.lets.is_empty() {
            let mut s = String::from("LET ");
            for (i, def) in self.lets.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&quote_label(&def.name));
                s.push_str(" = ");
                match &def.expr {
                    LetExpr::Scale(attr, factor) => {
                        s.push_str(&format!("scale({}, {})", quote_label(attr), factor));
                    }
                    LetExpr::Ratio(a, b) => {
                        s.push_str(&format!("ratio({}, {})", quote_label(a), quote_label(b)));
                    }
                    LetExpr::First(attrs) => {
                        s.push_str("first(");
                        for (j, a) in attrs.iter().enumerate() {
                            if j > 0 {
                                s.push_str(", ");
                            }
                            s.push_str(&quote_label(a));
                        }
                        s.push(')');
                    }
                    LetExpr::Truncate(attr, width) => {
                        s.push_str(&format!("truncate({}, {})", quote_label(attr), width));
                    }
                }
            }
            clauses.push(s);
        }

        if !self.ops.is_empty() {
            let mut s = String::from("AGGREGATE ");
            for (i, op) in self.ops.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                render_op(op, &mut s);
            }
            clauses.push(s);
        }

        if !self.filters.is_empty() {
            let mut s = String::from("WHERE ");
            for (i, filter) in self.filters.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                match filter {
                    Filter::Exists(label) => s.push_str(&quote_label(label)),
                    Filter::NotExists(label) => {
                        s.push_str(&format!("not({})", quote_label(label)))
                    }
                    Filter::Cmp { attr, op, value } => {
                        s.push_str(&format!(
                            "{} {} {}",
                            quote_label(attr),
                            op.symbol(),
                            render_value(value)
                        ));
                    }
                }
            }
            clauses.push(s);
        }

        if !self.key.is_empty() {
            let labels: Vec<String> = self.key.iter().map(|l| quote_label(l)).collect();
            clauses.push(format!("GROUP BY {}", labels.join(", ")));
        }

        if let Some(select) = &self.select {
            let labels: Vec<String> = select.iter().map(|l| quote_label(l)).collect();
            clauses.push(format!("SELECT {}", labels.join(", ")));
        }

        if !self.order_by.is_empty() {
            let mut s = String::from("ORDER BY ");
            for (i, key) in self.order_by.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&quote_label(&key.attr));
                if key.dir == SortDir::Desc {
                    s.push_str(" desc");
                }
            }
            clauses.push(s);
        }

        if let Some(limit) = self.limit {
            clauses.push(format!("LIMIT {limit}"));
        }

        if self.format != OutputFormat::default() || !self.format_opts.is_empty() {
            let mut s = format!("FORMAT {}", self.format.name());
            if !self.format_opts.is_empty() {
                s.push('(');
                for (i, opt) in self.format_opts.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&quote_label(&opt.name));
                    if let Some(value) = &opt.value {
                        s.push_str(" = ");
                        s.push_str(&render_value(value));
                    }
                }
                s.push(')');
            }
            clauses.push(s);
        }

        // A completely empty spec still needs to round-trip: SELECT *.
        if clauses.is_empty() {
            clauses.push("SELECT *".to_string());
        }
        f.write_str(&clauses.join(" "))
    }
}

// A compact description of just the aggregation op list, used by the
// runtime to echo its configured scheme.
impl fmt::Display for AggOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        render_op(self, &mut s);
        f.write_str(&s)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_query;

    fn roundtrip(query: &str) {
        let spec = parse_query(query).unwrap();
        let rendered = spec.to_string();
        let reparsed = parse_query(&rendered)
            .unwrap_or_else(|e| panic!("rendered '{rendered}' fails to parse: {e}"));
        assert_eq!(spec, reparsed, "roundtrip of '{query}' via '{rendered}'");
    }

    #[test]
    fn roundtrips_paper_queries() {
        roundtrip("AGGREGATE count, sum(time) GROUP BY function, loop.iteration");
        roundtrip(
            "AGGREGATE sum(time.duration) WHERE not(mpi.function) GROUP BY amr.level,iteration#mainloop",
        );
        roundtrip("AGGREGATE count GROUP BY kernel");
        roundtrip("AGGREGATE sum(aggregate.count) GROUP BY kernel");
    }

    #[test]
    fn roundtrips_extensions() {
        roundtrip("SELECT kernel, count GROUP BY kernel ORDER BY count desc FORMAT json");
        roundtrip(
            "LET ms = scale(time.duration, 0.001), r = ratio(a, b), f = first(x, y), t = truncate(i, 10) \
             AGGREGATE sum(ms) AS total, histogram(ms, 0, 10, 4), percentile(ms, 95), stddev(ms) \
             WHERE a > 1.5, b != \"x y\", c GROUP BY f ORDER BY total",
        );
        roundtrip("SELECT *");
        roundtrip("GROUP BY \"weird label\"");
        roundtrip("AGGREGATE count GROUP BY k ORDER BY count desc LIMIT 10");
        roundtrip("AGGREGATE count GROUP BY k FORMAT csv(noheader)");
        roundtrip("SELECT * FORMAT json(pretty, indent = 2)");
    }

    #[test]
    fn quoting_kicks_in_for_odd_labels() {
        let spec = parse_query("GROUP BY \"has space\", \"select\"").unwrap();
        let rendered = spec.to_string();
        assert!(rendered.contains("\"has space\""));
        assert!(rendered.contains("\"select\""));
    }
}
