//! Semantic analysis of parsed CalQL queries.
//!
//! [`analyze`] checks a [`QuerySpec`] — optionally against a [`Schema`]
//! inferred from the input streams — and returns structured,
//! severity-ranked [`Diagnostic`]s: unknown attributes (with
//! did-you-mean suggestions), numeric operators over non-numeric
//! columns, invalid operator arguments, duplicate output columns,
//! SELECT/ORDER BY columns that name nothing the query produces,
//! contradictory or type-incompatible WHERE clauses, LET-binding
//! hygiene, and unknown FORMAT options.
//!
//! The pass is purely static — it never touches snapshot data — and
//! deterministic: diagnostics come back sorted by span, then code, so
//! `cali-query --check` output can be golden-tested byte for byte.
//!
//! Error codes (`E…` fail a check; `W…` only warn):
//!
//! | code | meaning |
//! |------|---------|
//! | E001 | syntax error (from the parser, not this pass) |
//! | E002 | unknown attribute |
//! | E003 | numeric operator over a non-numeric attribute |
//! | E004 | invalid operator argument |
//! | E005 | duplicate output column |
//! | E006 | SELECT/ORDER BY names no produced column |
//! | E007 | contradictory WHERE clauses (provably empty) |
//! | E008 | unknown FORMAT option |
//! | W001 | unused LET binding |
//! | W002 | self-referential LET binding |
//! | W003 | shadowing LET binding |
//! | W004 | type-incompatible WHERE comparison (constant result) |
//! | W005 | likely-contradictory WHERE clauses |
//! | W006 | LET numeric function over a non-numeric input |
//! | W007 | WHERE predicate is not pushdown-eligible (no block skipping) |

use std::collections::BTreeMap;

use caliper_data::ValueType;
use caliper_format::schema::Schema;

use crate::ast::{CmpOp, Filter, LetExpr, OpKind, QuerySpec};
use crate::diag::{suggest, Diagnostic, Span};
use crate::filter::cmp_types_compatible;
use crate::parser::SpanMap;

/// The result-column label of `count` ops (cf.
/// [`AggOp::result_label`](crate::ast::AggOp::result_label)).
const COUNT_LABEL: &str = "count";

/// Analyze a query spec, optionally against parser spans (for precise
/// diagnostic locations) and a schema (for name/type checks; without
/// one, only schema-independent checks run).
///
/// Diagnostics are returned sorted by span then code — deterministic
/// for identical inputs.
pub fn analyze(
    spec: &QuerySpec,
    spans: Option<&SpanMap>,
    schema: Option<&Schema>,
) -> Vec<Diagnostic> {
    let ctx = Context {
        spec,
        spans,
        schema,
        let_types: let_output_types(spec),
    };
    let mut diags = Vec::new();
    check_ops(&ctx, &mut diags);
    check_keys(&ctx, &mut diags);
    check_filters(&ctx, &mut diags);
    check_lets(&ctx, &mut diags);
    check_outputs(&ctx, &mut diags);
    check_format(&ctx, &mut diags);
    Diagnostic::sort(&mut diags);
    diags
}

struct Context<'a> {
    spec: &'a QuerySpec,
    spans: Option<&'a SpanMap>,
    schema: Option<&'a Schema>,
    /// LET name → output type (by definition order; later duplicates
    /// overwrite, matching evaluation order).
    let_types: BTreeMap<&'a str, ValueType>,
}

/// A LET output's value type is fixed by its function: `scale`,
/// `ratio`, and `truncate` produce floats, `first` copies path values
/// as strings (cf. `LetSet::new`).
fn let_output_types(spec: &QuerySpec) -> BTreeMap<&str, ValueType> {
    spec.lets
        .iter()
        .map(|def| {
            let vtype = match def.expr {
                LetExpr::First(_) => ValueType::Str,
                _ => ValueType::Float,
            };
            (def.name.as_str(), vtype)
        })
        .collect()
}

impl<'a> Context<'a> {
    fn op_span(&self, i: usize) -> Option<Span> {
        self.spans.and_then(|s| s.ops.get(i)).copied()
    }
    fn key_span(&self, i: usize) -> Option<Span> {
        self.spans.and_then(|s| s.keys.get(i)).copied()
    }
    fn filter_span(&self, i: usize) -> Option<Span> {
        self.spans.and_then(|s| s.filters.get(i)).copied()
    }
    fn let_span(&self, i: usize) -> Option<Span> {
        self.spans.and_then(|s| s.lets.get(i)).copied()
    }
    fn select_span(&self, i: usize) -> Option<Span> {
        self.spans.and_then(|s| s.select.get(i)).copied()
    }
    fn order_by_span(&self, i: usize) -> Option<Span> {
        self.spans.and_then(|s| s.order_by.get(i)).copied()
    }
    fn format_opt_span(&self, i: usize) -> Option<Span> {
        self.spans.and_then(|s| s.format_opts.get(i)).copied()
    }

    /// Is `name` a known input attribute (schema or LET output)?
    /// Without a schema everything is presumed known.
    fn input_known(&self, name: &str) -> bool {
        match self.schema {
            None => true,
            Some(schema) => schema.get(name).is_some() || self.let_types.contains_key(name),
        }
    }

    /// The type of input attribute `name`, when known. LET outputs take
    /// precedence (they shadow same-named stream attributes at
    /// evaluation time). `None` = unknown or mixed — don't warn.
    fn input_type(&self, name: &str) -> Option<ValueType> {
        if let Some(t) = self.let_types.get(name) {
            return Some(*t);
        }
        self.schema.and_then(|s| s.get(name)).and_then(|a| a.value_type)
    }

    /// Sorted candidate names for did-you-mean suggestions on input
    /// attributes.
    fn input_candidates(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .schema
            .map(|s| s.names().collect())
            .unwrap_or_default();
        names.extend(self.let_types.keys().copied());
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Attach a did-you-mean help line when a close candidate exists.
    fn with_suggestion(&self, diag: Diagnostic, name: &str, candidates: &[&str]) -> Diagnostic {
        match suggest(name, candidates.iter().copied()) {
            Some(hit) => diag.with_help(format!("did you mean '{hit}'?")),
            None => diag,
        }
    }

    /// E002 for an unknown input attribute reference.
    fn unknown_input(&self, name: &str, what: &str, span: Option<Span>) -> Diagnostic {
        let diag = Diagnostic::error(
            "E002",
            span,
            format!("unknown attribute '{name}' in {what}"),
        );
        self.with_suggestion(diag, name, &self.input_candidates())
    }
}

/// Operators whose reduction is arithmetic and therefore requires a
/// numeric target (`min`/`max` also order strings, so they are exempt).
fn op_requires_numeric(kind: OpKind) -> bool {
    matches!(
        kind,
        OpKind::Sum
            | OpKind::Avg
            | OpKind::Histogram
            | OpKind::PercentTotal
            | OpKind::Variance
            | OpKind::Stddev
            | OpKind::Percentile
    )
}

fn check_ops(ctx: &Context<'_>, diags: &mut Vec<Diagnostic>) {
    for (i, op) in ctx.spec.ops.iter().enumerate() {
        let span = ctx.op_span(i);
        if let Some(target) = &op.target {
            if !ctx.input_known(target) {
                diags.push(ctx.unknown_input(
                    target,
                    &format!("{}()", op.kind.name()),
                    span,
                ));
            } else if op_requires_numeric(op.kind) {
                if let Some(vtype) = ctx.input_type(target) {
                    if !vtype.is_numeric() {
                        diags.push(Diagnostic::error(
                            "E003",
                            span,
                            format!(
                                "{}() requires a numeric attribute, but '{}' has type {}",
                                op.kind.name(),
                                target,
                                vtype.name()
                            ),
                        ));
                    }
                }
            }
        }
        check_op_args(op, span, diags);
    }
}

/// E004: argument validation beyond the parser's arity checks.
fn check_op_args(op: &crate::ast::AggOp, span: Option<Span>, diags: &mut Vec<Diagnostic>) {
    match op.kind {
        OpKind::Histogram => {
            let nums: Vec<Option<f64>> = op.args.iter().map(|v| v.to_f64()).collect();
            match (
                nums.first().copied().flatten(),
                nums.get(1).copied().flatten(),
                nums.get(2).copied().flatten(),
            ) {
                (Some(lo), Some(hi), Some(nbins)) => {
                    if lo >= hi {
                        diags.push(Diagnostic::error(
                            "E004",
                            span,
                            format!("histogram bounds are empty: lo {lo} >= hi {hi}"),
                        ));
                    }
                    if nbins < 1.0 {
                        diags.push(Diagnostic::error(
                            "E004",
                            span,
                            format!("histogram needs at least one bin, got {nbins}"),
                        ));
                    }
                }
                _ => diags.push(Diagnostic::error(
                    "E004",
                    span,
                    "histogram bounds must be numeric: histogram(attr, lo, hi, nbins)"
                        .to_string(),
                )),
            }
        }
        OpKind::Percentile => {
            if let Some(p) = op.args.first().and_then(|v| v.to_f64()) {
                if !(p > 0.0 && p < 100.0) {
                    diags.push(Diagnostic::error(
                        "E004",
                        span,
                        format!("percentile must be in (0, 100), got {p}"),
                    ));
                }
            }
        }
        _ => {}
    }
}

fn check_keys(ctx: &Context<'_>, diags: &mut Vec<Diagnostic>) {
    for (i, key) in ctx.spec.key.iter().enumerate() {
        if !ctx.input_known(key) {
            diags.push(ctx.unknown_input(key, "GROUP BY", ctx.key_span(i)));
        }
    }
}

fn check_filters(ctx: &Context<'_>, diags: &mut Vec<Diagnostic>) {
    // Per-filter checks: unknown attributes and constant-result
    // comparisons.
    for (i, filter) in ctx.spec.filters.iter().enumerate() {
        let span = ctx.filter_span(i);
        let attr = match filter {
            Filter::Exists(a) | Filter::NotExists(a) => a,
            Filter::Cmp { attr, .. } => attr,
        };
        if !ctx.input_known(attr) {
            diags.push(ctx.unknown_input(attr, "WHERE", span));
            continue;
        }
        check_pushdown_eligibility(ctx, filter, attr, span, diags);
        if let Filter::Cmp { attr, op, value } = filter {
            if let Some(attr_type) = ctx.input_type(attr) {
                let literal_type = value.value_type();
                if !cmp_types_compatible(*op, attr_type, literal_type) {
                    let outcome = if *op == CmpOp::Ne {
                        "always true"
                    } else {
                        "never true"
                    };
                    diags.push(
                        Diagnostic::warning(
                            "W004",
                            span,
                            format!(
                                "comparison of {} attribute '{}' with {} literal {} is {}",
                                attr_type.name(),
                                attr,
                                literal_type.name(),
                                value,
                                outcome
                            ),
                        )
                        .with_help(format!(
                            "write the literal as a {} value",
                            attr_type.name()
                        )),
                    );
                }
            }
        }
    }
    check_filter_contradictions(ctx, diags);
}

/// W007: the WHERE clause is correct but cannot use the CALB v2
/// columnar block-skip fast path (cf. `caliper_query::pushdown`), so
/// the reader decodes every block. Purely advisory — results are
/// unaffected.
fn check_pushdown_eligibility(
    ctx: &Context<'_>,
    filter: &Filter,
    attr: &str,
    span: Option<Span>,
    diags: &mut Vec<Diagnostic>,
) {
    if ctx.let_types.contains_key(attr) {
        diags.push(
            Diagnostic::warning(
                "W007",
                span,
                format!(
                    "WHERE on '{attr}' cannot use the columnar block-skip fast \
                     path: '{attr}' is computed by LET after decode"
                ),
            )
            .with_help(
                "filter on a stream attribute instead, or accept a full decode \
                 of every block",
            ),
        );
        return;
    }
    if !matches!(filter, Filter::Cmp { .. }) {
        return;
    }
    let mixed = ctx
        .schema
        .and_then(|s| s.get(attr))
        .is_some_and(|a| a.value_type.is_none());
    if mixed {
        diags.push(
            Diagnostic::warning(
                "W007",
                span,
                format!(
                    "comparing mixed-typed attribute '{attr}' cannot use the \
                     columnar block-skip fast path: its per-stream types \
                     disagree, so block bounds cannot be trusted"
                ),
            )
            .with_help(format!(
                "declare '{attr}' with one consistent type across streams to \
                 make the comparison pushdown-eligible"
            )),
        );
    }
}

/// E007 (provable) and W005 (likely) contradictions between AND-ed
/// clauses on the same attribute. Value-level contradictions are only
/// warnings: a nested attribute can carry several values per record, so
/// `function=a AND function=b` is satisfiable.
fn check_filter_contradictions(ctx: &Context<'_>, diags: &mut Vec<Diagnostic>) {
    let filters = &ctx.spec.filters;
    for (j, fj) in filters.iter().enumerate() {
        let span = ctx.filter_span(j);
        for fi in filters.iter().take(j) {
            match (fi, fj) {
                // exists(a) ∧ not(a) — no record passes, whatever the data.
                (Filter::Exists(a), Filter::NotExists(b))
                | (Filter::NotExists(a), Filter::Exists(b))
                    if a == b =>
                {
                    diags.push(Diagnostic::error(
                        "E007",
                        span,
                        format!("'{a}' is required both present and absent"),
                    ));
                }
                // cmp(a) requires presence; not(a) forbids it.
                (Filter::NotExists(a), Filter::Cmp { attr, .. })
                | (Filter::Cmp { attr, .. }, Filter::NotExists(a))
                    if a == attr =>
                {
                    diags.push(Diagnostic::error(
                        "E007",
                        span,
                        format!(
                            "comparison on '{attr}' can never hold: not({attr}) \
                             requires the attribute to be absent"
                        ),
                    ));
                }
                (
                    Filter::Cmp {
                        attr: a,
                        op: op_a,
                        value: va,
                    },
                    Filter::Cmp {
                        attr: b,
                        op: op_b,
                        value: vb,
                    },
                ) if a == b => {
                    if let Some(msg) = cmp_pair_contradiction(*op_a, va, *op_b, vb) {
                        diags.push(
                            Diagnostic::warning(
                                "W005",
                                span,
                                format!("WHERE clauses on '{a}' are contradictory: {msg}"),
                            )
                            .with_help(
                                "only a record carrying several values for the attribute \
                                 can satisfy both"
                                    .to_string(),
                            ),
                        );
                    }
                }
                _ => {}
            }
        }
    }
}

/// Detect a pair of comparisons on the same attribute that no single
/// value satisfies.
fn cmp_pair_contradiction(
    op_a: CmpOp,
    va: &caliper_data::Value,
    op_b: CmpOp,
    vb: &caliper_data::Value,
) -> Option<String> {
    use CmpOp::*;
    // Equality against two different literals.
    if op_a == Eq && op_b == Eq && va != vb {
        return Some(format!("= {va} and = {vb}"));
    }
    // x = v and x != v.
    if ((op_a == Eq && op_b == Ne) || (op_a == Ne && op_b == Eq)) && va == vb {
        return Some(format!("= {va} and != {va}"));
    }
    // Empty numeric ranges: lower bound above upper bound.
    let (na, nb) = (va.to_f64(), vb.to_f64());
    if let (Some(na), Some(nb)) = (na, nb) {
        let lower = |op: CmpOp, n: f64| match op {
            Gt => Some((n, true)),
            Ge => Some((n, false)),
            Eq => Some((n, false)),
            _ => None,
        };
        let upper = |op: CmpOp, n: f64| match op {
            Lt => Some((n, true)),
            Le => Some((n, false)),
            Eq => Some((n, false)),
            _ => None,
        };
        let pairs = [
            (lower(op_a, na), upper(op_b, nb)),
            (lower(op_b, nb), upper(op_a, na)),
        ];
        for (lo, hi) in pairs {
            if let (Some((lo, lo_strict)), Some((hi, hi_strict))) = (lo, hi) {
                if lo > hi || (lo == hi && (lo_strict || hi_strict)) {
                    return Some(format!("the value range is empty ({lo} vs {hi})"));
                }
            }
        }
    }
    None
}

fn check_lets(ctx: &Context<'_>, diags: &mut Vec<Diagnostic>) {
    let spec = ctx.spec;
    let mut defined: Vec<&str> = Vec::new();
    for (i, def) in spec.lets.iter().enumerate() {
        let span = ctx.let_span(i);
        let inputs: Vec<&String> = match &def.expr {
            LetExpr::Scale(a, _) | LetExpr::Truncate(a, _) => vec![a],
            LetExpr::Ratio(a, b) => vec![a, b],
            LetExpr::First(attrs) => attrs.iter().collect(),
        };
        // W002: the binding reads its own output (evaluation is
        // sequential, so the input is simply missing).
        if inputs.iter().any(|a| a.as_str() == def.name) {
            diags.push(Diagnostic::warning(
                "W002",
                span,
                format!("LET '{}' refers to itself", def.name),
            ));
        }
        // W003: duplicate definition or shadowing a stream attribute.
        if defined.contains(&def.name.as_str()) {
            diags.push(Diagnostic::warning(
                "W003",
                span,
                format!("LET '{}' is defined more than once", def.name),
            ));
        } else if ctx
            .schema
            .map(|s| s.get(&def.name).is_some())
            .unwrap_or(false)
        {
            diags.push(Diagnostic::warning(
                "W003",
                span,
                format!("LET '{}' shadows an input attribute of the same name", def.name),
            ));
        }
        defined.push(def.name.as_str());
        // Input checks: unknown names (E002) and non-numeric inputs to
        // numeric functions (W006). Only previously defined LET names
        // count as known (sequential evaluation).
        let numeric_fn = !matches!(def.expr, LetExpr::First(_));
        for input in inputs {
            if input.as_str() == def.name {
                continue; // already reported as W002
            }
            let known_let = defined.contains(&input.as_str());
            let known = match ctx.schema {
                None => true,
                Some(schema) => known_let || schema.get(input).is_some(),
            };
            if !known {
                diags.push(ctx.unknown_input(input, "LET", span));
                continue;
            }
            if numeric_fn {
                let vtype = if known_let {
                    ctx.let_types.get(input.as_str()).copied()
                } else {
                    ctx.schema.and_then(|s| s.get(input)).and_then(|a| a.value_type)
                };
                if let Some(vtype) = vtype {
                    if !vtype.is_numeric() {
                        diags.push(Diagnostic::warning(
                            "W006",
                            span,
                            format!(
                                "LET '{}' applies a numeric function to '{}', which has type {}",
                                def.name,
                                input,
                                vtype.name()
                            ),
                        ));
                    }
                }
            }
        }
    }
    // W001: a binding nothing downstream reads.
    for (i, def) in spec.lets.iter().enumerate() {
        let name = def.name.as_str();
        let used_by_ops = spec.ops.iter().any(|op| op.target.as_deref() == Some(name));
        let used_by_key = spec.key.iter().any(|k| k == name);
        let used_by_filters = spec.filters.iter().any(|f| match f {
            Filter::Exists(a) | Filter::NotExists(a) => a == name,
            Filter::Cmp { attr, .. } => attr == name,
        });
        let used_by_select = spec
            .select
            .as_ref()
            .is_some_and(|cols| cols.iter().any(|c| c == name));
        let used_by_order = spec.order_by.iter().any(|k| k.attr == name);
        let used_by_later_let = spec.lets.iter().skip(i + 1).any(|other| {
            let inputs: Vec<&String> = match &other.expr {
                LetExpr::Scale(a, _) | LetExpr::Truncate(a, _) => vec![a],
                LetExpr::Ratio(a, b) => vec![a, b],
                LetExpr::First(attrs) => attrs.iter().collect(),
            };
            inputs.iter().any(|a| a.as_str() == name)
        });
        if !(used_by_ops
            || used_by_key
            || used_by_filters
            || used_by_select
            || used_by_order
            || used_by_later_let)
        {
            diags.push(Diagnostic::warning(
                "W001",
                ctx.let_span(i),
                format!("LET '{name}' is never used"),
            ));
        }
    }
}

/// E005/E006: output-column hygiene. Aggregation queries produce
/// exactly the group keys plus one column per operator; SELECT and
/// ORDER BY must draw from that set, and the set must not collide with
/// itself.
fn check_outputs(ctx: &Context<'_>, diags: &mut Vec<Diagnostic>) {
    let spec = ctx.spec;
    if !spec.is_aggregation() {
        // Pass-through: SELECT/ORDER BY reference input attributes.
        if let Some(cols) = &spec.select {
            for (i, col) in cols.iter().enumerate() {
                if !ctx.input_known(col) {
                    diags.push(ctx.unknown_input(col, "SELECT", ctx.select_span(i)));
                }
            }
        }
        for (i, key) in spec.order_by.iter().enumerate() {
            if !ctx.input_known(&key.attr) {
                diags.push(ctx.unknown_input(&key.attr, "ORDER BY", ctx.order_by_span(i)));
            }
        }
        return;
    }

    // E005: duplicate result labels (including group-key collisions).
    let mut produced: Vec<String> = spec.key.clone();
    for (i, op) in spec.ops.iter().enumerate() {
        let label = op.result_label(COUNT_LABEL);
        if produced.contains(&label) {
            let what = if spec.key.contains(&label) {
                format!("collides with group key '{label}'")
            } else {
                format!("'{label}' is produced more than once")
            };
            diags.push(Diagnostic::error(
                "E005",
                ctx.op_span(i),
                format!("duplicate output column: {what}"),
            ));
        }
        produced.push(label);
    }

    let candidates: Vec<&str> = {
        let mut c: Vec<&str> = produced.iter().map(String::as_str).collect();
        c.sort_unstable();
        c.dedup();
        c
    };
    if let Some(cols) = &spec.select {
        for (i, col) in cols.iter().enumerate() {
            if !produced.iter().any(|p| p == col) {
                let diag = Diagnostic::error(
                    "E006",
                    ctx.select_span(i),
                    format!(
                        "SELECT column '{col}' names neither a group key nor an \
                         aggregate output"
                    ),
                );
                diags.push(ctx.with_suggestion(diag, col, &candidates));
            }
        }
    }
    for (i, key) in spec.order_by.iter().enumerate() {
        if !produced.iter().any(|p| p == &key.attr) {
            let diag = Diagnostic::error(
                "E006",
                ctx.order_by_span(i),
                format!(
                    "ORDER BY column '{}' names neither a group key nor an \
                     aggregate output",
                    key.attr
                ),
            );
            diags.push(ctx.with_suggestion(diag, &key.attr, &candidates));
        }
    }
}

/// E008: FORMAT options the chosen formatter does not understand.
fn check_format(ctx: &Context<'_>, diags: &mut Vec<Diagnostic>) {
    let spec = ctx.spec;
    let known = spec.format.known_options();
    for (i, opt) in spec.format_opts.iter().enumerate() {
        let span = ctx.format_opt_span(i);
        let hit = known
            .iter()
            .find(|k| k.eq_ignore_ascii_case(&opt.name));
        match hit {
            None => {
                let diag = Diagnostic::error(
                    "E008",
                    span,
                    format!(
                        "format '{}' has no option '{}'",
                        spec.format.name(),
                        opt.name
                    ),
                );
                let diag = ctx.with_suggestion(diag, &opt.name, known);
                let diag = if known.is_empty() {
                    diag.with_help(format!(
                        "format '{}' takes no options",
                        spec.format.name()
                    ))
                } else {
                    diag
                };
                diags.push(diag);
            }
            Some(k) => {
                // All currently known options are flags.
                if opt.value.is_some() {
                    diags.push(Diagnostic::error(
                        "E008",
                        span,
                        format!("format option '{k}' does not take a value"),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use crate::parser::parse_query_spanned;
    use caliper_data::Properties;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.observe("function", ValueType::Str, Properties::NESTED);
        s.observe("mpi.rank", ValueType::Int, Properties::GLOBAL);
        s.observe(
            "time.duration",
            ValueType::Float,
            Properties::AS_VALUE | Properties::AGGREGATABLE,
        );
        s.observe("loop.iteration", ValueType::Int, Properties::AS_VALUE);
        s
    }

    fn run(query: &str) -> Vec<Diagnostic> {
        let (spec, spans) = parse_query_spanned(query).unwrap();
        analyze(&spec, Some(&spans), Some(&schema()))
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_query_has_no_diagnostics() {
        let diags = run(
            "AGGREGATE count, sum(time.duration) AS total \
             WHERE mpi.rank=0, function \
             GROUP BY function, loop.iteration \
             ORDER BY total desc LIMIT 10 FORMAT csv(noheader)",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unknown_attribute_suggests_a_fix() {
        let diags = run("AGGREGATE sum(time.duraton) GROUP BY function");
        assert_eq!(codes(&diags), ["E002"]);
        assert_eq!(
            diags[0].help.as_deref(),
            Some("did you mean 'time.duration'?")
        );
        assert!(diags[0].span.is_some());
    }

    #[test]
    fn numeric_op_over_string_is_an_error() {
        let diags = run("AGGREGATE sum(function) GROUP BY mpi.rank");
        assert_eq!(codes(&diags), ["E003"]);
        // min/max order strings fine.
        assert!(run("AGGREGATE min(function), max(function) GROUP BY mpi.rank").is_empty());
    }

    #[test]
    fn histogram_and_percentile_argument_checks() {
        let diags = run("AGGREGATE histogram(time.duration, 10, 0, 4) GROUP BY function");
        assert_eq!(codes(&diags), ["E004"]);
        let diags = run("AGGREGATE histogram(time.duration, 0, 10, 0) GROUP BY function");
        assert_eq!(codes(&diags), ["E004"]);
        let diags = run("AGGREGATE percentile(time.duration, 150) GROUP BY function");
        assert_eq!(codes(&diags), ["E004"]);
        assert!(run("AGGREGATE percentile(time.duration, 95) GROUP BY function").is_empty());
    }

    #[test]
    fn duplicate_output_columns() {
        let diags =
            run("AGGREGATE sum(time.duration) AS t, avg(time.duration) AS t GROUP BY function");
        assert_eq!(codes(&diags), ["E005"]);
        let diags = run("AGGREGATE count AS function GROUP BY function");
        assert_eq!(codes(&diags), ["E005"]);
        assert!(diags[0].message.contains("group key"));
    }

    #[test]
    fn select_and_order_by_must_name_outputs() {
        let diags = run("AGGREGATE count GROUP BY function SELECT function, cout");
        assert_eq!(codes(&diags), ["E006"]);
        assert_eq!(diags[0].help.as_deref(), Some("did you mean 'count'?"));
        let diags = run("AGGREGATE count GROUP BY function ORDER BY time.duration");
        assert_eq!(codes(&diags), ["E006"]);
    }

    #[test]
    fn passthrough_select_checks_inputs() {
        let diags = run("SELECT function, nope WHERE mpi.rank=0");
        assert_eq!(codes(&diags), ["E002"]);
    }

    #[test]
    fn contradictions_hard_and_soft() {
        let diags = run("AGGREGATE count GROUP BY function WHERE function, not(function)");
        assert_eq!(codes(&diags), ["E007"]);
        let diags = run("AGGREGATE count GROUP BY function WHERE not(mpi.rank), mpi.rank=0");
        assert_eq!(codes(&diags), ["E007"]);
        // Value-level: warning only (multi-valued nested attributes).
        let diags = run("AGGREGATE count GROUP BY function WHERE function=a, function=b");
        assert_eq!(codes(&diags), ["W005"]);
        let diags =
            run("AGGREGATE count GROUP BY function WHERE mpi.rank>5, mpi.rank<2");
        assert_eq!(codes(&diags), ["W005"]);
        let diags = run("AGGREGATE count GROUP BY function WHERE mpi.rank>=2, mpi.rank<2");
        assert_eq!(codes(&diags), ["W005"]);
        assert!(run("AGGREGATE count GROUP BY function WHERE mpi.rank>=2, mpi.rank<=2")
            .is_empty());
    }

    #[test]
    fn type_incompatible_comparison_warns() {
        // Float attribute, Int literal: class-strict equality never holds.
        let diags = run("AGGREGATE count GROUP BY function WHERE time.duration=2");
        assert_eq!(codes(&diags), ["W004"]);
        assert_eq!(diags[0].severity, Severity::Warning);
        // Ordering between numbers is fine.
        assert!(run("AGGREGATE count GROUP BY function WHERE time.duration>2").is_empty());
        // String attribute ordered against a number: constant.
        let diags = run("AGGREGATE count GROUP BY function WHERE function>2");
        assert_eq!(codes(&diags), ["W004"]);
    }

    #[test]
    fn let_hygiene() {
        let diags = run("LET x = scale(time.duration, 2) AGGREGATE count GROUP BY function");
        assert_eq!(codes(&diags), ["W001"]);
        let diags = run("LET x = scale(x, 2) AGGREGATE sum(x) GROUP BY function");
        assert_eq!(codes(&diags), ["W002"]);
        let diags = run(
            "LET x = scale(time.duration, 2), x = scale(time.duration, 3) \
             AGGREGATE sum(x) GROUP BY function",
        );
        assert_eq!(codes(&diags), ["W003"]);
        let diags = run(
            "LET function = first(mpi.rank) AGGREGATE count GROUP BY function",
        );
        assert_eq!(codes(&diags), ["W003"]);
        let diags = run("LET x = scale(function, 2) AGGREGATE sum(x) GROUP BY mpi.rank");
        assert_eq!(codes(&diags), ["W006"]);
        // A LET feeding a later LET is used.
        assert!(run(
            "LET a = scale(time.duration, 2), b = scale(a, 3) \
             AGGREGATE sum(b) GROUP BY function"
        )
        .is_empty());
    }

    #[test]
    fn format_option_checks() {
        let diags = run("AGGREGATE count GROUP BY function FORMAT csv(nohead)");
        assert_eq!(codes(&diags), ["E008"]);
        assert_eq!(diags[0].help.as_deref(), Some("did you mean 'noheader'?"));
        let diags = run("AGGREGATE count GROUP BY function FORMAT csv(noheader=2)");
        assert_eq!(codes(&diags), ["E008"]);
        let diags = run("AGGREGATE count GROUP BY function FORMAT expand(x)");
        assert_eq!(codes(&diags), ["E008"]);
        assert!(diags[0].help.as_deref().unwrap().contains("takes no options"));
    }

    #[test]
    fn without_schema_only_static_checks_run() {
        let (spec, spans) = parse_query_spanned(
            "AGGREGATE sum(anything) GROUP BY whatever WHERE x=1, not(x)",
        )
        .unwrap();
        let diags = analyze(&spec, Some(&spans), None);
        // No E002 without a schema, but the contradiction still fires.
        assert_eq!(codes(&diags), ["E007"]);
    }

    #[test]
    fn where_on_a_let_output_warns_pushdown_ineligible() {
        let diags = run(
            "LET ms = scale(time.duration, 1000) AGGREGATE sum(ms) \
             WHERE ms > 5 GROUP BY function",
        );
        assert_eq!(codes(&diags), ["W007"]);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("computed by LET after decode"));
        // Fires without a schema too — the exclusion is schema-independent.
        let (spec, spans) = parse_query_spanned(
            "LET ms = scale(time.duration, 1000) AGGREGATE sum(ms) \
             WHERE ms GROUP BY function",
        )
        .unwrap();
        assert_eq!(codes(&analyze(&spec, Some(&spans), None)), ["W007"]);
    }

    #[test]
    fn comparing_a_mixed_typed_attribute_warns_pushdown_ineligible() {
        let mut s = schema();
        s.observe("mpi.rank", ValueType::Str, Properties::GLOBAL); // now mixed
        let (spec, spans) =
            parse_query_spanned("AGGREGATE count WHERE mpi.rank = 3 GROUP BY function").unwrap();
        let diags = analyze(&spec, Some(&spans), Some(&s));
        assert_eq!(codes(&diags), ["W007"]);
        assert!(diags[0].message.contains("mixed-typed"));
        // Existence tests on the same mixed attribute stay eligible.
        let (spec, spans) =
            parse_query_spanned("AGGREGATE count WHERE mpi.rank GROUP BY function").unwrap();
        assert!(analyze(&spec, Some(&spans), Some(&s)).is_empty());
        // And a consistently-typed comparison never fires W007.
        assert!(run("AGGREGATE count WHERE mpi.rank = 3 GROUP BY function").is_empty());
    }

    #[test]
    fn diagnostics_are_sorted_and_deterministic() {
        let q = "AGGREGATE sum(function), sum(nope) GROUP BY bogus WHERE function>1";
        let a = run(q);
        let b = run(q);
        assert_eq!(a, b);
        let spans: Vec<usize> = a
            .iter()
            .map(|d| d.span.map(|s| s.start).unwrap_or(usize::MAX))
            .collect();
        let mut sorted = spans.clone();
        sorted.sort_unstable();
        assert_eq!(spans, sorted);
        assert_eq!(a.len(), 4);
    }
}
