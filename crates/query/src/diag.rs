//! Shared diagnostic machinery for the CalQL front end.
//!
//! Parse errors and semantic findings (see [`crate::sema`]) are
//! reported through one [`Diagnostic`] type so every tool renders them
//! identically: a `source:line:col: severity[CODE]: message` header, the
//! offending query line, and a caret run underlining the byte [`Span`]
//! the finding refers to. Diagnostics order deterministically (by span,
//! then code, then message), which lets the CLI golden-test its output
//! byte for byte.

use std::fmt;

use caliper_format::json::escape_json;

use crate::parser::ParseError;

/// A half-open byte range `[start, end)` into the query text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span {
            start,
            end: end.max(start),
        }
    }

    /// A zero-width span at `pos` (rendered as a single caret).
    pub fn point(pos: usize) -> Span {
        Span {
            start: pos,
            end: pos,
        }
    }
}

/// Diagnostic severity, ordered least to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The query is suspicious but executable (`W…` codes).
    Warning,
    /// The query cannot mean what was written (`E…` codes).
    Error,
}

impl Severity {
    /// Lowercase name as rendered in diagnostics (`error` / `warning`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding about a query: code, severity, location, message, and an
/// optional `help:` follow-up line (e.g. a did-you-mean suggestion).
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code (`E001`…, `W001`…; see docs/CALQL.md "Diagnostics").
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Where in the query text, if known.
    pub span: Option<Span>,
    /// Human-readable description of the finding.
    pub message: String,
    /// Optional suggestion rendered as a trailing `help:` line.
    pub help: Option<String>,
}

impl Diagnostic {
    /// A new error diagnostic.
    pub fn error(code: &'static str, span: Option<Span>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            span,
            message: message.into(),
            help: None,
        }
    }

    /// A new warning diagnostic.
    pub fn warning(
        code: &'static str,
        span: Option<Span>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Warning,
            span,
            message: message.into(),
            help: None,
        }
    }

    /// Attach a `help:` line (builder style).
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }

    /// Render the diagnostic against its query text:
    ///
    /// ```text
    /// query:1:11: error[E003]: sum() needs a numeric attribute
    ///   AGGREGATE sum(function) GROUP BY function
    ///             ^^^^^^^^^^^^^
    /// ```
    pub fn render(&self, source: &str, query: &str) -> String {
        let mut out = String::new();
        match self.span {
            Some(span) => {
                let (line, col) = line_col(query, span.start);
                out.push_str(&format!(
                    "{source}:{line}:{col}: {}[{}]: {}\n",
                    self.severity, self.code, self.message
                ));
                let (line_text, line_start) = line_at(query, span.start);
                out.push_str("  ");
                out.push_str(line_text);
                out.push('\n');
                // Caret run: underline the span within its line (carets
                // count characters, matching the printed line).
                let lead = query[line_start..span.start].chars().count();
                let span_end = span.end.min(line_start + line_text.len()).max(span.start);
                let width = query[span.start..span_end].chars().count().max(1);
                out.push_str("  ");
                out.push_str(&" ".repeat(lead));
                out.push_str(&"^".repeat(width));
                out.push('\n');
            }
            None => {
                out.push_str(&format!(
                    "{source}: {}[{}]: {}\n",
                    self.severity, self.code, self.message
                ));
            }
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("  help: {help}\n"));
        }
        out
    }

    /// Render as one JSON object (`--check=json` / `cali-lint --json`).
    pub fn render_json(&self, query: &str) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"code\":\"{}\"", self.code));
        out.push_str(&format!(",\"severity\":\"{}\"", self.severity));
        out.push_str(&format!(",\"message\":\"{}\"", escape_json(&self.message)));
        if let Some(span) = self.span {
            let (line, col) = line_col(query, span.start);
            out.push_str(&format!(
                ",\"start\":{},\"end\":{},\"line\":{line},\"col\":{col}",
                span.start, span.end
            ));
        }
        if let Some(help) = &self.help {
            out.push_str(&format!(",\"help\":\"{}\"", escape_json(help)));
        }
        out.push('}');
        out
    }

    /// Sort diagnostics deterministically: by span start (spanless
    /// findings last), span end, code, then message.
    pub fn sort(diags: &mut [Diagnostic]) {
        diags.sort_by(|a, b| {
            let ka = (
                a.span.map_or(usize::MAX, |s| s.start),
                a.span.map_or(usize::MAX, |s| s.end),
                a.code,
                &a.message,
            );
            let kb = (
                b.span.map_or(usize::MAX, |s| s.start),
                b.span.map_or(usize::MAX, |s| s.end),
                b.code,
                &b.message,
            );
            ka.cmp(&kb)
        });
    }

    /// True if any diagnostic in the list is an error.
    pub fn has_errors(diags: &[Diagnostic]) -> bool {
        diags.iter().any(|d| d.severity == Severity::Error)
    }
}

impl From<&ParseError> for Diagnostic {
    /// Every lex/parse failure becomes the single syntax code `E001`.
    fn from(e: &ParseError) -> Diagnostic {
        Diagnostic::error(
            "E001",
            Some(Span::new(e.pos, e.end)),
            format!("syntax error: {}", e.message),
        )
    }
}

/// 1-based line and column (in characters) of a byte offset. Offsets
/// past the end of the text point one past the last character.
pub fn line_col(text: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(text.len());
    let before = &text[..offset];
    let line = before.matches('\n').count() + 1;
    let line_start = before.rfind('\n').map(|i| i + 1).unwrap_or(0);
    let col = text[line_start..offset].chars().count() + 1;
    (line, col)
}

/// The line containing `offset` (without its newline) and the byte
/// offset where it starts.
fn line_at(text: &str, offset: usize) -> (&str, usize) {
    let offset = offset.min(text.len());
    let start = text[..offset].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let end = text[start..]
        .find('\n')
        .map(|i| start + i)
        .unwrap_or(text.len());
    (&text[start..end], start)
}

/// Levenshtein edit distance, used for did-you-mean suggestions.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = if ca == cb { prev } else { prev + 1 };
            prev = row[j + 1];
            row[j + 1] = cost.min(row[j] + 1).min(prev + 1);
        }
    }
    row[b.len()]
}

/// The closest candidate within an edit-distance budget proportional to
/// the name's length (ties break lexicographically, so suggestions are
/// deterministic). Candidates must be iterated in a stable order for
/// determinism across runs; callers pass sorted sets.
pub fn suggest<'a>(name: &str, candidates: impl IntoIterator<Item = &'a str>) -> Option<&'a str> {
    let budget = (name.chars().count() / 3).clamp(1, 4);
    let mut best: Option<(usize, &str)> = None;
    for cand in candidates {
        if cand == name {
            continue;
        }
        let d = edit_distance(name, cand);
        if d <= budget && best.is_none_or(|(bd, bc)| d < bd || (d == bd && cand < bc)) {
            best = Some((d, cand));
        }
    }
    best.map(|(_, c)| c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_counts_lines_and_chars() {
        let text = "AGGREGATE count\nGROUP BY kernel";
        assert_eq!(line_col(text, 0), (1, 1));
        assert_eq!(line_col(text, 10), (1, 11));
        assert_eq!(line_col(text, 16), (2, 1));
        assert_eq!(line_col(text, 25), (2, 10));
        // past the end: one past the last character
        assert_eq!(line_col(text, 1000), (2, 16));
        // columns count characters, not bytes
        assert_eq!(line_col("é x", 3), (1, 3));
    }

    #[test]
    fn render_underlines_the_span() {
        let query = "AGGREGATE sum(function) GROUP BY function";
        let d = Diagnostic::error("E003", Some(Span::new(10, 23)), "not numeric");
        let rendered = d.render("query", query);
        assert_eq!(
            rendered,
            "query:1:11: error[E003]: not numeric\n  \
             AGGREGATE sum(function) GROUP BY function\n  \
             \u{20}         ^^^^^^^^^^^^^\n"
        );
    }

    #[test]
    fn render_handles_multiline_queries_and_eof_spans() {
        let query = "AGGREGATE count\nGROUP BY";
        let d = Diagnostic::error("E001", Some(Span::point(24)), "expected attribute label");
        let rendered = d.render("q", query);
        assert!(rendered.starts_with("q:2:9: error[E001]:"), "{rendered}");
        assert!(rendered.contains("GROUP BY\n"), "{rendered}");
        // a zero-width span still gets one caret
        assert!(rendered.contains("^"), "{rendered}");
    }

    #[test]
    fn json_rendering_escapes_and_locates() {
        let d = Diagnostic::warning("W004", Some(Span::new(0, 1)), "a \"quoted\" message")
            .with_help("try x");
        let json = d.render_json("x = 1");
        assert!(json.contains("\"code\":\"W004\""), "{json}");
        assert!(json.contains("\\\"quoted\\\""), "{json}");
        assert!(json.contains("\"line\":1,\"col\":1"), "{json}");
        assert!(json.contains("\"help\":\"try x\""), "{json}");
        caliper_format::json::parse_json(&json).expect("valid JSON");
    }

    #[test]
    fn sort_is_deterministic_and_span_major() {
        let mut diags = vec![
            Diagnostic::warning("W001", None, "spanless"),
            Diagnostic::error("E005", Some(Span::new(9, 12)), "b"),
            Diagnostic::error("E002", Some(Span::new(9, 12)), "a"),
            Diagnostic::error("E002", Some(Span::new(3, 4)), "c"),
        ];
        Diagnostic::sort(&mut diags);
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert_eq!(codes, ["E002", "E002", "E005", "W001"]);
        assert_eq!(diags[0].message, "c");
    }

    #[test]
    fn suggestions_prefer_close_names() {
        let cands = ["function", "loop.iteration", "time.duration"];
        assert_eq!(suggest("time.duraton", cands), Some("time.duration"));
        assert_eq!(suggest("functon", cands), Some("function"));
        assert_eq!(suggest("zzz", cands), None);
        // exact matches are not suggestions
        assert_eq!(suggest("function", cands), None);
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("same", "same"), 0);
    }
}
