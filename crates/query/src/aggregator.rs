//! The streaming aggregation engine (§IV-B, Figure 2).
//!
//! The aggregator receives flat records, extracts the *aggregation key*
//! (the GROUP BY attributes), locates the matching aggregation entry in
//! an in-memory hash database, and folds the *aggregation attributes*
//! into the entry's reduction states. Input records are never stored —
//! this is the streaming reduction that makes on-line profiling
//! possible.
//!
//! The same engine serves all three aggregation applications from the
//! paper: on-line event aggregation (driven by runtime snapshots),
//! cross-process aggregation (entries merged up a reduction tree via
//! [`Aggregator::merge`]), and analytical aggregation (driven by records
//! read from `.cali` files).

use std::sync::Arc;

use caliper_data::{
    Attribute, AttributeStore, FlatRecord, FxBuildHasher, Properties, Value, ValueType,
};

use crate::ast::{AggOp, OpKind, QuerySpec};
use crate::ops::Reducer;

/// Key value of the overflow bucket in flushed results (the same
/// sentinel upstream Caliper uses when its aggregation buffers fill).
pub const OVERFLOW_KEY: &str = "__overflow__";

/// Configuration of an aggregation: operators + key.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregationSpec {
    /// The aggregation operations.
    pub ops: Vec<AggOp>,
    /// Key attribute labels (GROUP BY).
    pub key: Vec<String>,
    /// Label of the `count` result attribute. The off-line query engine
    /// uses `"count"`; the on-line service uses `"aggregate.count"`
    /// (§VI-B of the paper aggregates `sum(aggregate.count)` over
    /// on-line results).
    pub count_label: String,
}

impl AggregationSpec {
    /// Build from a parsed query.
    pub fn from_query(spec: &QuerySpec) -> AggregationSpec {
        AggregationSpec {
            ops: spec.ops.clone(),
            key: spec.key.clone(),
            count_label: "count".to_string(),
        }
    }

    /// Build from op and key lists with the default count label.
    pub fn new(ops: Vec<AggOp>, key: Vec<String>) -> AggregationSpec {
        AggregationSpec {
            ops,
            key,
            count_label: "count".to_string(),
        }
    }

    /// Use a different count result label (on-line service).
    pub fn with_count_label(mut self, label: &str) -> AggregationSpec {
        self.count_label = label.to_string();
        self
    }
}

/// Lazily resolved attribute handle: labels may refer to attributes that
/// do not exist yet when the aggregation starts (on-line, attributes
/// appear as the program runs).
#[derive(Debug, Clone, Default)]
enum Slot {
    #[default]
    Unresolved,
    Resolved(Attribute),
}

/// Aggregation key: one optional grouping value per key label, in spec
/// order. `None` marks "attribute not present in the record" — the paper
/// notes that results include separate entries for records where only
/// some key attributes are set.
type Key = Box<[Option<Value>]>;

/// One aggregation database entry: the reduction states for one unique key.
#[derive(Debug, Clone)]
struct DbEntry {
    reducers: Vec<Reducer>,
    /// Input records folded into this entry (for capacity reporting;
    /// unlike the `count` op this is tracked even without one).
    records: u64,
}

impl DbEntry {
    fn fresh(ops: &[AggOp]) -> DbEntry {
        DbEntry {
            reducers: ops.iter().map(Reducer::new).collect(),
            records: 0,
        }
    }

    /// Fold another entry of the same spec into this one.
    fn fold(&mut self, other: &DbEntry) {
        for (mine, theirs) in self.reducers.iter_mut().zip(&other.reducers) {
            mine.merge(theirs);
        }
        self.records += other.records;
    }
}

/// The streaming aggregator.
pub struct Aggregator {
    spec: AggregationSpec,
    store: Arc<AttributeStore>,
    key_slots: Vec<Slot>,
    target_slots: Vec<Slot>,
    db: std::collections::HashMap<Key, DbEntry, FxBuildHasher>,
    records_processed: u64,
    /// Capacity bound on `db` (None = unbounded, the historical mode).
    max_groups: Option<usize>,
    /// The overflow bucket: once `db` holds `max_groups` keys, records
    /// with *new* keys fold in here instead of growing the database, so
    /// a cardinality explosion degrades to coarser totals instead of
    /// unbounded memory. Kept outside `db` so the `len() <= cap`
    /// invariant is structural.
    overflow: Option<DbEntry>,
}

impl Aggregator {
    /// Create an aggregator resolving labels against `store`.
    pub fn new(spec: AggregationSpec, store: Arc<AttributeStore>) -> Aggregator {
        let key_slots = vec![Slot::Unresolved; spec.key.len()];
        let target_slots = vec![Slot::Unresolved; spec.ops.len()];
        Aggregator {
            spec,
            store,
            key_slots,
            target_slots,
            db: Default::default(),
            records_processed: 0,
            max_groups: None,
            overflow: None,
        }
    }

    /// Bound the aggregation database to at most `cap` groups; further
    /// keys fold into the [`OVERFLOW_KEY`] bucket. `None` removes the
    /// bound.
    pub fn set_max_groups(&mut self, cap: Option<usize>) {
        self.max_groups = cap;
    }

    /// The configured group capacity, if any.
    pub fn max_groups(&self) -> Option<usize> {
        self.max_groups
    }

    /// True once any record or merged group has landed in the overflow
    /// bucket.
    pub fn has_overflow(&self) -> bool {
        self.overflow.is_some()
    }

    /// Number of input records folded into the overflow bucket (0 when
    /// the capacity was never exceeded).
    pub fn overflow_records(&self) -> u64 {
        self.overflow.as_ref().map_or(0, |e| e.records)
    }

    /// The aggregation spec.
    pub fn spec(&self) -> &AggregationSpec {
        &self.spec
    }

    /// Number of unique keys currently in the database (the number of
    /// output records a flush would produce).
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// True if no records have produced entries yet.
    pub fn is_empty(&self) -> bool {
        self.db.is_empty()
    }

    /// Total number of input records processed.
    pub fn records_processed(&self) -> u64 {
        self.records_processed
    }

    fn resolve(store: &AttributeStore, slot: &mut Slot, label: &str) -> Option<Attribute> {
        match slot {
            Slot::Resolved(attr) => Some(attr.clone()),
            Slot::Unresolved => match store.find(label) {
                Some(attr) => {
                    *slot = Slot::Resolved(attr.clone());
                    Some(attr)
                }
                None => None,
            },
        }
    }

    /// Process one input record (streaming update).
    pub fn add(&mut self, record: &FlatRecord) {
        self.records_processed += 1;
        // Extract the aggregation key.
        let mut key: Vec<Option<Value>> = Vec::with_capacity(self.spec.key.len());
        for (i, label) in self.spec.key.iter().enumerate() {
            let value = Self::resolve(&self.store, &mut self.key_slots[i], label)
                .and_then(|attr| record.path_string(attr.id()));
            key.push(value);
        }
        let key: Key = key.into_boxed_slice();

        // Locate or create the aggregation entry. At capacity, records
        // with new keys fold into the overflow bucket (first-come
        // admission, like upstream Caliper's fixed aggregation buffers).
        let spec_ops = &self.spec.ops;
        let at_cap = self.max_groups.is_some_and(|cap| self.db.len() >= cap);
        let entry = if at_cap && !self.db.contains_key(&key) {
            self.overflow.get_or_insert_with(|| DbEntry::fresh(spec_ops))
        } else {
            self.db
                .entry(key)
                .or_insert_with(|| DbEntry::fresh(spec_ops))
        };
        entry.records += 1;

        // Fold the aggregation attributes into the entry.
        for (i, op) in self.spec.ops.iter().enumerate() {
            match op.kind {
                OpKind::Count => entry.reducers[i].update(&Value::UInt(1)),
                _ => {
                    let target = op.target.as_deref().unwrap_or_default();
                    if let Some(attr) =
                        Self::resolve(&self.store, &mut self.target_slots[i], target)
                    {
                        for value in record.all(attr.id()) {
                            entry.reducers[i].update(value);
                        }
                    }
                }
            }
        }
    }

    /// Merge another aggregator's database into this one (cross-process
    /// reduction). Both must have the same spec.
    ///
    /// When a group capacity is set, the incoming groups are applied in
    /// sorted key order, so which keys win admission — and therefore the
    /// output — depends only on the *sequence* of merges (which callers
    /// keep deterministic), never on hash-map iteration order.
    pub fn merge(&mut self, other: Aggregator) {
        debug_assert_eq!(self.spec, other.spec, "merging mismatched aggregations");
        self.records_processed += other.records_processed;
        if let Some(theirs) = other.overflow {
            let spec_ops = &self.spec.ops;
            self.overflow
                .get_or_insert_with(|| DbEntry::fresh(spec_ops))
                .fold(&theirs);
        }
        if self.max_groups.is_some() {
            let mut incoming: Vec<(Key, DbEntry)> = other.db.into_iter().collect();
            incoming.sort_by(|a, b| Self::key_cmp(&a.0, &b.0));
            for (key, entry) in incoming {
                self.merge_entry(key, entry);
            }
        } else {
            for (key, entry) in other.db {
                self.merge_entry(key, entry);
            }
        }
    }

    /// Merge one group into the database, honoring the capacity bound.
    fn merge_entry(&mut self, key: Key, entry: DbEntry) {
        let at_cap = self.max_groups.is_some_and(|cap| self.db.len() >= cap);
        match self.db.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().fold(&entry);
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                if at_cap {
                    let spec_ops = &self.spec.ops;
                    self.overflow
                        .get_or_insert_with(|| DbEntry::fresh(spec_ops))
                        .fold(&entry);
                } else {
                    v.insert(entry);
                }
            }
        }
    }

    /// Total order on aggregation keys (slot-wise; absent sorts first) —
    /// the comparator behind deterministic flush and capped merges.
    fn key_cmp(a: &Key, b: &Key) -> std::cmp::Ordering {
        for (va, vb) in a.iter().zip(b.iter()) {
            let ord = match (va, vb) {
                (None, None) => std::cmp::Ordering::Equal,
                (None, Some(_)) => std::cmp::Ordering::Less,
                (Some(_), None) => std::cmp::Ordering::Greater,
                (Some(va), Some(vb)) => va.total_cmp(vb),
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    }

    /// Flush the database into result records, interning result
    /// attributes in `out_store`. Results are sorted by key for
    /// deterministic output.
    ///
    /// This realizes the paper's flush step: "iterating over all entries,
    /// reconstructing the key attributes, and appending the reduction
    /// results".
    pub fn flush(&self, out_store: &AttributeStore) -> Vec<FlatRecord> {
        // When the overflow bucket is live its row carries the string
        // sentinel in every key column, so key columns must be typed as
        // strings; ordinary key values coerce to their string rendering.
        let has_overflow = self.overflow.is_some();

        // Resolve key attributes for output (they may exist only in the
        // input store; intern them into out_store as strings-preserving).
        let key_attrs: Vec<Option<Attribute>> = self
            .spec
            .key
            .iter()
            .map(|label| {
                // Determine the output type: use the input attribute's
                // type if known, else guess from the first value seen.
                let vtype = if has_overflow {
                    Some(ValueType::Str)
                } else {
                    self.store.find(label).map(|a| a.value_type()).or_else(|| {
                        self.db.iter().find_map(|(key, _)| {
                            let idx = self.spec.key.iter().position(|l| l == label)?;
                            key[idx].as_ref().map(|v| v.value_type())
                        })
                    })
                };
                vtype.map(|t| {
                    out_store
                        .create(label, t, Properties::DEFAULT)
                        .unwrap_or_else(|_| out_store.find(label).expect("exists"))
                })
            })
            .collect();

        // Determine result types per op: join over all entries.
        let mut result_types: Vec<Option<ValueType>> = vec![None; self.spec.ops.len()];
        let denominators = self.percent_denominators();
        for entry in self.db.values().chain(self.overflow.iter()) {
            for (i, red) in entry.reducers.iter().enumerate() {
                if let Some(v) = red.finish(denominators[i]) {
                    let t = v.value_type();
                    result_types[i] = Some(match result_types[i] {
                        None => t,
                        Some(prev) if prev == t => t,
                        // mixed numeric types widen to float; anything
                        // else falls back to string
                        Some(prev) if prev.is_numeric() && t.is_numeric() => ValueType::Float,
                        Some(_) => ValueType::Str,
                    });
                }
            }
        }
        let result_attrs: Vec<Option<Attribute>> = self
            .spec
            .ops
            .iter()
            .zip(&result_types)
            .map(|(op, vtype)| {
                vtype.map(|t| {
                    let label = op.result_label(&self.spec.count_label);
                    out_store
                        .create(&label, t, Properties::AGGREGATABLE)
                        .unwrap_or_else(|_| out_store.find(&label).expect("exists"))
                })
            })
            .collect();

        // Sort keys for deterministic output.
        let mut keys: Vec<&Key> = self.db.keys().collect();
        keys.sort_by(|a, b| Self::key_cmp(a, b));

        // Widen a finished value to its attribute's joined type so the
        // output stream is type-consistent.
        let coerce = |attr: &Attribute, value: Value| match (attr.value_type(), &value) {
            (ValueType::Float, v) if v.value_type() != ValueType::Float => {
                Value::Float(v.to_f64().unwrap_or(0.0))
            }
            (ValueType::Str, v) if v.value_type() != ValueType::Str => Value::str(v.to_string()),
            _ => value,
        };

        let mut out = Vec::with_capacity(keys.len() + has_overflow as usize);
        for key in keys {
            let entry = &self.db[key];
            let mut rec = FlatRecord::new();
            for (slot, attr) in key.iter().zip(&key_attrs) {
                if let (Some(value), Some(attr)) = (slot, attr) {
                    rec.push(attr.id(), coerce(attr, value.clone()));
                }
            }
            for (i, red) in entry.reducers.iter().enumerate() {
                if let (Some(value), Some(attr)) = (red.finish(denominators[i]), &result_attrs[i])
                {
                    rec.push(attr.id(), coerce(attr, value));
                }
            }
            out.push(rec);
        }

        // The overflow bucket flushes last: one row, keyed by the
        // sentinel in every key column, carrying the combined reductions
        // of every group that did not fit the capacity bound.
        if let Some(entry) = &self.overflow {
            let mut rec = FlatRecord::new();
            for attr in key_attrs.iter().flatten() {
                rec.push(attr.id(), Value::str(OVERFLOW_KEY));
            }
            for (i, red) in entry.reducers.iter().enumerate() {
                if let (Some(value), Some(attr)) = (red.finish(denominators[i]), &result_attrs[i])
                {
                    rec.push(attr.id(), coerce(attr, value));
                }
            }
            out.push(rec);
        }

        // Self-instrumentation (flush-time, not per-record, so the
        // streaming update path stays atomics-free): everything below is
        // a function of the input records alone, so the `--stats` block
        // stays byte-identical for any worker-thread count.
        let m = caliper_data::metrics::global();
        m.counter("query.aggregator.records")
            .add(self.records_processed);
        m.counter("query.aggregator.groups_flushed").add(out.len() as u64);
        m.gauge("query.aggregator.groups_live")
            .set_max(self.db.len() as u64);
        m.counter("query.aggregator.overflow_records")
            .add(self.overflow_records());
        m.counter("query.aggregator.overflow_folds")
            .add(u64::from(self.overflow.is_some()));
        out
    }

    /// Per-op denominators for `percent_total`: the sum of raw sums over
    /// all entries (including the overflow bucket, so the reported
    /// percentages still total 100).
    fn percent_denominators(&self) -> Vec<f64> {
        let mut denominators = vec![0.0; self.spec.ops.len()];
        for (i, op) in self.spec.ops.iter().enumerate() {
            if op.kind == OpKind::PercentTotal {
                denominators[i] = self
                    .db
                    .values()
                    .chain(self.overflow.iter())
                    .map(|e| e.reducers[i].raw_sum())
                    .sum::<f64>();
            }
        }
        denominators
    }
}

impl std::fmt::Debug for Aggregator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Aggregator({} entries, {} records processed)",
            self.db.len(),
            self.records_processed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use caliper_data::RecordBuilder;

    fn store_with_listing1() -> (Arc<AttributeStore>, Vec<FlatRecord>) {
        // Reproduce the record stream of Listing 1 / §III-B: 4 loop
        // iterations, foo called twice (10+30=40 time units over 3
        // records in the paper's table: foo entries sum to 40 with
        // count 3... we mirror the table: per iteration, foo count=3
        // sum=40? The table shows: (none) count=1 sum=10, foo count=3
        // sum=40, bar... Actually we just build a plausible stream:
        // foo(1), foo(2), bar(1) per iteration plus one record without
        // function.
        let store = Arc::new(AttributeStore::new());
        let mut records = Vec::new();
        for iteration in 0..4i64 {
            records.push(
                RecordBuilder::new(&store)
                    .with("loop.iteration", iteration)
                    .with("time", 10i64)
                    .build(),
            );
            for (func, time) in [("foo", 15i64), ("foo", 25), ("bar", 20)] {
                records.push(
                    RecordBuilder::new(&store)
                        .with("function", func)
                        .with("loop.iteration", iteration)
                        .with("time", time)
                        .build(),
                );
            }
        }
        (store, records)
    }

    fn run(query: &str, store: Arc<AttributeStore>, records: &[FlatRecord]) -> (Arc<AttributeStore>, Vec<FlatRecord>) {
        let spec = parse_query(query).unwrap();
        let mut agg = Aggregator::new(AggregationSpec::from_query(&spec), store);
        for rec in records {
            agg.add(rec);
        }
        let out_store = Arc::new(AttributeStore::new());
        let out = agg.flush(&out_store);
        (out_store, out)
    }

    #[test]
    fn listing1_time_series_profile() {
        let (store, records) = store_with_listing1();
        let (out_store, out) = run(
            "AGGREGATE count, sum(time) GROUP BY function, loop.iteration",
            store,
            &records,
        );
        // 4 iterations x (foo, bar, none) = 12 entries
        assert_eq!(out.len(), 12);
        let func = out_store.find("function").unwrap();
        let count = out_store.find("count").unwrap();
        let sum = out_store.find("sum#time").unwrap();
        let foo_rows: Vec<_> = out
            .iter()
            .filter(|r| r.get(func.id()) == Some(&Value::str("foo")))
            .collect();
        assert_eq!(foo_rows.len(), 4);
        for row in foo_rows {
            assert_eq!(row.get(count.id()), Some(&Value::UInt(2)));
            assert_eq!(row.get(sum.id()), Some(&Value::Int(40)));
        }
    }

    #[test]
    fn removing_key_attribute_collapses_entries() {
        let (store, records) = store_with_listing1();
        let (out_store, out) = run("AGGREGATE count, sum(time) GROUP BY function", store, &records);
        // foo, bar, none
        assert_eq!(out.len(), 3);
        let func = out_store.find("function").unwrap();
        let sum = out_store.find("sum#time").unwrap();
        let foo = out
            .iter()
            .find(|r| r.get(func.id()) == Some(&Value::str("foo")))
            .unwrap();
        assert_eq!(foo.get(sum.id()), Some(&Value::Int(160)));
        // The entry with no function key has no function attribute.
        assert!(out.iter().any(|r| !r.contains(func.id())));
    }

    #[test]
    fn merge_equals_single_pass() {
        let (store, records) = store_with_listing1();
        let spec = parse_query("AGGREGATE count, sum(time), min(time), max(time), avg(time) GROUP BY function").unwrap();
        let aspec = AggregationSpec::from_query(&spec);

        let mut single = Aggregator::new(aspec.clone(), Arc::clone(&store));
        for r in &records {
            single.add(r);
        }

        let mut left = Aggregator::new(aspec.clone(), Arc::clone(&store));
        let mut right = Aggregator::new(aspec, Arc::clone(&store));
        for (i, r) in records.iter().enumerate() {
            if i % 2 == 0 {
                left.add(r);
            } else {
                right.add(r);
            }
        }
        left.merge(right);

        let s1 = Arc::new(AttributeStore::new());
        let s2 = Arc::new(AttributeStore::new());
        let out1: Vec<_> = single.flush(&s1).iter().map(|r| r.describe(&s1)).collect();
        let out2: Vec<_> = left.flush(&s2).iter().map(|r| r.describe(&s2)).collect();
        assert_eq!(out1, out2);
    }

    #[test]
    fn aggregation_over_preaggregated_counts() {
        // §VI-B: offline sum(aggregate.count) over online count results.
        let store = Arc::new(AttributeStore::new());
        let records = vec![
            RecordBuilder::new(&store)
                .with("kernel", "calc-dt")
                .with("aggregate.count", 100u64)
                .build(),
            RecordBuilder::new(&store)
                .with("kernel", "calc-dt")
                .with("aggregate.count", 50u64)
                .build(),
            RecordBuilder::new(&store)
                .with("kernel", "pdv")
                .with("aggregate.count", 7u64)
                .build(),
        ];
        let (out_store, out) = run(
            "AGGREGATE sum(aggregate.count) GROUP BY kernel",
            store,
            &records,
        );
        assert_eq!(out.len(), 2);
        let sum = out_store.find("sum#aggregate.count").unwrap();
        let kernel = out_store.find("kernel").unwrap();
        let calc = out
            .iter()
            .find(|r| r.get(kernel.id()) == Some(&Value::str("calc-dt")))
            .unwrap();
        assert_eq!(calc.get(sum.id()), Some(&Value::UInt(150)));
    }

    #[test]
    fn count_label_override() {
        let store = Arc::new(AttributeStore::new());
        let records = vec![RecordBuilder::new(&store).with("kernel", "a").build()];
        let spec = parse_query("AGGREGATE count GROUP BY kernel").unwrap();
        let aspec = AggregationSpec::from_query(&spec).with_count_label("aggregate.count");
        let mut agg = Aggregator::new(aspec, store);
        for r in &records {
            agg.add(r);
        }
        let out_store = AttributeStore::new();
        let out = agg.flush(&out_store);
        assert!(out_store.find("aggregate.count").is_some());
        assert!(out_store.find("count").is_none());
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn nested_key_attributes_group_by_path() {
        let store = Arc::new(AttributeStore::new());
        let func = store.create_simple("function", ValueType::Str);
        let mut r1 = FlatRecord::new();
        r1.push(func.id(), Value::str("main"));
        r1.push(func.id(), Value::str("foo"));
        let mut r2 = FlatRecord::new();
        r2.push(func.id(), Value::str("main"));
        let spec = parse_query("AGGREGATE count GROUP BY function").unwrap();
        let mut agg = Aggregator::new(AggregationSpec::from_query(&spec), store);
        agg.add(&r1);
        agg.add(&r1);
        agg.add(&r2);
        let out_store = AttributeStore::new();
        let out = agg.flush(&out_store);
        assert_eq!(out.len(), 2);
        let f = out_store.find("function").unwrap();
        let c = out_store.find("count").unwrap();
        let main_foo = out
            .iter()
            .find(|r| r.get(f.id()) == Some(&Value::str("main/foo")))
            .unwrap();
        assert_eq!(main_foo.get(c.id()), Some(&Value::UInt(2)));
    }

    #[test]
    fn flush_is_sorted_and_deterministic() {
        let store = Arc::new(AttributeStore::new());
        let mut records = Vec::new();
        for i in [5i64, 3, 9, 1, 3, 5] {
            records.push(RecordBuilder::new(&store).with("i", i).build());
        }
        let (out_store, out) = run("AGGREGATE count GROUP BY i", store, &records);
        let i_attr = out_store.find("i").unwrap();
        let keys: Vec<i64> = out
            .iter()
            .map(|r| r.get(i_attr.id()).unwrap().to_i64().unwrap())
            .collect();
        assert_eq!(keys, vec![1, 3, 5, 9]);
    }

    #[test]
    fn attributes_resolving_late_are_picked_up() {
        // On-line scenario: the key attribute is created after the
        // aggregator starts.
        let store = Arc::new(AttributeStore::new());
        let spec = parse_query("AGGREGATE count GROUP BY late.attr").unwrap();
        let mut agg = Aggregator::new(AggregationSpec::from_query(&spec), Arc::clone(&store));
        agg.add(&FlatRecord::new()); // before the attribute exists
        let rec = RecordBuilder::new(&store).with("late.attr", "x").build();
        agg.add(&rec);
        let out_store = AttributeStore::new();
        let out = agg.flush(&out_store);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn group_by_only_dedups_keys() {
        let store = Arc::new(AttributeStore::new());
        let records = vec![
            RecordBuilder::new(&store).with("k", "a").build(),
            RecordBuilder::new(&store).with("k", "b").build(),
            RecordBuilder::new(&store).with("k", "a").build(),
        ];
        let spec = AggregationSpec::new(Vec::new(), vec!["k".into()]);
        let mut agg = Aggregator::new(spec, store);
        for r in &records {
            agg.add(r);
        }
        let out_store = AttributeStore::new();
        let out = agg.flush(&out_store);
        assert_eq!(out.len(), 2);
        // No ops -> no result attributes beyond the key.
        assert_eq!(out_store.len(), 1);
    }

    #[test]
    fn empty_aggregator_flushes_empty() {
        let store = Arc::new(AttributeStore::new());
        let spec = parse_query("AGGREGATE count, sum(x) GROUP BY k").unwrap();
        let agg = Aggregator::new(AggregationSpec::from_query(&spec), store);
        let out_store = AttributeStore::new();
        assert!(agg.flush(&out_store).is_empty());
        assert!(agg.is_empty());
        assert_eq!(agg.records_processed(), 0);
    }

    #[test]
    fn mixed_numeric_groups_widen_to_float() {
        // Group "a" sums to an Int, group "b" (via an untyped record
        // carrying a float) to a Float: the shared result attribute
        // widens to Float and both groups coerce consistently.
        let store = Arc::new(AttributeStore::new());
        let x = store.create_simple("x", ValueType::Float);
        let k = store.create_simple("k", ValueType::Str);
        let mut int_rec = FlatRecord::new();
        int_rec.push(k.id(), Value::str("a"));
        int_rec.push(x.id(), Value::Int(2));
        let mut float_rec = FlatRecord::new();
        float_rec.push(k.id(), Value::str("b"));
        float_rec.push(x.id(), Value::Float(1.5));

        let spec = parse_query("AGGREGATE sum(x) GROUP BY k").unwrap();
        let mut agg = Aggregator::new(AggregationSpec::from_query(&spec), store);
        agg.add(&int_rec);
        agg.add(&float_rec);
        let out_store = AttributeStore::new();
        let out = agg.flush(&out_store);
        let sum = out_store.find("sum#x").unwrap();
        assert_eq!(sum.value_type(), ValueType::Float);
        assert_eq!(out.len(), 2);
        // The Int group's result is coerced to the widened type.
        for rec in &out {
            assert_eq!(
                rec.get(sum.id()).unwrap().value_type(),
                ValueType::Float
            );
        }
    }

    #[test]
    fn duplicate_target_occurrences_all_count() {
        // A record carrying the target attribute twice contributes both
        // occurrences to sum (nested measurement attributes).
        let store = Arc::new(AttributeStore::new());
        let x = store.create_simple("x", ValueType::Int);
        let mut rec = FlatRecord::new();
        rec.push(x.id(), Value::Int(3));
        rec.push(x.id(), Value::Int(4));
        let spec = parse_query("AGGREGATE count, sum(x) GROUP BY nothing").unwrap();
        let mut agg = Aggregator::new(AggregationSpec::from_query(&spec), store);
        agg.add(&rec);
        let out_store = AttributeStore::new();
        let out = agg.flush(&out_store);
        assert_eq!(out.len(), 1);
        let sum = out_store.find("sum#x").unwrap();
        let count = out_store.find("count").unwrap();
        assert_eq!(out[0].get(sum.id()), Some(&Value::Int(7)));
        // but count counts records, not occurrences
        assert_eq!(out[0].get(count.id()), Some(&Value::UInt(1)));
    }

    #[test]
    fn max_groups_caps_db_and_routes_overflow() {
        let store = Arc::new(AttributeStore::new());
        let mut records = Vec::new();
        for i in 0..10i64 {
            // keys k0..k9 in ascending order; 2 records each
            for _ in 0..2 {
                records.push(
                    RecordBuilder::new(&store)
                        .with("k", format!("k{i}").as_str())
                        .with("x", i)
                        .build(),
                );
            }
        }
        let spec = parse_query("AGGREGATE count, sum(x) GROUP BY k").unwrap();
        let mut agg = Aggregator::new(AggregationSpec::from_query(&spec), store);
        agg.set_max_groups(Some(4));
        for r in &records {
            agg.add(r);
            assert!(agg.len() <= 4, "db exceeded cap");
        }
        assert!(agg.has_overflow());
        // 6 evicted groups x 2 records
        assert_eq!(agg.overflow_records(), 12);

        let out_store = AttributeStore::new();
        let out = agg.flush(&out_store);
        assert_eq!(out.len(), 5); // 4 groups + overflow row, last
        let k = out_store.find("k").unwrap();
        let count = out_store.find("count").unwrap();
        let sum = out_store.find("sum#x").unwrap();
        let last = out.last().unwrap();
        assert_eq!(last.get(k.id()), Some(&Value::str(OVERFLOW_KEY)));
        assert_eq!(last.get(count.id()), Some(&Value::UInt(12)));
        // evicted groups k4..k9: sum = 2*(4+5+..+9) = 78
        assert_eq!(last.get(sum.id()), Some(&Value::Int(78)));
        // admitted groups keep exact results
        let k0 = out
            .iter()
            .find(|r| r.get(k.id()) == Some(&Value::str("k0")))
            .unwrap();
        assert_eq!(k0.get(count.id()), Some(&Value::UInt(2)));
    }

    #[test]
    fn capped_merge_is_order_deterministic() {
        // Merging the same set of partials must admit the same keys and
        // produce identical flushed output no matter how records were
        // partitioned, as long as the merge sequence is the same.
        let store = Arc::new(AttributeStore::new());
        let mut records = Vec::new();
        for i in [7i64, 2, 9, 4, 1, 8, 3, 6, 0, 5, 7, 2, 9, 4] {
            records.push(RecordBuilder::new(&store).with("k", i).with("x", 1i64).build());
        }
        let spec = parse_query("AGGREGATE count, sum(x) GROUP BY k").unwrap();
        let aspec = AggregationSpec::from_query(&spec);

        let flush_of = |partition: usize| {
            let mut parts: Vec<Aggregator> = (0..partition)
                .map(|_| {
                    let mut a = Aggregator::new(aspec.clone(), Arc::clone(&store));
                    a.set_max_groups(Some(3));
                    a
                })
                .collect();
            for (i, r) in records.iter().enumerate() {
                parts[i % partition].add(r);
            }
            let mut root = parts.remove(0);
            for p in parts {
                root.merge(p);
            }
            assert!(root.len() <= 3);
            let out_store = AttributeStore::new();
            let out = root.flush(&out_store);
            let count = out_store.find("count").unwrap();
            let total: u64 = out
                .iter()
                .map(|r| r.get(count.id()).unwrap().to_u64().unwrap())
                .sum();
            let lines: Vec<String> = out.iter().map(|r| r.describe(&out_store)).collect();
            (lines, total)
        };
        // Different partition counts change arrival order within shards;
        // totals must be conserved regardless.
        for parts in [1, 2, 3] {
            let (out, total) = flush_of(parts);
            assert_eq!(out.len(), 4, "{out:?}");
            assert_eq!(total, records.len() as u64, "{out:?}");
        }
        // Same partitioning twice → byte-identical output.
        assert_eq!(flush_of(2), flush_of(2));
    }

    #[test]
    fn overflow_forces_string_key_columns() {
        let store = Arc::new(AttributeStore::new());
        let mut records = Vec::new();
        for i in 0..5i64 {
            records.push(RecordBuilder::new(&store).with("i", i).build());
        }
        let spec = parse_query("AGGREGATE count GROUP BY i").unwrap();
        let mut agg = Aggregator::new(AggregationSpec::from_query(&spec), store);
        agg.set_max_groups(Some(2));
        for r in &records {
            agg.add(r);
        }
        let out_store = AttributeStore::new();
        let out = agg.flush(&out_store);
        let i_attr = out_store.find("i").unwrap();
        assert_eq!(i_attr.value_type(), ValueType::Str);
        for rec in &out {
            assert_eq!(
                rec.get(i_attr.id()).unwrap().value_type(),
                ValueType::Str
            );
        }
        assert_eq!(
            out.last().unwrap().get(i_attr.id()),
            Some(&Value::str(OVERFLOW_KEY))
        );
    }

    #[test]
    fn percent_total_with_overflow_still_sums_to_100() {
        let store = Arc::new(AttributeStore::new());
        let mut records = Vec::new();
        for (k, t) in [("a", 10.0), ("b", 30.0), ("c", 40.0), ("d", 20.0)] {
            records.push(
                RecordBuilder::new(&store)
                    .with("kernel", k)
                    .with("time", t)
                    .build(),
            );
        }
        let spec = parse_query("AGGREGATE percent_total(time) GROUP BY kernel").unwrap();
        let mut agg = Aggregator::new(AggregationSpec::from_query(&spec), store);
        agg.set_max_groups(Some(2));
        for r in &records {
            agg.add(r);
        }
        let out_store = AttributeStore::new();
        let out = agg.flush(&out_store);
        assert_eq!(out.len(), 3);
        let p = out_store.find("percent_total#time").unwrap();
        let total: f64 = out
            .iter()
            .map(|r| r.get(p.id()).unwrap().to_f64().unwrap())
            .sum();
        assert!((total - 100.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn uncapped_behavior_is_unchanged() {
        let (store, records) = store_with_listing1();
        let spec = parse_query("AGGREGATE count, sum(time) GROUP BY function").unwrap();
        let mut agg = Aggregator::new(AggregationSpec::from_query(&spec), store);
        assert_eq!(agg.max_groups(), None);
        for r in &records {
            agg.add(r);
        }
        assert!(!agg.has_overflow());
        assert_eq!(agg.overflow_records(), 0);
    }

    #[test]
    fn percent_total_sums_to_100() {
        let store = Arc::new(AttributeStore::new());
        let mut records = Vec::new();
        for (k, t) in [("a", 10.0), ("b", 30.0), ("c", 60.0)] {
            records.push(
                RecordBuilder::new(&store)
                    .with("kernel", k)
                    .with("time", t)
                    .build(),
            );
        }
        let (out_store, out) = run(
            "AGGREGATE percent_total(time) GROUP BY kernel",
            store,
            &records,
        );
        let p = out_store.find("percent_total#time").unwrap();
        let total: f64 = out
            .iter()
            .map(|r| r.get(p.id()).unwrap().to_f64().unwrap())
            .sum();
        assert!((total - 100.0).abs() < 1e-9);
    }
}
