//! Thread-parallel sharded analytical aggregation.
//!
//! This is the shared-memory sibling of the cross-process tree reduction
//! (paper §IV-C): where `mpi-caliquery` distributes input files over
//! simulated MPI ranks and reduces partial aggregations up a binomial
//! tree, this module distributes them over a pool of worker threads in
//! one process and folds the partials into a root [`Pipeline`]. Both
//! lean on the same algebraic property — partial aggregation databases
//! are mergeable ([`Aggregator::merge`](crate::Aggregator::merge)) — so
//! the two scaling strategies compose: each rank of a distributed query
//! could itself shard over local cores.
//!
//! # Design: shard and merge
//!
//! * **Work units.** The input decomposes into units *before* any
//!   scheduling happens: every file is one unit, and files whose record
//!   count exceeds [`ParallelOptions::batch_records`] split into
//!   contiguous [`RecordBatch`]es (`caliper_format::reader`). A unit is
//!   identified by `(file index, batch index)`. Crucially, the
//!   decomposition is a function of the inputs alone — never of the
//!   thread count or of runtime timing.
//! * **Worker pool.** N workers pull units from a shared MPMC channel
//!   (the same `crossbeam` channel substrate `mpisim` uses for rank
//!   inboxes). A worker that decodes a large file pushes the file's
//!   tail batches back onto the queue, so other workers help aggregate
//!   it; the batches share the decoded dataset behind an `Arc`, so this
//!   costs no copying.
//! * **Private shards.** Each unit is aggregated into its own private
//!   [`Pipeline`] (LET → WHERE → aggregate), so the hot
//!   record-processing path takes **zero cross-thread locks**: a worker
//!   touches only its local aggregation database, exactly like the
//!   runtime's per-thread on-line databases (§IV-B).
//! * **Deterministic merge.** Finished partials are sent to the calling
//!   thread, which sorts them by unit id and merges them in ascending
//!   order into the root pipeline, then runs the ordinary
//!   [`finish`](Pipeline::finish) (ORDER BY → SELECT → FORMAT).
//!
//! # Equivalence to sequential aggregation
//!
//! The result is *identical for every thread count*, including 1:
//!
//! 1. the unit decomposition depends only on the file list and
//!    `batch_records`;
//! 2. each unit's partial is computed from its records in stream order,
//!    regardless of which worker runs it;
//! 3. partials are merged in unit order, so the root performs the same
//!    sequence of [`Aggregator::merge`](crate::Aggregator::merge)
//!    operations every time.
//!
//! Scheduling can only change *who* computes a partial and *when* —
//! never the partial itself nor the merge order. This is why the engine
//! merges ordered partials at the root instead of letting each worker
//! pre-merge the units it happens to process (the ISSUE's "merge shards
//! pairwise"): for integer reductions pre-merging would be fine
//! (count/sum/min/max are associative and commutative), but
//! floating-point addition is not associative, so any
//! scheduling-dependent merge order could flip low-order bits between
//! runs. Ordered merging buys bit-for-bit reproducibility at the cost
//! of holding one small aggregation database per unit until the merge —
//! databases are key-count sized (not record-count sized), so this is
//! cheap.
//!
//! Against the *serial* path (`cali-cli`'s per-file pipeline fold), the
//! output is byte-identical whenever no file exceeds `batch_records`
//! (the default is large enough that this is the common case): both
//! perform the same per-file aggregations and the same in-order merges.
//! When a large file does split, the engine still produces the same
//! bytes for every thread count — but float sums may differ from the
//! serial path in the last unit of precision, because the file's
//! records are folded via per-batch subtotals.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use caliper_format::reader::{self, RecordBatch};
use caliper_format::{CaliError, Pushdown, ReadPolicy, ReadReport};
use crossbeam::channel::{unbounded, Sender};

use crate::parser::{parse_query, ParseError};
use crate::pushdown::build_pushdown;
use crate::query::{Pipeline, QueryResult};
use crate::QuerySpec;

/// Default maximum records per work unit. Files below this size are one
/// unit each (making the engine byte-identical to the serial per-file
/// fold); larger files split so a single huge input still parallelizes.
pub const DEFAULT_BATCH_RECORDS: usize = 64 * 1024;

/// Tuning knobs for [`parallel_query_files`].
#[derive(Debug, Clone)]
pub struct ParallelOptions {
    /// Worker thread count; `0` means "use available parallelism".
    pub threads: usize,
    /// Maximum records per work unit (see [`DEFAULT_BATCH_RECORDS`]).
    pub batch_records: usize,
    /// How workers treat malformed input files (strict by default; see
    /// [`ReadPolicy::Lenient`] for skip-and-report ingest).
    pub read_policy: ReadPolicy,
    /// Group capacity per aggregation shard and for the merged root
    /// database (`None` = unbounded). See
    /// [`Aggregator::set_max_groups`](crate::Aggregator::set_max_groups).
    pub max_groups: Option<usize>,
    /// WHERE-predicate pushdown handed to every worker's reader so
    /// block-structured inputs (CALB v2) can skip irrelevant blocks.
    /// `None` auto-builds a schema-free pushdown from the query (see
    /// [`build_pushdown`]); pass an explicit (possibly schema-aware)
    /// one to share the exact same instance with a serial path.
    pub pushdown: Option<Arc<Pushdown>>,
    /// Graceful degradation: when a file's shard fails terminally (its
    /// read exhausted the transient-error retries, or the `shard.merge`
    /// failpoint fired), drop that file's contribution and record a
    /// [`ShardFailure`] instead of aborting the whole query. Failures
    /// are decided per *file index*, so degraded output is byte-identical
    /// across thread counts.
    pub degrade: bool,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            threads: 0,
            batch_records: DEFAULT_BATCH_RECORDS,
            read_policy: ReadPolicy::Strict,
            max_groups: None,
            pushdown: None,
            degrade: false,
        }
    }
}

impl ParallelOptions {
    /// Options for a fixed worker count.
    pub fn with_threads(threads: usize) -> Self {
        ParallelOptions {
            threads,
            ..Default::default()
        }
    }

    /// Builder-style read-policy override.
    pub fn with_read_policy(mut self, policy: ReadPolicy) -> Self {
        self.read_policy = policy;
        self
    }

    /// Builder-style group-capacity override.
    pub fn with_max_groups(mut self, cap: Option<usize>) -> Self {
        self.max_groups = cap;
        self
    }

    /// Builder-style pushdown override (see
    /// [`ParallelOptions::pushdown`]).
    pub fn with_pushdown(mut self, pushdown: Option<Arc<Pushdown>>) -> Self {
        self.pushdown = pushdown;
        self
    }

    /// Builder-style graceful-degradation override (see
    /// [`ParallelOptions::degrade`]).
    pub fn with_degrade(mut self, degrade: bool) -> Self {
        self.degrade = degrade;
        self
    }

    /// The effective worker count: `threads`, or the machine's available
    /// parallelism when `threads` is 0.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Errors from the parallel query engine.
#[derive(Debug)]
pub enum ParallelQueryError {
    /// The query text does not parse.
    Parse(ParseError),
    /// The query has no AGGREGATE clause: a pass-through query needs
    /// every record in one place and gains nothing from sharding — run
    /// it on the serial path instead.
    NotAnAggregation,
    /// An input file failed to read or parse; the error names the file
    /// ([`CaliError::File`]).
    Read(CaliError),
}

impl std::fmt::Display for ParallelQueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParallelQueryError::Parse(e) => write!(f, "query error: {e}"),
            ParallelQueryError::NotAnAggregation => {
                write!(f, "parallel execution requires an aggregation query")
            }
            ParallelQueryError::Read(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ParallelQueryError {}

impl From<ParseError> for ParallelQueryError {
    fn from(e: ParseError) -> Self {
        ParallelQueryError::Parse(e)
    }
}

/// One worker's contribution to a run, for the per-worker timing
/// breakdown (the shared-memory analogue of `ParallelTimings` in
/// `cali-cli`).
#[derive(Debug, Clone, Default)]
pub struct WorkerTimings {
    /// Seconds spent reading and decoding input files.
    pub read_s: f64,
    /// Seconds spent aggregating records into the worker's shards.
    pub process_s: f64,
    /// Files this worker read and decoded.
    pub files: usize,
    /// Work units (whole files or record batches) this worker aggregated.
    pub units: usize,
    /// Snapshot records this worker aggregated.
    pub records: u64,
}

/// One file's shard dropped from a degraded run
/// ([`ParallelOptions::degrade`]).
#[derive(Debug, Clone)]
pub struct ShardFailure {
    /// Input-file index of the dropped shard.
    pub file: usize,
    /// Path of the dropped file.
    pub path: PathBuf,
    /// Why the shard failed (retry-exhausted read error or injected
    /// merge fault), as reported to the user.
    pub error: String,
}

/// Timing breakdown of one parallel query run, plus the per-file read
/// reports (what lenient ingest skipped).
#[derive(Debug, Clone, Default)]
pub struct ShardTimings {
    /// Per-worker read/process breakdown, indexed by worker id.
    pub workers: Vec<WorkerTimings>,
    /// Seconds the root spent merging the ordered partials.
    pub merge_s: f64,
    /// Seconds the root spent in ORDER BY / SELECT / FORMAT.
    pub finish_s: f64,
    /// Per-file [`ReadReport`]s in input-file order (one per file that
    /// was read; under [`ReadPolicy::Strict`] these are all clean).
    pub reports: Vec<ReadReport>,
    /// Shards dropped under [`ParallelOptions::degrade`], in ascending
    /// file order (empty when the run was complete). A non-empty list
    /// means the result is partial — `cali-query` reports each failure
    /// on stderr and exits 2.
    pub failures: Vec<ShardFailure>,
}

impl ShardTimings {
    /// The slowest worker's busy time (read + process) — the critical
    /// path of the parallel phase.
    pub fn worker_max_s(&self) -> f64 {
        self.workers
            .iter()
            .map(|w| w.read_s + w.process_s)
            .fold(0.0, f64::max)
    }

    /// Critical-path total: slowest worker, then merge, then finish.
    pub fn total_s(&self) -> f64 {
        self.worker_max_s() + self.merge_s + self.finish_s
    }
}

/// A unit of work on the shared queue.
enum Unit {
    /// Read and decode a file, then aggregate its first batch (pushing
    /// any further batches back onto the queue).
    File { file: usize, path: PathBuf },
    /// Aggregate a batch of an already-decoded file.
    Batch {
        file: usize,
        batch: usize,
        data: RecordBatch,
    },
    /// Poison pill: all units are done, exit.
    Stop,
}

/// A finished partial: the unit id and its pipeline (or the read error
/// for the unit's file).
type Partial = (usize, usize, Result<Pipeline, CaliError>);

/// Runs an aggregation `query` over `paths` with a pool of worker
/// threads, returning the result and the per-worker timing breakdown.
///
/// The output is deterministic and independent of the worker count —
/// see the [module docs](self) for the argument. Pass-through queries
/// are rejected with [`ParallelQueryError::NotAnAggregation`]; on the
/// serial path they need all records materialized anyway, so there is
/// nothing to shard.
pub fn parallel_query_files<P: AsRef<Path>>(
    query: &str,
    paths: &[P],
    options: &ParallelOptions,
) -> Result<(QueryResult, ShardTimings), ParallelQueryError> {
    let spec = parse_query(query)?;
    if !spec.is_aggregation() {
        return Err(ParallelQueryError::NotAnAggregation);
    }
    let threads = options.effective_threads();
    let batch_records = options.batch_records.max(1);
    let read_policy = options.read_policy;
    let max_groups = options.max_groups;
    // One pushdown instance for every worker: block skipping is a pure
    // function of (input bytes, pushdown), so sharing it keeps reads —
    // and the `blocks_skipped` accounting — thread-count independent.
    let pushdown: Option<Arc<Pushdown>> = options.pushdown.clone().or_else(|| {
        let pd = build_pushdown(&spec, None);
        (!pd.is_empty()).then(|| Arc::new(pd))
    });
    let spec = Arc::new(spec);

    let (work_tx, work_rx) = unbounded::<Unit>();
    let (partial_tx, partial_rx) = unbounded::<Partial>();
    let (timing_tx, timing_rx) = unbounded::<(usize, WorkerTimings)>();
    let (report_tx, report_rx) = unbounded::<(usize, ReadReport)>();

    // Outstanding-unit count: seeded with one unit per file; a worker
    // that splits a file adds the extra batches *before* finishing the
    // file unit, so the count can only reach zero when every unit of
    // every file is done. Whoever takes it to zero posts the poison
    // pills that terminate the pool.
    let outstanding = Arc::new(AtomicUsize::new(paths.len()));
    for (file, path) in paths.iter().enumerate() {
        let seeded = work_tx.send(Unit::File {
            file,
            path: path.as_ref().to_path_buf(),
        });
        assert!(seeded.is_ok(), "work queue cannot disconnect while seeding");
    }
    if paths.is_empty() {
        for _ in 0..threads {
            let _ = work_tx.send(Unit::Stop);
        }
    }

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let work_rx = work_rx.clone();
            let work_tx = work_tx.clone();
            let partial_tx = partial_tx.clone();
            let timing_tx = timing_tx.clone();
            let report_tx = report_tx.clone();
            let spec = Arc::clone(&spec);
            let pushdown = pushdown.clone();
            let outstanding = Arc::clone(&outstanding);
            scope.spawn(move || {
                let mut timings = WorkerTimings::default();
                while let Ok(unit) = work_rx.recv() {
                    match unit {
                        Unit::Stop => break,
                        Unit::File { file, path } => {
                            let t0 = Instant::now();
                            let decoded = reader::read_path_reported_filtered(
                                &path,
                                read_policy,
                                pushdown.as_deref(),
                            );
                            timings.read_s += t0.elapsed().as_secs_f64();
                            timings.files += 1;
                            let outcome = match decoded {
                                Err(e) => (file, 0, Err(e)),
                                Ok((ds, report)) => {
                                    let _ = report_tx.send((file, report));
                                    let batches =
                                        reader::record_batches(Arc::new(ds), batch_records);
                                    // Enqueue the tail batches before
                                    // finishing this unit, so the
                                    // outstanding count never dips to
                                    // zero early.
                                    if batches.len() > 1 {
                                        outstanding
                                            .fetch_add(batches.len() - 1, Ordering::SeqCst);
                                        for (batch, data) in
                                            batches.iter().enumerate().skip(1)
                                        {
                                            let _ = work_tx.send(Unit::Batch {
                                                file,
                                                batch,
                                                data: data.clone(),
                                            });
                                        }
                                    }
                                    let shard = aggregate_batch(
                                        &spec,
                                        &batches[0],
                                        max_groups,
                                        &mut timings,
                                    );
                                    (file, 0, Ok(shard))
                                }
                            };
                            if partial_tx.send(outcome).is_err() {
                                break; // root gave up; stop working
                            }
                            finish_unit(&outstanding, &work_tx, threads);
                        }
                        Unit::Batch { file, batch, data } => {
                            let shard = aggregate_batch(&spec, &data, max_groups, &mut timings);
                            if partial_tx.send((file, batch, Ok(shard))).is_err() {
                                break;
                            }
                            finish_unit(&outstanding, &work_tx, threads);
                        }
                    }
                }
                let _ = timing_tx.send((worker, timings));
            });
        }

        // The root thread keeps no senders: once every worker exits, the
        // partial/timing channels disconnect and collection below ends.
        drop(work_tx);
        drop(partial_tx);
        drop(timing_tx);
        drop(report_tx);

        let mut partials: Vec<Partial> = partial_rx.iter().collect();
        let mut timings = ShardTimings {
            workers: vec![WorkerTimings::default(); threads],
            ..Default::default()
        };
        for (worker, t) in timing_rx.iter() {
            timings.workers[worker] = t;
        }
        let mut reports: Vec<(usize, ReadReport)> = report_rx.iter().collect();
        reports.sort_by_key(|(file, _)| *file);
        timings.reports = reports.into_iter().map(|(_, r)| r).collect();

        // Deterministic root fold: ascending unit order. Without
        // degrade, the first error (in unit order) wins; with degrade, a
        // failed file drops *all* of its partials, is recorded as a
        // [`ShardFailure`], and the fold continues. Both the fold order
        // and the failure set depend only on the file list and the fault
        // spec — never on scheduling — so output stays byte-identical
        // across thread counts either way.
        partials.sort_by_key(|(file, batch, _)| (*file, *batch));
        let metrics = caliper_data::metrics::global();
        metrics
            .counter_volatile("query.parallel.units")
            .add(partials.len() as u64);
        metrics
            .gauge_volatile("query.parallel.workers")
            .set_max(threads as u64);
        let merge_timer = metrics.timer("query.parallel.merge");
        let t0 = Instant::now();
        let mut root: Option<Pipeline> = None;
        let mut last_file: Option<usize> = None;
        for (file, _, partial) in partials {
            let first_of_file = last_file != Some(file);
            last_file = Some(file);
            if let Some(failed) = timings.failures.last() {
                if failed.file == file {
                    continue; // a sibling batch of an already-failed file
                }
            }
            let path = paths[file].as_ref();
            let fault = if first_of_file {
                shard_merge_fault(file, path)
            } else {
                None
            };
            let failure = match (fault, partial) {
                (Some(e), _) | (None, Err(e)) => Some(e),
                (None, Ok(shard)) => {
                    match &mut root {
                        Some(root) => {
                            let _scope = merge_timer.start();
                            root.merge(shard);
                        }
                        None => root = Some(shard),
                    }
                    None
                }
            };
            if let Some(e) = failure {
                if !options.degrade {
                    return Err(ParallelQueryError::Read(e));
                }
                // Stable (not `.parallel.`-scoped): the serial path
                // bumps the same counter, so degraded `--stats` output
                // matches across `--threads 1/2/4`.
                metrics.counter("query.shards_failed").inc();
                timings.failures.push(ShardFailure {
                    file,
                    path: path.to_path_buf(),
                    error: e.to_string(),
                });
            }
        }
        timings.merge_s = t0.elapsed().as_secs_f64();

        let root = root.unwrap_or_else(|| {
            Pipeline::new(
                QuerySpec::clone(&spec),
                Arc::new(caliper_data::AttributeStore::new()),
            )
            .with_max_groups(max_groups)
        });
        let t0 = Instant::now();
        let result = root.finish();
        timings.finish_s = t0.elapsed().as_secs_f64();
        Ok((result, timings))
    })
}

/// Fire the `shard.merge` failpoint for input file `file`. Keyed on the
/// file index with the path as the filter label, so a spec drops the
/// same files' shards on every run, on every thread count, and on the
/// serial path (`cali-cli` calls this per file before merging its
/// pipeline). Returns the injected error to attribute to the shard.
pub fn shard_merge_fault(file: usize, path: &Path) -> Option<CaliError> {
    let label = path.to_string_lossy();
    caliper_faults::trigger(caliper_faults::sites::SHARD_MERGE, file as u64, &label).map(|_| {
        CaliError::Io(caliper_format::retry::injected_error(
            caliper_faults::sites::SHARD_MERGE,
        ))
        .with_path(path)
    })
}

/// Aggregates one batch into a fresh private pipeline shard.
fn aggregate_batch(
    spec: &Arc<QuerySpec>,
    batch: &RecordBatch,
    max_groups: Option<usize>,
    timings: &mut WorkerTimings,
) -> Pipeline {
    let t0 = Instant::now();
    let mut shard = Pipeline::new(
        QuerySpec::clone(spec),
        Arc::clone(&batch.dataset().store),
    )
    .with_max_groups(max_groups);
    batch.for_each_flat(|record| shard.process(record));
    timings.process_s += t0.elapsed().as_secs_f64();
    timings.units += 1;
    timings.records += batch.len() as u64;
    shard
}

/// Marks one unit finished; the worker that takes the count to zero
/// posts one poison pill per worker to shut the pool down.
fn finish_unit(outstanding: &AtomicUsize, work_tx: &Sender<Unit>, threads: usize) {
    if outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
        for _ in 0..threads {
            let _ = work_tx.send(Unit::Stop);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliper_data::{Properties, SnapshotRecord, Value, ValueType};
    use caliper_format::{cali, Dataset};

    fn write_inputs(dir: &Path, files: usize, records: usize) -> Vec<PathBuf> {
        std::fs::create_dir_all(dir).unwrap();
        (0..files)
            .map(|f| {
                let mut ds = Dataset::new();
                let kernel = ds.attribute("kernel", ValueType::Str, Properties::NESTED);
                let time = ds.attribute(
                    "time",
                    ValueType::Int,
                    Properties::AS_VALUE | Properties::AGGREGATABLE,
                );
                let names = ["alpha", "beta", "gamma"];
                for i in 0..records {
                    let node = ds.tree.get_child(
                        caliper_data::NODE_NONE,
                        kernel.id(),
                        &Value::str(names[(f + i) % names.len()]),
                    );
                    let mut rec = SnapshotRecord::new();
                    rec.push_node(node);
                    rec.push_imm(time.id(), Value::Int((i * (f + 1)) as i64));
                    ds.push(rec);
                }
                let path = dir.join(format!("rank{f}.cali"));
                cali::write_file(&ds, &path).unwrap();
                path
            })
            .collect()
    }

    const QUERY: &str = "AGGREGATE count, sum(time), min(time), max(time) GROUP BY kernel";

    #[test]
    fn thread_counts_agree_bytewise() {
        let dir = std::env::temp_dir().join("caliper-parallel-test-agree");
        let paths = write_inputs(&dir, 5, 40);
        let mut renders = Vec::new();
        for threads in [1, 2, 3, 8] {
            let (result, _) = parallel_query_files(
                QUERY,
                &paths,
                &ParallelOptions::with_threads(threads),
            )
            .unwrap();
            renders.push(result.render());
        }
        assert!(renders.windows(2).all(|w| w[0] == w[1]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_splitting_is_thread_count_independent() {
        let dir = std::env::temp_dir().join("caliper-parallel-test-batch");
        let paths = write_inputs(&dir, 2, 100);
        let opts = |threads| ParallelOptions {
            threads,
            batch_records: 7, // force many batches per file
            ..Default::default()
        };
        let (one, _) = parallel_query_files(QUERY, &paths, &opts(1)).unwrap();
        let (four, _) = parallel_query_files(QUERY, &paths, &opts(4)).unwrap();
        assert_eq!(one.render(), four.render());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn capped_parallel_runs_agree_across_thread_counts() {
        let dir = std::env::temp_dir().join("caliper-parallel-test-capped");
        let paths = write_inputs(&dir, 4, 60);
        let opts = |threads| ParallelOptions {
            threads,
            batch_records: 9,
            max_groups: Some(2), // fewer than the 3 kernels in the workload
            ..Default::default()
        };
        let (reference, _) = parallel_query_files(QUERY, &paths, &opts(1)).unwrap();
        assert!(reference.overflow_records > 0);
        for threads in [2, 3, 8] {
            let (result, _) = parallel_query_files(QUERY, &paths, &opts(threads)).unwrap();
            assert_eq!(result.render(), reference.render(), "threads = {threads}");
            assert_eq!(result.overflow_records, reference.overflow_records);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lenient_parallel_reads_collect_per_file_reports() {
        let dir = std::env::temp_dir().join("caliper-parallel-test-lenient");
        let mut paths = write_inputs(&dir, 3, 20);
        // Append a corrupt line to the middle file.
        let damaged = paths[1].clone();
        let mut text = std::fs::read_to_string(&damaged).unwrap();
        text.push_str("this is not a cali record\n");
        std::fs::write(&damaged, text).unwrap();

        // Strict mode fails and names the file.
        let err =
            parallel_query_files(QUERY, &paths, &ParallelOptions::with_threads(4)).unwrap_err();
        assert!(err.to_string().contains("rank1.cali"), "{err}");

        // Lenient mode succeeds; reports come back in file order.
        let opts = ParallelOptions::with_threads(4).with_read_policy(ReadPolicy::lenient());
        let (result, timings) = parallel_query_files(QUERY, &paths, &opts).unwrap();
        assert!(!result.render().is_empty());
        assert_eq!(timings.reports.len(), 3);
        let skipped: Vec<u64> = timings.reports.iter().map(|r| r.skipped).collect();
        assert_eq!(skipped, [0, 1, 0]);
        assert!(timings.reports[1]
            .path
            .as_deref()
            .is_some_and(|p| p.ends_with("rank1.cali")));

        // Clean-file results are unaffected by the damaged file's policy:
        // strict over the clean subset == lenient over everything, because
        // the corrupt trailing line contributed no records either way.
        paths.remove(1);
        let damaged_only = [damaged];
        let (strict_two, _) = parallel_query_files(
            QUERY,
            &damaged_only,
            &ParallelOptions::with_threads(1).with_read_policy(ReadPolicy::lenient()),
        )
        .unwrap();
        assert!(!strict_two.render().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_errors_name_the_file() {
        let dir = std::env::temp_dir().join("caliper-parallel-test-err");
        let mut paths = write_inputs(&dir, 2, 10);
        paths.push(dir.join("missing.cali"));
        let err =
            parallel_query_files(QUERY, &paths, &ParallelOptions::with_threads(4)).unwrap_err();
        assert!(err.to_string().contains("missing.cali"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pass_through_queries_are_rejected() {
        let err = parallel_query_files(
            "SELECT kernel FORMAT csv",
            &Vec::<PathBuf>::new(),
            &ParallelOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ParallelQueryError::NotAnAggregation));
    }

    #[test]
    fn empty_input_yields_empty_result() {
        let (result, timings) = parallel_query_files(
            QUERY,
            &Vec::<PathBuf>::new(),
            &ParallelOptions::with_threads(2),
        )
        .unwrap();
        assert!(result.records.is_empty());
        assert_eq!(timings.workers.len(), 2);
    }
}
