//! Abstract syntax of the aggregation description language (§III-B).
//!
//! A query is a set of clauses:
//!
//! ```text
//! AGGREGATE count, sum(time.duration)
//! GROUP BY  function, loop.iteration
//! WHERE     not(mpi.function), mpi.rank = 0
//! SELECT    function, sum#time.duration
//! ORDER BY  sum#time.duration desc
//! LET       time.ms = scale(time.duration, 0.001)
//! FORMAT    table
//! ```
//!
//! `AGGREGATE`, `GROUP BY` and `WHERE` are the clauses described in the
//! paper; `SELECT`, `ORDER BY`, `LET` and `FORMAT` are the natural
//! extensions the Caliper query tool grew (and that the paper's related
//! work discussion attributes to Cube's derived-metric language).

use caliper_data::Value;

/// Reduction operator kinds.
///
/// `Count`, `Sum`, `Min`, `Max` are the four operators implemented in the
/// paper (§IV-B); `Avg`, `Histogram` and `PercentTotal` are extensions
/// (the paper's introduction names histograms as a motivating complex
/// reduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Number of input records per key.
    Count,
    /// Sum of an attribute's values.
    Sum,
    /// Minimum of an attribute's values.
    Min,
    /// Maximum of an attribute's values.
    Max,
    /// Arithmetic mean of an attribute's values.
    Avg,
    /// Fixed-width histogram of an attribute's values.
    Histogram,
    /// Share (in %) of this key's sum in the global sum.
    PercentTotal,
    /// Population variance of an attribute's values (Welford).
    Variance,
    /// Population standard deviation of an attribute's values.
    Stddev,
    /// Approximate percentile via a deterministic bounded reservoir:
    /// `percentile(attr, p)` with `p` in (0, 100).
    Percentile,
}

impl OpKind {
    /// The operator name as written in queries.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Count => "count",
            OpKind::Sum => "sum",
            OpKind::Min => "min",
            OpKind::Max => "max",
            OpKind::Avg => "avg",
            OpKind::Histogram => "histogram",
            OpKind::PercentTotal => "percent_total",
            OpKind::Variance => "variance",
            OpKind::Stddev => "stddev",
            OpKind::Percentile => "percentile",
        }
    }

    /// Parse an operator name (case-insensitive).
    pub fn from_name(name: &str) -> Option<OpKind> {
        match name.to_ascii_lowercase().as_str() {
            "count" => Some(OpKind::Count),
            "sum" => Some(OpKind::Sum),
            "min" => Some(OpKind::Min),
            "max" => Some(OpKind::Max),
            "avg" | "mean" => Some(OpKind::Avg),
            "histogram" => Some(OpKind::Histogram),
            "percent_total" => Some(OpKind::PercentTotal),
            "variance" | "var" => Some(OpKind::Variance),
            "stddev" | "sd" => Some(OpKind::Stddev),
            "percentile" => Some(OpKind::Percentile),
            _ => None,
        }
    }

    /// Whether the operator requires a target attribute argument.
    pub fn needs_target(self) -> bool {
        !matches!(self, OpKind::Count)
    }
}

/// One aggregation operation: `op(target, args...) [AS alias]`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggOp {
    /// The reduction operator.
    pub kind: OpKind,
    /// The attribute whose values are aggregated (`None` for `count`).
    pub target: Option<String>,
    /// Extra arguments (e.g. histogram bounds `lo, hi, nbins`).
    pub args: Vec<Value>,
    /// Output label override (`AS alias`).
    pub alias: Option<String>,
}

impl AggOp {
    /// Create an op without extra args or alias.
    pub fn new(kind: OpKind, target: Option<&str>) -> AggOp {
        AggOp {
            kind,
            target: target.map(str::to_string),
            args: Vec::new(),
            alias: None,
        }
    }

    /// The label of the op's result attribute: the alias if given, else
    /// `count` for count and `op#target` otherwise (the `sum#time`
    /// convention from the paper's §III-B result table).
    pub fn result_label(&self, count_label: &str) -> String {
        if let Some(alias) = &self.alias {
            return alias.clone();
        }
        match (&self.kind, &self.target) {
            (OpKind::Count, _) => count_label.to_string(),
            (OpKind::Percentile, Some(target)) => {
                // Include the requested percentile in the label, e.g.
                // `percentile.95#time.duration`.
                let p = self
                    .args
                    .first()
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "50".to_string());
                format!("percentile.{p}#{target}")
            }
            (kind, Some(target)) => format!("{}#{}", kind.name(), target),
            (kind, None) => kind.name().to_string(),
        }
    }
}

/// Comparison operators of WHERE conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluate `lhs op rhs` using the data model's total order (numeric
    /// comparison for numbers, lexical for strings).
    pub fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs.total_cmp(rhs) == Less,
            CmpOp::Le => lhs.total_cmp(rhs) != Greater,
            CmpOp::Gt => lhs.total_cmp(rhs) == Greater,
            CmpOp::Ge => lhs.total_cmp(rhs) != Less,
        }
    }

    /// The operator as written in queries.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// One WHERE condition. Conditions in a clause are AND-combined.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// `WHERE attr` — the record carries the attribute (with a truthy
    /// path value).
    Exists(String),
    /// `WHERE not(attr)` — the record does not carry the attribute.
    NotExists(String),
    /// `WHERE attr <op> literal` — any occurrence satisfies the
    /// comparison (for `!=`: no occurrence equals the literal).
    Cmp {
        /// Attribute label.
        attr: String,
        /// Comparison operator.
        op: CmpOp,
        /// Literal to compare against.
        value: Value,
    },
}

/// Derived-attribute definition: `LET name = func(args...)`.
#[derive(Debug, Clone, PartialEq)]
pub enum LetExpr {
    /// `scale(attr, factor)` — numeric value times a constant.
    Scale(String, f64),
    /// `ratio(a, b)` — quotient of two numeric attributes.
    Ratio(String, String),
    /// `first(a1, a2, ...)` — the first attribute present in the record.
    First(Vec<String>),
    /// `truncate(attr, width)` — floor(value / width) * width, for
    /// binning e.g. iteration numbers or timestamps.
    Truncate(String, f64),
}

/// A `LET` binding.
#[derive(Debug, Clone, PartialEq)]
pub struct LetDef {
    /// The derived attribute's label.
    pub name: String,
    /// The defining expression.
    pub expr: LetExpr,
}

/// Sort direction for ORDER BY.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortDir {
    /// Ascending (default).
    #[default]
    Asc,
    /// Descending.
    Desc,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// Attribute label to sort on.
    pub attr: String,
    /// Direction.
    pub dir: SortDir,
}

/// Output format selector for the FORMAT clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Aligned text table (default).
    #[default]
    Table,
    /// Comma-separated values.
    Csv,
    /// JSON array of objects.
    Json,
    /// `label=value,...` per record.
    Expand,
    /// Re-encode as a `.cali` stream.
    Cali,
    /// Collapsed stacks for flame graphs (`frame;frame value`).
    Flamegraph,
}

impl OutputFormat {
    /// Parse a format name (case-insensitive).
    pub fn from_name(name: &str) -> Option<OutputFormat> {
        match name.to_ascii_lowercase().as_str() {
            "table" => Some(OutputFormat::Table),
            "csv" => Some(OutputFormat::Csv),
            "json" => Some(OutputFormat::Json),
            "expand" => Some(OutputFormat::Expand),
            "cali" => Some(OutputFormat::Cali),
            "flamegraph" | "folded" => Some(OutputFormat::Flamegraph),
            _ => None,
        }
    }

    /// The canonical format name as written in queries.
    pub fn name(self) -> &'static str {
        match self {
            OutputFormat::Table => "table",
            OutputFormat::Csv => "csv",
            OutputFormat::Json => "json",
            OutputFormat::Expand => "expand",
            OutputFormat::Cali => "cali",
            OutputFormat::Flamegraph => "flamegraph",
        }
    }

    /// The option names this formatter understands in
    /// `FORMAT name(opt, ...)`. All current options are value-less
    /// flags; the sema pass rejects anything else (code `E008`).
    pub fn known_options(self) -> &'static [&'static str] {
        match self {
            OutputFormat::Table => &["noheader"],
            OutputFormat::Csv => &["noheader"],
            OutputFormat::Json => &["pretty"],
            OutputFormat::Expand | OutputFormat::Cali | OutputFormat::Flamegraph => &[],
        }
    }
}

/// One formatter option from `FORMAT name(opt[=value], ...)`, e.g.
/// `FORMAT csv(noheader)`. Options are validated against
/// [`OutputFormat::known_options`] by the sema pass and interpreted by
/// the formatter at render time.
#[derive(Debug, Clone, PartialEq)]
pub struct FormatOpt {
    /// Option name as written (matched case-insensitively).
    pub name: String,
    /// Optional `=value` literal.
    pub value: Option<Value>,
}

/// A parsed query: the aggregation scheme plus output control.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuerySpec {
    /// AGGREGATE ops (empty means pass-through, no aggregation).
    pub ops: Vec<AggOp>,
    /// GROUP BY key attribute labels (the *aggregation key*).
    pub key: Vec<String>,
    /// WHERE conditions (AND-combined).
    pub filters: Vec<Filter>,
    /// SELECT column labels (`None` = infer key + op results).
    pub select: Option<Vec<String>>,
    /// LET derived attributes, applied before WHERE and AGGREGATE.
    pub lets: Vec<LetDef>,
    /// ORDER BY keys.
    pub order_by: Vec<SortKey>,
    /// Output format.
    pub format: OutputFormat,
    /// Formatter options (`FORMAT csv(noheader)`).
    pub format_opts: Vec<FormatOpt>,
    /// Maximum number of output records (`LIMIT n`), applied after
    /// ORDER BY.
    pub limit: Option<usize>,
}

impl QuerySpec {
    /// Whether this query performs aggregation (has ops or a key).
    pub fn is_aggregation(&self) -> bool {
        !self.ops.is_empty() || !self.key.is_empty()
    }

    /// Column labels to output if no SELECT was given: key attributes in
    /// order, then op result labels.
    pub fn default_columns(&self, count_label: &str) -> Vec<String> {
        let mut cols = self.key.clone();
        for op in &self.ops {
            cols.push(op.result_label(count_label));
        }
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_result_labels() {
        let sum = AggOp::new(OpKind::Sum, Some("time.duration"));
        assert_eq!(sum.result_label("count"), "sum#time.duration");
        let count = AggOp::new(OpKind::Count, None);
        assert_eq!(count.result_label("count"), "count");
        assert_eq!(count.result_label("aggregate.count"), "aggregate.count");
        let mut aliased = sum.clone();
        aliased.alias = Some("total".into());
        assert_eq!(aliased.result_label("count"), "total");
    }

    #[test]
    fn op_kind_roundtrip() {
        for kind in [
            OpKind::Count,
            OpKind::Sum,
            OpKind::Min,
            OpKind::Max,
            OpKind::Avg,
            OpKind::Histogram,
            OpKind::PercentTotal,
        ] {
            assert_eq!(OpKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(OpKind::from_name("SUM"), Some(OpKind::Sum));
        assert_eq!(OpKind::from_name("bogus"), None);
    }

    #[test]
    fn cmp_ops_evaluate() {
        assert!(CmpOp::Eq.eval(&Value::Int(3), &Value::Int(3)));
        assert!(CmpOp::Ne.eval(&Value::Int(3), &Value::Int(4)));
        assert!(CmpOp::Lt.eval(&Value::Int(3), &Value::Float(3.5)));
        assert!(CmpOp::Ge.eval(&Value::str("b"), &Value::str("a")));
        assert!(CmpOp::Le.eval(&Value::UInt(2), &Value::Int(2)));
    }

    #[test]
    fn default_columns_are_key_then_ops() {
        let spec = QuerySpec {
            ops: vec![
                AggOp::new(OpKind::Count, None),
                AggOp::new(OpKind::Sum, Some("time")),
            ],
            key: vec!["function".into(), "loop.iteration".into()],
            ..QuerySpec::default()
        };
        assert_eq!(
            spec.default_columns("count"),
            vec!["function", "loop.iteration", "count", "sum#time"]
        );
        assert!(spec.is_aggregation());
        assert!(!QuerySpec::default().is_aggregation());
    }
}
