//! Recursive-descent parser for the aggregation description language.

use std::fmt;

use caliper_data::Value;

use crate::ast::{
    AggOp, CmpOp, Filter, FormatOpt, LetDef, LetExpr, OpKind, OutputFormat, QuerySpec, SortDir,
    SortKey,
};
use crate::diag::Span;
use crate::lexer::{tokenize, LexError, Token, TokenKind};

/// Parse error with a byte span.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset in the query text (or text length at end of input).
    pub pos: usize,
    /// Byte offset one past the offending token (== `pos` at end of
    /// input).
    pub end: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}", self.message, self.pos)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            pos: e.pos,
            end: e.end,
            message: e.message,
        }
    }
}

/// Byte spans for the elements of a parsed [`QuerySpec`], kept in a
/// side table (parallel vectors) so the AST itself stays comparable by
/// value — the render/parse round-trip property compares specs with
/// `==`, and two specs with different formatting must stay equal.
///
/// Each vector parallels the same-named `QuerySpec` field; `ops` also
/// covers operators added through `SELECT sum(x)` sugar.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanMap {
    /// Spans of `spec.ops` entries.
    pub ops: Vec<Span>,
    /// Spans of `spec.key` entries.
    pub keys: Vec<Span>,
    /// Spans of `spec.filters` entries.
    pub filters: Vec<Span>,
    /// Spans of `spec.lets` entries (the whole binding).
    pub lets: Vec<Span>,
    /// Spans of `spec.select` entries (empty for `SELECT *`).
    pub select: Vec<Span>,
    /// Spans of `spec.order_by` entries.
    pub order_by: Vec<Span>,
    /// Span of the FORMAT name, if a FORMAT clause appeared.
    pub format: Option<Span>,
    /// Spans of `spec.format_opts` entries.
    pub format_opts: Vec<Span>,
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    end: usize,
    spans: SpanMap,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek2(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos + 1).map(|t| &t.kind)
    }

    fn here(&self) -> usize {
        self.tokens.get(self.pos).map(|t| t.pos).unwrap_or(self.end)
    }

    /// End offset of the current token (or end of input).
    fn here_end(&self) -> usize {
        self.tokens.get(self.pos).map(|t| t.end).unwrap_or(self.end)
    }

    /// End offset of the most recently consumed token.
    fn prev_end(&self) -> usize {
        if self.pos > 0 {
            self.tokens[self.pos - 1].end
        } else {
            self.here()
        }
    }

    /// Span from `start` through the most recently consumed token.
    fn span_from(&self, start: usize) -> Span {
        Span::new(start, self.prev_end())
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.here(),
            end: self.here_end(),
            message: message.into(),
        }
    }

    /// Is the current token the given keyword (case-insensitive)?
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected '{kw}'")))
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.peek() == Some(kind) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {kind}")))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// An attribute label: identifier or quoted string.
    fn label(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(TokenKind::Ident(s)) | Some(TokenKind::Str(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.error("expected attribute label")),
        }
    }

    /// A literal value: number, quoted string, or bare identifier
    /// (treated as a string, so `kernel=calc-dt` works unquoted).
    fn literal(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(TokenKind::Number(text)) => {
                let v = Value::parse_guess(text);
                self.pos += 1;
                Ok(v)
            }
            Some(TokenKind::Str(s)) => {
                let v = Value::str(s.as_str());
                self.pos += 1;
                Ok(v)
            }
            Some(TokenKind::Ident(s)) => {
                let v = Value::parse_guess(s);
                self.pos += 1;
                Ok(v)
            }
            _ => Err(self.error("expected literal value")),
        }
    }

    /// Does the token start a new clause keyword?
    fn at_clause_start(&self) -> bool {
        const CLAUSES: &[&str] = &[
            "aggregate", "group", "where", "select", "format", "order", "let", "limit",
        ];
        match self.peek() {
            Some(TokenKind::Ident(s)) => {
                let lower = s.to_ascii_lowercase();
                // `group` and `order` only open a clause when followed by `by`.
                match lower.as_str() {
                    "group" | "order" => {
                        matches!(self.peek2(), Some(TokenKind::Ident(by)) if by.eq_ignore_ascii_case("by"))
                    }
                    _ => CLAUSES.contains(&lower.as_str()),
                }
            }
            _ => false,
        }
    }

    fn parse_agg_list(&mut self, spec: &mut QuerySpec) -> Result<(), ParseError> {
        loop {
            let start = self.here();
            let name = self.label()?;
            let kind = OpKind::from_name(&name)
                .ok_or_else(|| self.error(format!("unknown aggregation operator '{name}'")))?;
            let mut op = AggOp::new(kind, None);
            if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
                // first argument: target attribute
                op.target = Some(self.label()?);
                while self.eat(&TokenKind::Comma) {
                    let arg = self.literal()?;
                    op.args.push(arg);
                }
                self.expect(&TokenKind::RParen)?;
            }
            if kind.needs_target() && op.target.is_none() {
                return Err(self.error(format!(
                    "operator '{}' requires a target attribute",
                    kind.name()
                )));
            }
            if kind == OpKind::Histogram && op.args.len() != 3 {
                return Err(self.error(
                    "histogram requires bounds: histogram(attr, lo, hi, nbins)".to_string(),
                ));
            }
            if kind == OpKind::Percentile
                && (op.args.len() != 1 || op.args[0].to_f64().is_none())
            {
                return Err(
                    self.error("percentile requires percentile(attr, p) with numeric p")
                );
            }
            if self.eat_keyword("as") {
                op.alias = Some(self.label()?);
            }
            self.spans.ops.push(self.span_from(start));
            spec.ops.push(op);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(())
    }

    fn parse_group_by(&mut self, spec: &mut QuerySpec) -> Result<(), ParseError> {
        loop {
            let start = self.here();
            spec.key.push(self.label()?);
            self.spans.keys.push(self.span_from(start));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(())
    }

    fn parse_where(&mut self, spec: &mut QuerySpec) -> Result<(), ParseError> {
        loop {
            let start = self.here();
            let filter = if self.at_keyword("not") && self.peek2() == Some(&TokenKind::LParen) {
                self.pos += 2;
                let label = self.label()?;
                self.expect(&TokenKind::RParen)?;
                Filter::NotExists(label)
            } else {
                let label = self.label()?;
                let op = match self.peek() {
                    Some(TokenKind::Eq) => Some(CmpOp::Eq),
                    Some(TokenKind::Ne) => Some(CmpOp::Ne),
                    Some(TokenKind::Lt) => Some(CmpOp::Lt),
                    Some(TokenKind::Le) => Some(CmpOp::Le),
                    Some(TokenKind::Gt) => Some(CmpOp::Gt),
                    Some(TokenKind::Ge) => Some(CmpOp::Ge),
                    _ => None,
                };
                match op {
                    Some(op) => {
                        self.pos += 1;
                        let value = self.literal()?;
                        Filter::Cmp {
                            attr: label,
                            op,
                            value,
                        }
                    }
                    None => Filter::Exists(label),
                }
            };
            self.spans.filters.push(self.span_from(start));
            spec.filters.push(filter);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(())
    }

    fn parse_select(&mut self, spec: &mut QuerySpec) -> Result<(), ParseError> {
        if self.eat(&TokenKind::Star) {
            spec.select = None;
            return Ok(());
        }
        let mut cols = Vec::new();
        loop {
            let start = self.here();
            // Allow `select sum(time.duration)` as sugar: it both adds the
            // aggregation op and selects its result column.
            if let Some(TokenKind::Ident(name)) = self.peek() {
                if let Some(kind) = OpKind::from_name(name) {
                    if self.peek2() == Some(&TokenKind::LParen)
                        || (kind == OpKind::Count && self.peek2() != Some(&TokenKind::Comma))
                    {
                        let before = self.pos;
                        // Try parsing as an op; fall back to a plain label.
                        let mut sub = QuerySpec::default();
                        if self.parse_agg_item(&mut sub).is_ok() {
                            let op = sub.ops.pop().expect("one op parsed");
                            cols.push(op.result_label("count"));
                            self.spans.select.push(self.span_from(start));
                            if !spec.ops.contains(&op) {
                                self.spans.ops.push(self.span_from(start));
                                spec.ops.push(op);
                            }
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                            continue;
                        }
                        self.pos = before;
                    }
                }
            }
            cols.push(self.label()?);
            self.spans.select.push(self.span_from(start));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        spec.select = Some(cols);
        Ok(())
    }

    /// Parse exactly one AGGREGATE item into `spec.ops`.
    fn parse_agg_item(&mut self, spec: &mut QuerySpec) -> Result<(), ParseError> {
        let save = self.pos;
        let name = self.label()?;
        let kind = match OpKind::from_name(&name) {
            Some(k) => k,
            None => {
                self.pos = save;
                return Err(self.error("not an operator"));
            }
        };
        let mut op = AggOp::new(kind, None);
        if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
            op.target = Some(self.label()?);
            while self.eat(&TokenKind::Comma) {
                op.args.push(self.literal()?);
            }
            self.expect(&TokenKind::RParen)?;
        }
        if kind.needs_target() && op.target.is_none() {
            self.pos = save;
            return Err(self.error("operator requires target"));
        }
        if self.eat_keyword("as") {
            op.alias = Some(self.label()?);
        }
        spec.ops.push(op);
        Ok(())
    }

    fn parse_order_by(&mut self, spec: &mut QuerySpec) -> Result<(), ParseError> {
        loop {
            let start = self.here();
            let attr = self.label()?;
            let dir = if self.eat_keyword("desc") {
                SortDir::Desc
            } else {
                self.eat_keyword("asc");
                SortDir::Asc
            };
            self.spans.order_by.push(self.span_from(start));
            spec.order_by.push(SortKey { attr, dir });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(())
    }

    fn parse_let(&mut self, spec: &mut QuerySpec) -> Result<(), ParseError> {
        loop {
            let start = self.here();
            let name = self.label()?;
            self.expect(&TokenKind::Eq)?;
            let func = self.label()?;
            self.expect(&TokenKind::LParen)?;
            let expr = match func.to_ascii_lowercase().as_str() {
                "scale" => {
                    let attr = self.label()?;
                    self.expect(&TokenKind::Comma)?;
                    let factor = self
                        .literal()?
                        .to_f64()
                        .ok_or_else(|| self.error("scale factor must be numeric"))?;
                    LetExpr::Scale(attr, factor)
                }
                "ratio" => {
                    let a = self.label()?;
                    self.expect(&TokenKind::Comma)?;
                    let b = self.label()?;
                    LetExpr::Ratio(a, b)
                }
                "first" => {
                    let mut attrs = vec![self.label()?];
                    while self.eat(&TokenKind::Comma) {
                        attrs.push(self.label()?);
                    }
                    LetExpr::First(attrs)
                }
                "truncate" => {
                    let attr = self.label()?;
                    self.expect(&TokenKind::Comma)?;
                    let width = self
                        .literal()?
                        .to_f64()
                        .ok_or_else(|| self.error("truncate width must be numeric"))?;
                    if width <= 0.0 {
                        return Err(self.error("truncate width must be positive"));
                    }
                    LetExpr::Truncate(attr, width)
                }
                other => {
                    return Err(self.error(format!("unknown LET function '{other}'")));
                }
            };
            self.expect(&TokenKind::RParen)?;
            self.spans.lets.push(self.span_from(start));
            spec.lets.push(LetDef { name, expr });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(())
    }

    /// Parse `FORMAT name` with optional `(opt, opt=value, ...)`.
    fn parse_format(&mut self, spec: &mut QuerySpec) -> Result<(), ParseError> {
        let start = self.here();
        let name = self.label()?;
        spec.format = OutputFormat::from_name(&name)
            .ok_or_else(|| self.error(format!("unknown format '{name}'")))?;
        self.spans.format = Some(self.span_from(start));
        if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
            loop {
                let opt_start = self.here();
                let opt_name = self.label()?;
                let value = if self.eat(&TokenKind::Eq) {
                    Some(self.literal()?)
                } else {
                    None
                };
                self.spans.format_opts.push(self.span_from(opt_start));
                spec.format_opts.push(FormatOpt {
                    name: opt_name,
                    value,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        Ok(())
    }

    fn parse_query(&mut self) -> Result<QuerySpec, ParseError> {
        let mut spec = QuerySpec::default();
        while self.peek().is_some() {
            if self.eat_keyword("aggregate") {
                self.parse_agg_list(&mut spec)?;
            } else if self.at_keyword("group") {
                self.pos += 1;
                self.expect_keyword("by")?;
                self.parse_group_by(&mut spec)?;
            } else if self.eat_keyword("where") {
                self.parse_where(&mut spec)?;
            } else if self.eat_keyword("select") {
                self.parse_select(&mut spec)?;
            } else if self.at_keyword("order") {
                self.pos += 1;
                self.expect_keyword("by")?;
                self.parse_order_by(&mut spec)?;
            } else if self.eat_keyword("let") {
                self.parse_let(&mut spec)?;
            } else if self.eat_keyword("limit") {
                match self.peek() {
                    Some(TokenKind::Number(text)) => {
                        let n: usize = text.parse().map_err(|_| {
                            self.error("LIMIT requires a non-negative integer")
                        })?;
                        self.pos += 1;
                        spec.limit = Some(n);
                    }
                    _ => return Err(self.error("LIMIT requires a number")),
                }
            } else if self.eat_keyword("format") {
                self.parse_format(&mut spec)?;
            } else {
                return Err(self.error("expected a clause (AGGREGATE, GROUP BY, WHERE, SELECT, ORDER BY, LET, LIMIT, FORMAT)"));
            }
            // Clauses may be comma-separated in some tools' spellings;
            // tolerate a trailing comma between clauses.
            while !self.at_clause_start() && self.eat(&TokenKind::Comma) {}
            if !self.at_clause_start() && self.peek().is_some() {
                return Err(self.error("unexpected input after clause"));
            }
        }
        Ok(spec)
    }
}

/// Parse a query text into a [`QuerySpec`].
pub fn parse_query(input: &str) -> Result<QuerySpec, ParseError> {
    parse_query_spanned(input).map(|(spec, _)| spec)
}

/// Parse a query text into a [`QuerySpec`] plus a [`SpanMap`] giving
/// the byte span of each spec element, for diagnostics.
pub fn parse_query_spanned(input: &str) -> Result<(QuerySpec, SpanMap), ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        end: input.len(),
        spans: SpanMap::default(),
    };
    let spec = parser.parse_query()?;
    Ok((spec, parser.spans))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_listing_example() {
        // §III-B: the time-series function profile scheme.
        let spec = parse_query("AGGREGATE count, sum(time)\nGROUP BY function, loop.iteration")
            .unwrap();
        assert_eq!(spec.ops.len(), 2);
        assert_eq!(spec.ops[0].kind, OpKind::Count);
        assert_eq!(spec.ops[1].kind, OpKind::Sum);
        assert_eq!(spec.ops[1].target.as_deref(), Some("time"));
        assert_eq!(spec.key, vec!["function", "loop.iteration"]);
        assert!(spec.filters.is_empty());
    }

    #[test]
    fn parses_amr_level_query() {
        // §VI-E: the AMR refinement-level query with WHERE not(...) and
        // a line continuation.
        let spec = parse_query(
            "AGGREGATE sum(time.duration)\nWHERE not(mpi.function)\nGROUP BY amr.level,\\\niteration#mainloop",
        )
        .unwrap();
        assert_eq!(spec.ops.len(), 1);
        assert_eq!(
            spec.filters,
            vec![Filter::NotExists("mpi.function".into())]
        );
        assert_eq!(spec.key, vec!["amr.level", "iteration#mainloop"]);
    }

    #[test]
    fn parses_comparison_filters() {
        let spec = parse_query("AGGREGATE count GROUP BY kernel WHERE mpi.rank=0, time.duration>2.5, kernel!=idle").unwrap();
        assert_eq!(spec.filters.len(), 3);
        assert_eq!(
            spec.filters[0],
            Filter::Cmp {
                attr: "mpi.rank".into(),
                op: CmpOp::Eq,
                value: Value::Int(0)
            }
        );
        assert_eq!(
            spec.filters[1],
            Filter::Cmp {
                attr: "time.duration".into(),
                op: CmpOp::Gt,
                value: Value::Float(2.5)
            }
        );
        assert_eq!(
            spec.filters[2],
            Filter::Cmp {
                attr: "kernel".into(),
                op: CmpOp::Ne,
                value: Value::str("idle")
            }
        );
    }

    #[test]
    fn parses_exists_filter() {
        let spec = parse_query("AGGREGATE count GROUP BY x WHERE mpi.function").unwrap();
        assert_eq!(spec.filters, vec![Filter::Exists("mpi.function".into())]);
    }

    #[test]
    fn parses_alias_order_by_format() {
        let spec = parse_query(
            "AGGREGATE sum(time.duration) AS total GROUP BY kernel ORDER BY total desc, kernel FORMAT csv",
        )
        .unwrap();
        assert_eq!(spec.ops[0].alias.as_deref(), Some("total"));
        assert_eq!(spec.order_by.len(), 2);
        assert_eq!(spec.order_by[0].dir, SortDir::Desc);
        assert_eq!(spec.order_by[1].dir, SortDir::Asc);
        assert_eq!(spec.format, OutputFormat::Csv);
    }

    #[test]
    fn parses_histogram_with_bounds() {
        let spec =
            parse_query("AGGREGATE histogram(time.duration, 0, 100, 10) GROUP BY kernel").unwrap();
        assert_eq!(spec.ops[0].kind, OpKind::Histogram);
        assert_eq!(
            spec.ops[0].args,
            vec![Value::Int(0), Value::Int(100), Value::Int(10)]
        );
        assert!(parse_query("AGGREGATE histogram(x) GROUP BY k").is_err());
    }

    #[test]
    fn parses_let_definitions() {
        let spec = parse_query(
            "LET time.ms = scale(time.duration, 0.001), phase = first(annotation, function) AGGREGATE sum(time.ms) GROUP BY phase",
        )
        .unwrap();
        assert_eq!(spec.lets.len(), 2);
        assert_eq!(
            spec.lets[0].expr,
            LetExpr::Scale("time.duration".into(), 0.001)
        );
        assert_eq!(
            spec.lets[1].expr,
            LetExpr::First(vec!["annotation".into(), "function".into()])
        );
    }

    #[test]
    fn parses_select_with_op_sugar() {
        let spec = parse_query("SELECT kernel, sum(time.duration) GROUP BY kernel").unwrap();
        assert_eq!(
            spec.select,
            Some(vec!["kernel".to_string(), "sum#time.duration".to_string()])
        );
        assert_eq!(spec.ops.len(), 1);
        assert_eq!(spec.ops[0].kind, OpKind::Sum);
    }

    #[test]
    fn select_star_means_all() {
        let spec = parse_query("SELECT * WHERE kernel").unwrap();
        assert_eq!(spec.select, None);
        assert!(!spec.is_aggregation());
    }

    #[test]
    fn group_without_by_is_error() {
        assert!(parse_query("GROUP kernel").is_err());
        assert!(parse_query("AGGREGATE bogus(x) GROUP BY k").is_err());
        assert!(parse_query("AGGREGATE sum GROUP BY k").is_err());
        assert!(parse_query("FORMAT nosuch").is_err());
    }

    #[test]
    fn errors_carry_position() {
        let err = parse_query("AGGREGATE count GROUP BY").unwrap_err();
        assert!(err.pos >= 24);
        assert!(err.end >= err.pos);
    }

    #[test]
    fn spans_cover_spec_elements() {
        let text = "AGGREGATE count, sum(time) GROUP BY function WHERE mpi.rank=0";
        let (spec, spans) = parse_query_spanned(text).unwrap();
        assert_eq!(spans.ops.len(), spec.ops.len());
        assert_eq!(spans.keys.len(), spec.key.len());
        assert_eq!(spans.filters.len(), spec.filters.len());
        assert_eq!(&text[spans.ops[0].start..spans.ops[0].end], "count");
        assert_eq!(&text[spans.ops[1].start..spans.ops[1].end], "sum(time)");
        assert_eq!(&text[spans.keys[0].start..spans.keys[0].end], "function");
        assert_eq!(
            &text[spans.filters[0].start..spans.filters[0].end],
            "mpi.rank=0"
        );
    }

    #[test]
    fn select_sugar_records_op_span_once() {
        let text = "SELECT kernel, sum(time.duration) GROUP BY kernel";
        let (spec, spans) = parse_query_spanned(text).unwrap();
        assert_eq!(spec.ops.len(), 1);
        assert_eq!(spans.ops.len(), 1);
        assert_eq!(spans.select.len(), 2);
        assert_eq!(
            &text[spans.ops[0].start..spans.ops[0].end],
            "sum(time.duration)"
        );
    }

    #[test]
    fn parses_format_options() {
        let spec = parse_query("AGGREGATE count GROUP BY k FORMAT csv(noheader)").unwrap();
        assert_eq!(spec.format, OutputFormat::Csv);
        assert_eq!(spec.format_opts.len(), 1);
        assert_eq!(spec.format_opts[0].name, "noheader");
        assert_eq!(spec.format_opts[0].value, None);

        let spec = parse_query("SELECT * FORMAT json(pretty, indent=2)").unwrap();
        assert_eq!(spec.format_opts.len(), 2);
        assert_eq!(spec.format_opts[1].name, "indent");
        assert_eq!(spec.format_opts[1].value, Some(Value::Int(2)));

        // Empty parens are tolerated.
        let spec = parse_query("SELECT * FORMAT json()").unwrap();
        assert!(spec.format_opts.is_empty());

        assert!(parse_query("SELECT * FORMAT json(pretty").is_err());
    }

    #[test]
    fn parses_limit() {
        let spec = parse_query("AGGREGATE count GROUP BY k ORDER BY count desc LIMIT 10").unwrap();
        assert_eq!(spec.limit, Some(10));
        assert!(parse_query("SELECT * LIMIT").is_err());
        assert!(parse_query("SELECT * LIMIT x").is_err());
        assert_eq!(parse_query("SELECT * LIMIT 0").unwrap().limit, Some(0));
    }

    #[test]
    fn quoted_labels_allowed() {
        let spec = parse_query("GROUP BY \"odd label\", 'another one'").unwrap();
        assert_eq!(spec.key, vec!["odd label", "another one"]);
    }

    #[test]
    fn clause_order_is_free() {
        let a = parse_query("GROUP BY k AGGREGATE count WHERE x FORMAT json").unwrap();
        let b = parse_query("FORMAT json WHERE x AGGREGATE count GROUP BY k").unwrap();
        assert_eq!(a, b);
    }
}
