//! Property-based tests for the thread-parallel query engine: for any
//! workload, shard count, and batch size, the sharded result renders
//! byte-identically to an independently computed serial aggregation.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use caliper_data::{Properties, SnapshotRecord, Value, ValueType, NODE_NONE};
use caliper_format::{cali, Dataset};
use caliper_query::{
    parallel_query_files, parse_query, ParallelOptions, Pipeline,
};
use proptest::prelude::*;

/// A synthetic record: (kernel index, value).
type Row = (u8, i32);

static CASE: AtomicUsize = AtomicUsize::new(0);

fn dataset_of(rows: &[Row]) -> Dataset {
    let mut ds = Dataset::new();
    let kernel = ds.attribute("kernel", ValueType::Str, Properties::NESTED);
    let time = ds.attribute(
        "time",
        ValueType::Int,
        Properties::AS_VALUE | Properties::AGGREGATABLE,
    );
    let names = ["alpha", "beta", "gamma", "delta"];
    for (k, v) in rows {
        let mut rec = SnapshotRecord::new();
        // Leave the kernel out for k == 0 to exercise partial keys.
        if *k > 0 {
            let node = ds.tree.get_child(
                NODE_NONE,
                kernel.id(),
                &Value::str(names[*k as usize % names.len()]),
            );
            rec.push_node(node);
        }
        rec.push_imm(time.id(), Value::Int(*v as i64));
        ds.push(rec);
    }
    ds
}

/// Writes each file's rows to a fresh temp directory, returning it and
/// the file paths in order.
fn write_workload(files: &[Vec<Row>]) -> (PathBuf, Vec<PathBuf>) {
    let dir = std::env::temp_dir().join(format!(
        "caliper-parallel-prop-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let paths = files
        .iter()
        .enumerate()
        .map(|(i, rows)| {
            let path = dir.join(format!("rank{i}.cali"));
            cali::write_file(&dataset_of(rows), &path).unwrap();
            path
        })
        .collect();
    (dir, paths)
}

/// The serial reference: per-file pipelines merged in path order — the
/// same fold `cali-cli`'s streaming path performs.
fn serial_reference(query: &str, paths: &[PathBuf]) -> String {
    let spec = parse_query(query).unwrap();
    let mut acc: Option<Pipeline> = None;
    for path in paths {
        let ds = caliper_format::read_path(path).unwrap();
        let mut pipeline = Pipeline::new(spec.clone(), Arc::clone(&ds.store));
        pipeline.process_dataset(&ds);
        match &mut acc {
            Some(root) => root.merge(pipeline),
            None => acc = Some(pipeline),
        }
    }
    acc.expect("non-empty workload").finish().render()
}

const QUERY: &str = "AGGREGATE count, sum(time), min(time), max(time), avg(time) \
                     GROUP BY kernel ORDER BY kernel";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The sharded engine matches the serial per-file fold byte for
    /// byte, for every worker count — including float aggregates (avg),
    /// which only stay bit-identical because the engine merges partials
    /// in unit order.
    #[test]
    fn parallel_matches_serial_for_any_thread_count(
        files in prop::collection::vec(
            prop::collection::vec((0u8..5, -1000i32..1000), 0..40),
            1..6,
        ),
    ) {
        let (dir, paths) = write_workload(&files);
        let expected = serial_reference(QUERY, &paths);
        for threads in [2usize, 3, 8] {
            let (result, timings) = parallel_query_files(
                QUERY,
                &paths,
                &ParallelOptions::with_threads(threads),
            )
            .unwrap();
            prop_assert_eq!(&result.render(), &expected, "threads = {}", threads);
            prop_assert_eq!(timings.workers.len(), threads);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Forcing files to split into many record batches does not change
    /// the result across worker counts: the decomposition and merge
    /// order depend only on the inputs and the batch size.
    #[test]
    fn batch_size_and_thread_count_commute(
        files in prop::collection::vec(
            prop::collection::vec((0u8..5, -1000i32..1000), 1..50),
            1..4,
        ),
        batch_records in 1usize..9,
    ) {
        let (dir, paths) = write_workload(&files);
        let opts = |threads| ParallelOptions { threads, batch_records, ..Default::default() };
        let (reference, _) = parallel_query_files(QUERY, &paths, &opts(1)).unwrap();
        let expected = reference.render();
        for threads in [2usize, 8] {
            let (result, _) = parallel_query_files(QUERY, &paths, &opts(threads)).unwrap();
            prop_assert_eq!(
                &result.render(), &expected,
                "threads = {}, batch_records = {}", threads, batch_records
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Worker record counts partition the input: however scheduling
    /// distributes units, every record is aggregated exactly once.
    #[test]
    fn workers_process_every_record_exactly_once(
        files in prop::collection::vec(
            prop::collection::vec((0u8..5, -1000i32..1000), 0..30),
            1..5,
        ),
    ) {
        let (dir, paths) = write_workload(&files);
        let total: usize = files.iter().map(Vec::len).sum();
        let (_, timings) = parallel_query_files(
            QUERY,
            &paths,
            &ParallelOptions { threads: 4, batch_records: 8, ..Default::default() },
        )
        .unwrap();
        let processed: u64 = timings.workers.iter().map(|w| w.records).sum();
        prop_assert_eq!(processed, total as u64);
        let read: usize = timings.workers.iter().map(|w| w.files).sum();
        prop_assert_eq!(read, paths.len());
        std::fs::remove_dir_all(&dir).ok();
    }
}
