//! Property tests for the CalQL render/parse round trip.
//!
//! `display.rs` promises `parse(render(spec)) == spec` for every
//! representable spec. Instead of fuzzing query *text* (which mostly
//! produces parse errors), these tests generate random [`QuerySpec`]
//! values directly, render them to canonical text, re-parse, and
//! require the result to be equal — covering quoting of hostile
//! labels, keyword/operator-name collisions, numeric literal typing
//! (`1.0` must stay a float), LET expressions, and ORDER BY direction.

use caliper_data::Value;
use caliper_query::parse_query;
use caliper_query::{
    AggOp, CmpOp, Filter, FormatOpt, LetDef, LetExpr, OpKind, OutputFormat, QuerySpec, SortDir,
    SortKey,
};
use proptest::prelude::*;

/// Attribute labels: bare identifiers, strings needing quoting
/// (spaces, punctuation, quotes, backslashes), and the pathological
/// cases — clause keywords and operator names used as labels.
fn label() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z][a-z0-9_.#]{0,8}",
        // printable ASCII incl. '"', '\\', '(' and friends
        "[ -~]{1,10}",
        Just("select".to_string()),
        Just("order".to_string()),
        Just("desc".to_string()),
        Just("limit".to_string()),
        Just("count".to_string()),
        Just("sum".to_string()),
        Just(String::new()),
    ]
}

/// Literal values for WHERE comparisons: every numeric flavor
/// (including integral floats, the classic round-trip trap) plus
/// strings that collide with numbers or keywords.
fn literal_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        (u64::MAX - 1000..u64::MAX).prop_map(Value::UInt),
        (-400_000i64..400_000).prop_map(|n| Value::Float(n as f64 / 100.0)),
        (-1000i64..1000).prop_map(|n| Value::Float(n as f64)), // integral floats
        "[ -~]{0,8}".prop_map(Value::str),
        Just(Value::str("123")), // a string that looks like a number
    ]
}

fn agg_op() -> impl Strategy<Value = AggOp> {
    let simple = prop_oneof![
        Just(OpKind::Count),
        Just(OpKind::Sum),
        Just(OpKind::Min),
        Just(OpKind::Max),
        Just(OpKind::Avg),
        Just(OpKind::PercentTotal),
        Just(OpKind::Variance),
        Just(OpKind::Stddev),
    ];
    prop_oneof![
        // count with no target
        Just(AggOp::new(OpKind::Count, None)),
        (simple, label()).prop_map(|(kind, target)| AggOp::new(kind, Some(&target))),
        // histogram(attr, lo, hi, nbins)
        (label(), -100i64..100, 0i64..1000, 1i64..32).prop_map(|(target, lo, span, nbins)| {
            let mut op = AggOp::new(OpKind::Histogram, Some(&target));
            op.args = vec![
                Value::Int(lo),
                Value::Int(lo + 1 + span),
                Value::Int(nbins),
            ];
            op
        }),
        // percentile(attr, p)
        (label(), 1i64..100).prop_map(|(target, p)| {
            let mut op = AggOp::new(OpKind::Percentile, Some(&target));
            op.args = vec![Value::Int(p)];
            op
        }),
    ]
}

fn aliased_op() -> impl Strategy<Value = AggOp> {
    (agg_op(), 0u8..3, label()).prop_map(|(mut op, has_alias, alias)| {
        if has_alias == 0 && !alias.is_empty() {
            op.alias = Some(alias);
        }
        op
    })
}

fn filter() -> impl Strategy<Value = Filter> {
    let cmp = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ];
    prop_oneof![
        label().prop_map(Filter::Exists),
        label().prop_map(Filter::NotExists),
        (label(), cmp, literal_value()).prop_map(|(attr, op, value)| Filter::Cmp {
            attr,
            op,
            value
        }),
    ]
}

fn let_def() -> impl Strategy<Value = LetDef> {
    let expr = prop_oneof![
        (label(), -100_000i64..100_000)
            .prop_map(|(attr, f)| LetExpr::Scale(attr, f as f64 / 100.0)),
        (label(), label()).prop_map(|(a, b)| LetExpr::Ratio(a, b)),
        prop::collection::vec(label(), 1..4).prop_map(LetExpr::First),
        (label(), 1i64..100_000)
            .prop_map(|(attr, w)| LetExpr::Truncate(attr, w as f64 / 100.0)),
    ];
    (label(), expr).prop_map(|(name, expr)| LetDef { name, expr })
}

fn sort_key() -> impl Strategy<Value = SortKey> {
    (label(), 0u8..2).prop_map(|(attr, d)| SortKey {
        attr,
        dir: if d == 0 { SortDir::Asc } else { SortDir::Desc },
    })
}

fn output_format() -> impl Strategy<Value = OutputFormat> {
    prop_oneof![
        Just(OutputFormat::Table),
        Just(OutputFormat::Csv),
        Just(OutputFormat::Json),
        Just(OutputFormat::Expand),
        Just(OutputFormat::Cali),
        Just(OutputFormat::Flamegraph),
    ]
}

/// Formatter options: bare flags and `opt=value` pairs, with hostile
/// names and every literal flavor as the value.
fn format_opt() -> impl Strategy<Value = FormatOpt> {
    (label(), 0u8..2, literal_value()).prop_map(|(name, has_value, value)| FormatOpt {
        name,
        value: (has_value == 0).then_some(value),
    })
}

fn query_spec() -> impl Strategy<Value = QuerySpec> {
    (
        (
            prop::collection::vec(aliased_op(), 0..4),
            prop::collection::vec(label(), 0..3),
            prop::collection::vec(filter(), 0..3),
        ),
        (
            prop::collection::vec(let_def(), 0..3),
            prop::collection::vec(sort_key(), 0..3),
        ),
        (0u8..2, prop::collection::vec(label(), 1..3)),
        (0u8..2, 0usize..1000),
        (output_format(), prop::collection::vec(format_opt(), 0..3)),
    )
        .prop_map(
            |((ops, key, filters), (lets, order_by), (has_select, select), (has_limit, limit), (format, format_opts))| {
                QuerySpec {
                    ops,
                    key,
                    filters,
                    select: (has_select == 0).then_some(select),
                    lets,
                    order_by,
                    limit: (has_limit == 0).then_some(limit),
                    format,
                    format_opts,
                }
            },
        )
}

proptest! {
    /// The core property: rendering a spec and re-parsing the text
    /// reproduces the spec exactly.
    #[test]
    fn render_parse_roundtrip(spec in query_spec()) {
        let rendered = spec.to_string();
        let reparsed = parse_query(&rendered)
            .map_err(|e| TestCaseError::fail(format!("rendered '{rendered}' fails to parse: {e}")))?;
        prop_assert_eq!(&spec, &reparsed, "via '{}'", rendered);
    }

    /// Rendering is a fixpoint: render(parse(render(spec))) is stable,
    /// so canonical text can be shipped across processes repeatedly
    /// (the mpi-caliquery path) without drifting.
    #[test]
    fn render_is_canonical(spec in query_spec()) {
        let once = spec.to_string();
        let twice = parse_query(&once)
            .map_err(|e| TestCaseError::fail(format!("'{once}' fails to parse: {e}")))?
            .to_string();
        prop_assert_eq!(once, twice);
    }
}
