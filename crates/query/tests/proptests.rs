//! Property-based tests for the aggregation engine: the algebraic
//! invariants that cross-process tree reduction relies on.

use std::sync::Arc;

use caliper_data::{AttributeStore, FlatRecord, Value, ValueType};
use caliper_query::{parse_query, AggregationSpec, Aggregator, Pipeline};
use proptest::prelude::*;

/// A synthetic record: (function index, iteration, time).
type Row = (u8, u8, i32);

fn build_records(rows: &[Row]) -> (Arc<AttributeStore>, Vec<FlatRecord>) {
    let store = Arc::new(AttributeStore::new());
    let func = store.create_simple("function", ValueType::Str);
    let iter = store.create_simple("iteration", ValueType::Int);
    let time = store.create_simple("time", ValueType::Int);
    let names = ["foo", "bar", "baz", "qux"];
    let records = rows
        .iter()
        .map(|(f, i, t)| {
            let mut rec = FlatRecord::new();
            // Leave the function out for f == 0 to exercise partial keys.
            if *f > 0 {
                rec.push(func.id(), Value::str(names[(*f as usize) % names.len()]));
            }
            rec.push(iter.id(), Value::Int(*i as i64));
            rec.push(time.id(), Value::Int(*t as i64));
            rec
        })
        .collect();
    (store, records)
}

fn flush_text(agg: &Aggregator) -> Vec<String> {
    let out_store = AttributeStore::new();
    agg.flush(&out_store)
        .iter()
        .map(|r| r.describe(&out_store))
        .collect()
}

const QUERY: &str = "AGGREGATE count, sum(time), min(time), max(time), avg(time) GROUP BY function, iteration";

proptest! {
    /// Splitting the stream at any point and merging partial aggregations
    /// gives the same result as one pass — the invariant behind the
    /// logarithmic cross-process reduction (§IV-C).
    #[test]
    fn merge_is_associative_with_split(
        rows in prop::collection::vec((0u8..4, 0u8..4, -100i32..100), 0..60),
        split in 0usize..60,
    ) {
        let (store, records) = build_records(&rows);
        let spec = AggregationSpec::from_query(&parse_query(QUERY).unwrap());
        let split = split.min(records.len());

        let mut single = Aggregator::new(spec.clone(), Arc::clone(&store));
        for r in &records {
            single.add(r);
        }

        let mut left = Aggregator::new(spec.clone(), Arc::clone(&store));
        let mut right = Aggregator::new(spec, Arc::clone(&store));
        for r in &records[..split] {
            left.add(r);
        }
        for r in &records[split..] {
            right.add(r);
        }
        left.merge(right);

        prop_assert_eq!(flush_text(&single), flush_text(&left));
    }

    /// Streaming aggregation is order-insensitive: a permuted stream
    /// yields the same flushed result.
    #[test]
    fn aggregation_is_permutation_invariant(
        rows in prop::collection::vec((0u8..4, 0u8..4, -100i32..100), 0..40),
        seed in any::<u64>(),
    ) {
        let (store, records) = build_records(&rows);
        let spec = AggregationSpec::from_query(&parse_query(QUERY).unwrap());

        let mut a = Aggregator::new(spec.clone(), Arc::clone(&store));
        for r in &records {
            a.add(r);
        }

        // Fisher-Yates with a tiny LCG for determinism.
        let mut shuffled = records.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let mut b = Aggregator::new(spec, Arc::clone(&store));
        for r in &shuffled {
            b.add(r);
        }

        prop_assert_eq!(flush_text(&a), flush_text(&b));
    }

    /// Counts partition: the sum of per-key counts equals the number of
    /// input records, for any grouping.
    #[test]
    fn counts_partition_input(
        rows in prop::collection::vec((0u8..4, 0u8..4, -100i32..100), 0..60),
    ) {
        let (store, records) = build_records(&rows);
        let spec = AggregationSpec::from_query(
            &parse_query("AGGREGATE count GROUP BY function").unwrap(),
        );
        let mut agg = Aggregator::new(spec, Arc::clone(&store));
        for r in &records {
            agg.add(r);
        }
        let out_store = AttributeStore::new();
        let out = agg.flush(&out_store);
        if records.is_empty() {
            prop_assert!(out.is_empty());
        } else {
            let count = out_store.find("count").unwrap();
            let total: u64 = out
                .iter()
                .map(|r| r.get(count.id()).unwrap().to_u64().unwrap())
                .sum();
            prop_assert_eq!(total, records.len() as u64);
        }
    }

    /// Grouped sums add up to the ungrouped sum (aggregation does not
    /// lose or duplicate values when refining the key).
    #[test]
    fn sums_are_consistent_across_key_refinement(
        rows in prop::collection::vec((0u8..4, 0u8..4, -100i32..100), 1..60),
    ) {
        let (store, records) = build_records(&rows);
        let fine = AggregationSpec::from_query(
            &parse_query("AGGREGATE sum(time) GROUP BY function, iteration").unwrap(),
        );
        let coarse = AggregationSpec::from_query(
            &parse_query("AGGREGATE sum(time) GROUP BY function").unwrap(),
        );
        let mut fine_agg = Aggregator::new(fine, Arc::clone(&store));
        let mut coarse_agg = Aggregator::new(coarse, Arc::clone(&store));
        for r in &records {
            fine_agg.add(r);
            coarse_agg.add(r);
        }
        let s1 = AttributeStore::new();
        let s2 = AttributeStore::new();
        let sum_of = |out: &[FlatRecord], store: &AttributeStore| -> i64 {
            let attr = store.find("sum#time").unwrap();
            out.iter()
                .filter_map(|r| r.get(attr.id()))
                .map(|v| v.to_i64().unwrap())
                .sum()
        };
        prop_assert_eq!(
            sum_of(&fine_agg.flush(&s1), &s1),
            sum_of(&coarse_agg.flush(&s2), &s2)
        );
    }

    /// min <= avg <= max for every key.
    #[test]
    fn min_avg_max_ordering(
        rows in prop::collection::vec((0u8..4, 0u8..4, -100i32..100), 1..60),
    ) {
        let (store, records) = build_records(&rows);
        let spec = AggregationSpec::from_query(&parse_query(QUERY).unwrap());
        let mut agg = Aggregator::new(spec, Arc::clone(&store));
        for r in &records {
            agg.add(r);
        }
        let out_store = AttributeStore::new();
        let out = agg.flush(&out_store);
        let min = out_store.find("min#time").unwrap();
        let max = out_store.find("max#time").unwrap();
        let avg = out_store.find("avg#time").unwrap();
        for rec in &out {
            let lo = rec.get(min.id()).unwrap().to_f64().unwrap();
            let hi = rec.get(max.id()).unwrap().to_f64().unwrap();
            let mean = rec.get(avg.id()).unwrap().to_f64().unwrap();
            prop_assert!(lo <= mean + 1e-9 && mean <= hi + 1e-9);
        }
    }

    /// WHERE-filtered aggregation equals aggregation of the manually
    /// filtered stream.
    #[test]
    fn filter_commutes_with_aggregation(
        rows in prop::collection::vec((0u8..4, 0u8..4, -100i32..100), 0..60),
        threshold in -100i32..100,
    ) {
        let (store, records) = build_records(&rows);
        let query = format!(
            "AGGREGATE count, sum(time) WHERE time > {threshold} GROUP BY function"
        );
        let spec = parse_query(&query).unwrap();
        let mut filtered_pipeline = Pipeline::new(spec, Arc::clone(&store));
        for r in &records {
            filtered_pipeline.process(r.clone());
        }

        let time = store.find("time").unwrap();
        let manual: Vec<FlatRecord> = records
            .iter()
            .filter(|r| r.get(time.id()).unwrap().to_i64().unwrap() > threshold as i64)
            .cloned()
            .collect();
        let spec2 = parse_query("AGGREGATE count, sum(time) GROUP BY function").unwrap();
        let mut manual_pipeline = Pipeline::new(spec2, Arc::clone(&store));
        for r in manual {
            manual_pipeline.process(r);
        }

        prop_assert_eq!(
            filtered_pipeline.finish().to_table().render(),
            manual_pipeline.finish().to_table().render()
        );
    }
}
