//! Property tests for the semantic analyzer.
//!
//! Whatever spec the parser accepts, [`analyze`] must return without
//! panicking — with or without spans, with or without a schema — and
//! its output must be deterministic and sorted. The spec generator is
//! the round-trip one: random [`QuerySpec`] values are rendered to
//! canonical text and re-parsed to obtain genuine parser spans.

use caliper_data::{Properties, Value, ValueType};
use caliper_format::Schema;
use caliper_query::{analyze, parse_query_spanned, Severity};
use caliper_query::{
    AggOp, CmpOp, Filter, FormatOpt, LetDef, LetExpr, OpKind, OutputFormat, QuerySpec, SortDir,
    SortKey,
};
use proptest::prelude::*;

/// A small attribute universe so generated queries sometimes hit known
/// names (exercising the type checks) and sometimes miss (exercising
/// E002 and the suggestion machinery).
fn schema() -> Schema {
    let mut s = Schema::new();
    s.observe("function", ValueType::Str, Properties::NESTED);
    s.observe("mpi.rank", ValueType::Int, Properties::GLOBAL);
    s.observe(
        "time.duration",
        ValueType::Float,
        Properties::AS_VALUE | Properties::AGGREGATABLE,
    );
    s.observe("flag", ValueType::Bool, Properties::DEFAULT);
    s
}

/// Labels biased toward the schema universe plus hostile strays.
fn label() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("function".to_string()),
        Just("mpi.rank".to_string()),
        Just("time.duration".to_string()),
        Just("time.duraton".to_string()), // near-miss for suggestions
        Just("flag".to_string()),
        "[a-z][a-z0-9_.#]{0,8}",
        "[ -~]{1,8}",
        Just(String::new()),
    ]
}

fn literal_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i64..1000).prop_map(Value::Int),
        (0u64..1000).prop_map(Value::UInt),
        (-1000i64..1000).prop_map(|n| Value::Float(n as f64 / 4.0)),
        "[ -~]{0,6}".prop_map(Value::str),
    ]
}

fn agg_op() -> impl Strategy<Value = AggOp> {
    let kind = prop_oneof![
        Just(OpKind::Count),
        Just(OpKind::Sum),
        Just(OpKind::Min),
        Just(OpKind::Max),
        Just(OpKind::Avg),
        Just(OpKind::PercentTotal),
        Just(OpKind::Variance),
        Just(OpKind::Stddev),
    ];
    prop_oneof![
        (kind, label()).prop_map(|(kind, target)| AggOp::new(kind, Some(&target))),
        Just(AggOp::new(OpKind::Count, None)),
        // histogram with arbitrary (possibly invalid) bounds
        (label(), -50i64..50, -50i64..50, 0i64..8).prop_map(|(target, lo, hi, nbins)| {
            let mut op = AggOp::new(OpKind::Histogram, Some(&target));
            op.args = vec![Value::Int(lo), Value::Int(hi), Value::Int(nbins)];
            op
        }),
        // percentile with arbitrary (possibly out-of-range) p
        (label(), -10i64..120).prop_map(|(target, p)| {
            let mut op = AggOp::new(OpKind::Percentile, Some(&target));
            op.args = vec![Value::Int(p)];
            op
        }),
    ]
}

fn filter() -> impl Strategy<Value = Filter> {
    let cmp = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ];
    prop_oneof![
        label().prop_map(Filter::Exists),
        label().prop_map(Filter::NotExists),
        (label(), cmp, literal_value()).prop_map(|(attr, op, value)| Filter::Cmp {
            attr,
            op,
            value
        }),
    ]
}

fn let_def() -> impl Strategy<Value = LetDef> {
    let expr = prop_oneof![
        (label(), -100i64..100).prop_map(|(attr, f)| LetExpr::Scale(attr, f as f64)),
        (label(), label()).prop_map(|(a, b)| LetExpr::Ratio(a, b)),
        prop::collection::vec(label(), 1..3).prop_map(LetExpr::First),
        (label(), 1i64..100).prop_map(|(attr, w)| LetExpr::Truncate(attr, w as f64)),
    ];
    (label(), expr).prop_map(|(name, expr)| LetDef { name, expr })
}

fn query_spec() -> impl Strategy<Value = QuerySpec> {
    (
        (
            prop::collection::vec(agg_op(), 0..4),
            prop::collection::vec(label(), 0..3),
            prop::collection::vec(filter(), 0..4),
        ),
        (
            prop::collection::vec(let_def(), 0..3),
            prop::collection::vec(
                (label(), 0u8..2).prop_map(|(attr, d)| SortKey {
                    attr,
                    dir: if d == 0 { SortDir::Asc } else { SortDir::Desc },
                }),
                0..3,
            ),
        ),
        (0u8..2, prop::collection::vec(label(), 1..3)),
        prop_oneof![Just(OutputFormat::Table), Just(OutputFormat::Csv)],
        prop::collection::vec(
            (label(), 0u8..2, literal_value()).prop_map(|(name, hv, value)| FormatOpt {
                name,
                value: (hv == 0).then_some(value),
            }),
            0..3,
        ),
    )
        .prop_map(
            |((ops, key, filters), (lets, order_by), (has_select, select), format, format_opts)| {
                QuerySpec {
                    ops,
                    key,
                    filters,
                    select: (has_select == 0).then_some(select),
                    lets,
                    order_by,
                    limit: None,
                    format,
                    format_opts,
                }
            },
        )
}

proptest! {
    /// Any parser-accepted query analyzes without panicking; the result
    /// is sorted, deterministic, and every diagnostic's span (when
    /// present) lies within the query text.
    #[test]
    fn analyze_never_panics(spec in query_spec()) {
        let rendered = spec.to_string();
        let (reparsed, spans) = parse_query_spanned(&rendered)
            .map_err(|e| TestCaseError::fail(format!("'{rendered}' fails to parse: {e}")))?;
        let schema = schema();
        for s in [Some(&schema), None] {
            let diags = analyze(&reparsed, Some(&spans), s);
            let again = analyze(&reparsed, Some(&spans), s);
            prop_assert_eq!(&diags, &again);
            for d in &diags {
                prop_assert!(matches!(d.severity, Severity::Error | Severity::Warning));
                prop_assert!(!d.message.is_empty());
                if let Some(span) = d.span {
                    prop_assert!(span.start <= span.end && span.end <= rendered.len(),
                        "span {:?} outside '{}'", span, rendered);
                }
            }
            // Spanless analysis must also hold up.
            analyze(&reparsed, None, s);
        }
    }

    /// Rendering a diagnostic never panics either, whatever the query
    /// text shape (multi-byte-safe caret placement).
    #[test]
    fn diagnostics_render(spec in query_spec()) {
        let rendered = spec.to_string();
        let (reparsed, spans) = parse_query_spanned(&rendered)
            .map_err(|e| TestCaseError::fail(format!("'{rendered}' fails to parse: {e}")))?;
        let schema = schema();
        for d in analyze(&reparsed, Some(&spans), Some(&schema)) {
            let text = d.render("<query>", &rendered);
            prop_assert!(text.contains(d.code));
            let json = d.render_json(&rendered);
            prop_assert!(caliper_format::parse_json(&json).is_ok(), "bad json: {json}");
        }
    }
}
