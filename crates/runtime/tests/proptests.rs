//! Property-based tests for the runtime: the blackboard must behave
//! like a reference model (per-attribute stacks) under arbitrary
//! begin/end/set sequences, and snapshot processing must be lossless.

use std::collections::HashMap;
use std::sync::Arc;

use caliper_data::{Attribute, AttributeStore, ContextTree, Properties, Value, ValueType};
use caliper_runtime::Blackboard;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Begin(usize, String),
    End(usize),
    Set(usize, String),
    Snapshot,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..4, "[a-z]{1,6}").prop_map(|(a, v)| Op::Begin(a, v)),
        (0usize..4).prop_map(Op::End),
        (0usize..4, "[a-z]{1,6}").prop_map(|(a, v)| Op::Set(a, v)),
        Just(Op::Snapshot),
    ]
}

/// Reference model: an independent value stack per attribute.
#[derive(Default)]
struct Model {
    stacks: HashMap<usize, Vec<String>>,
}

impl Model {
    fn begin(&mut self, attr: usize, value: &str) {
        self.stacks.entry(attr).or_default().push(value.to_string());
    }
    fn end(&mut self, attr: usize) -> bool {
        self.stacks.entry(attr).or_default().pop().is_some()
    }
    fn set(&mut self, attr: usize, value: &str) {
        let stack = self.stacks.entry(attr).or_default();
        stack.pop();
        stack.push(value.to_string());
    }
    fn top(&self, attr: usize) -> Option<&String> {
        self.stacks.get(&attr).and_then(|s| s.last())
    }
    fn values(&self, attr: usize) -> Vec<String> {
        self.stacks.get(&attr).cloned().unwrap_or_default()
    }
}

fn setup(nested: bool) -> (Arc<ContextTree>, Vec<Attribute>, Blackboard) {
    let store = AttributeStore::new();
    let tree = Arc::new(ContextTree::new());
    let props = if nested {
        Properties::NESTED
    } else {
        Properties::AS_VALUE
    };
    let attrs: Vec<Attribute> = (0..4)
        .map(|i| {
            store
                .create(&format!("attr.{i}"), ValueType::Str, props)
                .unwrap()
        })
        .collect();
    let bb = Blackboard::new(Arc::clone(&tree));
    (tree, attrs, bb)
}

fn check_model(
    ops: &[Op],
    nested: bool,
) -> Result<(), TestCaseError> {
    let (tree, attrs, mut bb) = setup(nested);
    let mut model = Model::default();
    for op in ops {
        match op {
            Op::Begin(a, v) => {
                bb.begin(&attrs[*a], Value::str(v.as_str()));
                model.begin(*a, v);
            }
            Op::End(a) => {
                let model_ok = model.end(*a);
                let bb_result = bb.end(&attrs[*a]);
                prop_assert_eq!(
                    model_ok,
                    bb_result.is_ok(),
                    "end behaviour diverged for attr {}",
                    a
                );
            }
            Op::Set(a, v) => {
                bb.set(&attrs[*a], Value::str(v.as_str()));
                model.set(*a, v);
            }
            Op::Snapshot => {
                let flat = bb.snapshot().unpack(&tree);
                for (i, attr) in attrs.iter().enumerate() {
                    // The innermost value must match the model's top.
                    let expect = model.top(i).map(|s| Value::str(s.as_str()));
                    prop_assert_eq!(
                        flat.get(attr.id()).cloned(),
                        expect,
                        "innermost of attr {} diverged",
                        i
                    );
                    if nested {
                        // For nested attributes the snapshot carries the
                        // whole stack, in order.
                        let got: Vec<String> =
                            flat.all(attr.id()).map(|v| v.to_string()).collect();
                        prop_assert_eq!(got, model.values(i));
                    }
                }
            }
        }
    }
    Ok(())
}

proptest! {
    /// Nested (context-tree) attributes behave like per-attribute stacks
    /// even though they share one node chain.
    #[test]
    fn nested_blackboard_matches_stack_model(ops in prop::collection::vec(arb_op(), 0..120)) {
        check_model(&ops, true)?;
    }

    /// AS_VALUE attributes behave like per-attribute stacks.
    #[test]
    fn immediate_blackboard_matches_stack_model(ops in prop::collection::vec(arb_op(), 0..120)) {
        check_model(&ops, false)?;
    }

    /// Snapshots never panic and are internally consistent for random
    /// interleavings; the blackboard is empty after ending everything.
    #[test]
    fn balanced_sequences_drain_the_blackboard(
        values in prop::collection::vec((0usize..4, "[a-z]{1,4}"), 1..40),
    ) {
        let (_tree, attrs, mut bb) = setup(true);
        for (a, v) in &values {
            bb.begin(&attrs[*a], Value::str(v.as_str()));
        }
        // End in reverse order (well nested).
        for (a, _) in values.iter().rev() {
            prop_assert!(bb.end(&attrs[*a]).is_ok());
        }
        prop_assert!(bb.is_empty());
    }
}
