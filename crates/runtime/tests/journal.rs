//! Integration tests for the crash-safe snapshot journal: lossless
//! roundtrips through the runtime, panic-hook-only flushes, append-mode
//! resume, and graceful handling of invalid profiles.

use std::path::PathBuf;
use std::sync::Arc;

use caliper_format::journal::recover_file;
use caliper_format::{Dataset, ReadPolicy, SEQ_ATTR};
use caliper_runtime::{Caliper, Clock, Config};

fn temp_journal(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "caliper-runtime-journal-{}-{name}.cali",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// Render every record as ordered `name=value` pairs, excluding the
/// journal sequence stamp, so datasets with different attribute-id
/// spaces (runtime store vs. recovered store) compare structurally.
fn record_lines(ds: &Dataset) -> Vec<String> {
    let seq = ds.store.find(SEQ_ATTR).map(|a| a.id());
    ds.flat_records()
        .map(|rec| {
            rec.pairs()
                .iter()
                .filter(|(a, _)| Some(*a) != seq)
                .map(|(a, v)| {
                    let name = ds
                        .store
                        .name_of(*a)
                        .map(|n| n.to_string())
                        .unwrap_or_else(|| format!("#{a}"));
                    format!("{name}={}", v.to_text())
                })
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect()
}

fn journaled_trace_config(path: &std::path::Path) -> Config {
    Config::event_trace()
        .set("journal.enable", "true")
        .set("journal.path", &path.display().to_string())
}

#[test]
fn journal_roundtrip_is_lossless() {
    let path = temp_journal("roundtrip");
    let caliper =
        Caliper::try_with_clock(journaled_trace_config(&path), Clock::virtual_clock()).unwrap();
    caliper.set_global("experiment", "roundtrip");
    let function = caliper.region_attribute("function");
    let mut scope = caliper.make_thread_scope();
    for name in ["solve", "io", "solve", "halo"] {
        scope.begin(&function, name);
        scope.advance_time(1_500);
        scope.end(&function).unwrap();
    }
    scope.flush();
    let traced = caliper.take_dataset();

    let (recovered, report) = recover_file(&path, ReadPolicy::lenient()).unwrap();
    assert!(!report.data_lost(), "{}", report.summary());
    assert_eq!(report.salvaged, traced.len() as u64);
    assert_eq!(report.duplicates, 0);
    assert_eq!(report.missing, 0);
    // Same snapshots, in the same order, with the same expansions.
    assert_eq!(record_lines(&recovered), record_lines(&traced));
    // Globals travel too.
    assert_eq!(
        recovered.global("experiment"),
        Some(caliper_data::Value::str("roundtrip"))
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn panic_hook_flushes_the_journal_buffer() {
    let path = temp_journal("panic-hook");
    // Huge flush interval: nothing reaches the file unless a hook runs.
    let config = journaled_trace_config(&path).set("journal.flush_interval", "100000");
    let caliper = Caliper::try_with_clock(config, Clock::virtual_clock()).unwrap();
    let worker = Arc::clone(&caliper);
    let handle = std::thread::spawn(move || {
        let function = worker.region_attribute("function");
        let mut scope = worker.make_thread_scope();
        for _ in 0..8 {
            scope.begin(&function, "doomed");
            scope.advance_time(1_000);
            scope.end(&function).unwrap();
        }
        // Simulated crash: leak the scope so neither its flush nor the
        // sink's drop can run — only the panic hook can save the data.
        std::mem::forget(scope);
        panic!("simulated crash with unflushed journal buffer");
    });
    assert!(handle.join().is_err());

    let stats = caliper.default_channel().journal().unwrap().stats();
    assert_eq!(stats.appended, 16, "8 begin + 8 end event snapshots");
    assert_eq!(stats.durable, 16, "panic hook drained the buffer");

    let (_, report) = recover_file(&path, ReadPolicy::lenient()).unwrap();
    assert_eq!(report.salvaged, 16);
    assert!(!report.data_lost(), "{}", report.summary());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn append_mode_resumes_the_sequence() {
    let path = temp_journal("append");
    // First incarnation: 6 snapshots (3 begin + 3 end).
    {
        let caliper =
            Caliper::try_with_clock(journaled_trace_config(&path), Clock::virtual_clock())
                .unwrap();
        let function = caliper.region_attribute("function");
        let mut scope = caliper.make_thread_scope();
        for _ in 0..3 {
            scope.begin(&function, "first");
            scope.end(&function).unwrap();
        }
        scope.flush();
        caliper.take_dataset();
    }
    // Second incarnation appends; its sequence numbers continue.
    {
        let config = journaled_trace_config(&path).set("journal.append", "true");
        let caliper = Caliper::try_with_clock(config, Clock::virtual_clock()).unwrap();
        let function = caliper.region_attribute("function");
        let mut scope = caliper.make_thread_scope();
        for _ in 0..2 {
            scope.begin(&function, "second");
            scope.end(&function).unwrap();
        }
        scope.flush();
        caliper.take_dataset();
    }

    let (recovered, report) = recover_file(&path, ReadPolicy::lenient()).unwrap();
    assert_eq!(report.salvaged, 10, "{}", report.summary());
    assert_eq!(report.duplicates, 0);
    assert_eq!(report.missing, 0, "sequence must continue across reopen");
    assert_eq!(report.max_seq, Some(9));
    let lines = record_lines(&recovered);
    assert!(lines.iter().any(|l| l.contains("function=first")));
    assert!(lines.iter().any(|l| l.contains("function=second")));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn journal_stats_track_flush_progress() {
    let path = temp_journal("stats");
    let config = journaled_trace_config(&path).set("journal.flush_interval", "100000");
    let caliper = Caliper::try_with_clock(config, Clock::virtual_clock()).unwrap();
    let sink = Arc::clone(caliper.default_channel().journal().unwrap());
    assert_eq!(sink.path(), path.as_path());

    let function = caliper.region_attribute("function");
    let mut scope = caliper.make_thread_scope();
    for _ in 0..5 {
        scope.begin(&function, "work");
        scope.end(&function).unwrap();
    }
    let stats = sink.stats();
    assert_eq!(stats.appended, 10);
    assert_eq!(stats.durable, 0, "interval not reached, nothing flushed");
    assert_eq!(stats.next_seq, 10);
    assert!(!stats.disabled);
    assert_eq!(stats.write_errors, 0);

    scope.flush(); // thread flush drains the journal
    let stats = sink.stats();
    assert_eq!(stats.durable, 10);
    assert!(stats.flushes >= 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn invalid_aggregate_ops_is_a_config_error_not_a_panic() {
    let config = Config::event_aggregate("function", "count, sum(");
    let err = Caliper::try_with_clock(config.clone(), Clock::virtual_clock()).unwrap_err();
    assert!(err.message.contains("aggregate.ops"), "{err}");

    // The infallible constructor degrades gracefully: the aggregate
    // service is skipped, thread-scope setup does not panic, and the
    // error stays inspectable on the channel.
    let caliper = Caliper::with_clock(config, Clock::virtual_clock());
    assert!(!caliper.default_channel().config_errors().is_empty());
    let function = caliper.region_attribute("function");
    let mut scope = caliper.make_thread_scope();
    scope.begin(&function, "still-works");
    scope.end(&function).unwrap();
    scope.flush();
    // No aggregate (skipped) and no trace service: nothing collected.
    assert!(caliper.take_dataset().is_empty());
}

#[test]
fn unwritable_journal_path_is_a_config_error() {
    let config = Config::event_trace()
        .set("journal.enable", "true")
        .set("journal.path", "/nonexistent-dir-for-sure/j.cali");
    let err = Caliper::try_with_clock(config, Clock::virtual_clock()).unwrap_err();
    assert!(err.message.contains("journal.path"), "{err}");
    assert!(err.message.contains("/nonexistent-dir-for-sure"), "{err}");
}
